//! Metric microbenchmarks — supports the demo's "experiment with a
//! variety of distance metrics" (Scenario 1) by showing that metric
//! choice is computationally free relative to query execution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seedb_core::{distance, Metric};

fn distributions(n: usize) -> (Vec<f64>, Vec<f64>) {
    let p: Vec<f64> = (0..n).map(|i| (i + 1) as f64).collect();
    let q: Vec<f64> = (0..n).map(|i| (n - i) as f64).collect();
    let norm = |v: Vec<f64>| {
        let s: f64 = v.iter().sum();
        v.into_iter().map(|x| x / s).collect::<Vec<f64>>()
    };
    (norm(p), norm(q))
}

fn bench_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance");
    for n in [10usize, 100, 1000] {
        let (p, q) = distributions(n);
        for metric in Metric::all() {
            group.bench_with_input(
                BenchmarkId::new(metric.name(), n),
                &(&p, &q),
                |b, (p, q)| b.iter(|| distance(metric, p, q)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_metrics);
criterion_main!(benches);
