//! Live-ingest performance: append throughput and incremental cache
//! refresh vs full recomputation.
//!
//! * `ingest/append_1k` — publish one 1 000-row delta segment onto a
//!   200k-row table (`Database::append_rows`): the write-path cost of
//!   segmented storage (segment build + copy-on-write dictionary +
//!   catalog publish). Each iteration re-registers the cheap
//!   segment-sharing clone of the base table first, so the appended
//!   table never grows across iterations.
//! * `ingest/refresh_incr_*` vs `ingest/refresh_full_*` — the serving
//!   layer's maintenance choice after an append of 0.1% / 1% / 10% of
//!   the table: bring a cached partial-aggregate state forward by
//!   scanning only the delta rows and merging (`execute_partial` +
//!   `merge` + `finalize`), or recompute the plan from scratch. The
//!   incremental path's advantage is the delta-to-table ratio; at ≤1%
//!   deltas it must beat the full recompute outright (both sides
//!   produce byte-identical outputs — asserted once at setup).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use memdb::{AggFunc, AggSpec, Database, LogicalPlan, Table, Value};
use seedb_bench::workload;
use seedb_data::SyntheticSpec;

const BASE_ROWS: usize = 200_000;

/// Delta batches are cut from a second generator run so they look like
/// live traffic (same schema and value domains, fresh seed).
fn delta_rows(n: usize, seed: u64) -> Vec<Vec<Value>> {
    let t = SyntheticSpec::knobs(n.max(1), 6, 10, 1.0, 2, seed).generate();
    (0..n).map(|i| t.row(i)).collect()
}

/// The representative serving plan: a combined target/comparison
/// shared-scan aggregate, the shape every recommendation caches.
fn serving_plan(filter: memdb::Expr) -> LogicalPlan {
    LogicalPlan::scan("synthetic").aggregate(
        vec!["d1".into()],
        vec![
            AggSpec::new(AggFunc::Sum, "m0")
                .with_filter(filter)
                .with_alias("target"),
            AggSpec::new(AggFunc::Sum, "m0").with_alias("comparison"),
            AggSpec::count_star(),
        ],
    )
}

fn bench_ingest(c: &mut Criterion) {
    let w = workload(BASE_ROWS, 6, 10, 2, 11);
    let base: Table = (*w.db.table("synthetic").expect("workload table")).clone();

    let mut group = c.benchmark_group("ingest");
    group.sample_size(10);

    // --- Append throughput -----------------------------------------
    let batch = delta_rows(1_000, 99);
    let db = Database::new();
    group.bench_function("append_1k", |b| {
        b.iter(|| {
            // Re-publish the base (cheap: segments are shared behind
            // `Arc`s) so every append lands on a 200k-row table.
            db.register(base.clone());
            black_box(
                db.append_rows("synthetic", batch.clone())
                    .expect("append publishes"),
            )
        })
    });

    // --- Incremental refresh vs full recompute ----------------------
    let phys = serving_plan(w.analyst.filter.clone().expect("planted filter"))
        .lower()
        .expect("plan lowers");
    for (label, fraction) in [("0.1pct", 0.001f64), ("1pct", 0.01), ("10pct", 0.1)] {
        let delta_n = (BASE_ROWS as f64 * fraction) as usize;
        let db = Database::new();
        let snapshot = db.register(base.clone());
        let cached = phys
            .execute_partial(&snapshot, (0, snapshot.num_rows()))
            .expect("warm state");
        let live = db
            .append_rows("synthetic", delta_rows(delta_n, 7 + delta_n as u64))
            .expect("append publishes");
        let (lo, hi) = live
            .append_delta_since(snapshot.version())
            .expect("pure-append lineage");

        // Both maintenance paths must agree to the bit — the speedup
        // below is only meaningful because the answers are identical.
        {
            let mut incr = cached.clone();
            incr.merge(phys.execute_partial(&live, (lo, hi)).unwrap(), &live)
                .unwrap();
            let incr = incr.finalize(&live).unwrap();
            let full = phys.execute(&live).unwrap();
            for s in 0..full.num_result_sets() {
                assert_eq!(
                    full.result_set(s).unwrap(),
                    incr.result_set(s).unwrap(),
                    "incremental refresh must equal full recompute"
                );
            }
        }

        group.bench_function(format!("refresh_incr_{label}"), |b| {
            b.iter(|| {
                let mut state = cached.clone();
                let delta = phys
                    .execute_partial(&live, (lo, hi))
                    .expect("delta scan runs");
                state.merge(delta, &live).expect("states merge");
                black_box(state.finalize(&live).expect("finalize"))
            })
        });
        group.bench_function(format!("refresh_full_{label}"), |b| {
            b.iter(|| {
                black_box(
                    phys.execute_partial(&live, (0, live.num_rows()))
                        .expect("full scan runs")
                        .finalize(&live)
                        .expect("finalize"),
                )
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);
