//! Observability overhead: what the telemetry layer costs when you are
//! NOT looking at it.
//!
//! * `obs/warm_recommend_untraced` — the steady-state warm-serve path
//!   with tracing disabled (the default). This is the number the
//!   serving benches already gate; it now includes counter bumps, the
//!   latency histogram record, and the disabled-tracer branch, so a
//!   regression here is a regression in the "zero-cost when disabled"
//!   contract.
//! * `obs/warm_recommend_traced` — the same request with span recording
//!   on, for an honest look at what `:trace on` costs.
//! * `obs/counter_inc_x1000` — a thousand registered-counter bumps: one
//!   relaxed atomic add each, no branches, no locks.
//! * `obs/histogram_record_x1000` — a thousand histogram samples:
//!   leading-zeros bucketing plus two atomic adds.
//! * `obs/disabled_span_x1000` — a thousand root-span creations against
//!   a disabled tracer: one atomic load returning the null span.
//! * `obs/warm_recommend_sampling_off` — the warm-serve path with the
//!   telemetry pipeline disabled entirely. `warm_recommend_untraced`
//!   runs with sampling *on* (the default), so the pair prices the
//!   sampler/watchdog overhead on the serve path: one clock read and a
//!   compare per request in the steady state.
//! * `obs/sample_window` — force-closing one telemetry window: snapshot
//!   the registry, diff it against the previous window, and run every
//!   watchdog rule over the result (what each sampling interval costs).

use criterion::{criterion_group, criterion_main, Criterion};
use seedb_bench::workload;
use seedb_core::{SeeDbConfig, Service, ServiceConfig, TelemetryConfig};
use seedb_obs::{Obs, Registry};

fn serving_config() -> ServiceConfig {
    let mut seedb = SeeDbConfig::recommended().with_k(5);
    seedb.pruning.access_frequency = false;
    ServiceConfig::recommended().with_seedb(seedb)
}

fn bench_obs(c: &mut Criterion) {
    let w = workload(50_000, 6, 10, 2, 7);
    let mut group = c.benchmark_group("obs");
    group.sample_size(10);

    let service = Service::new(w.db.clone(), serving_config());
    service.recommend(&w.analyst).expect("warm-up run");
    group.bench_function("warm_recommend_untraced", |b| {
        b.iter(|| service.recommend(&w.analyst).expect("warm recommendation"))
    });

    service.set_trace_enabled(true);
    group.bench_function("warm_recommend_traced", |b| {
        b.iter(|| service.recommend(&w.analyst).expect("warm recommendation"))
    });
    service.set_trace_enabled(false);

    let registry = Registry::new();
    let counter = registry.register_counter("bench.obs.ticks");
    group.bench_function("counter_inc_x1000", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                counter.inc();
            }
            counter.get()
        })
    });

    let histogram = registry.register_histogram("bench.obs.lat_ns");
    group.bench_function("histogram_record_x1000", |b| {
        b.iter(|| {
            for v in 0..1000u64 {
                histogram.record(v * 17);
            }
        })
    });

    let obs = Obs::default();
    assert!(!obs.tracer().is_enabled());
    group.bench_function("disabled_span_x1000", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                let span = obs.tracer().root_span("bench");
                assert!(!span.is_recording());
            }
        })
    });

    // Sampler overhead pair: `warm_recommend_untraced` above serves
    // with the default telemetry (sampling ON); this one turns the
    // pipeline off so the delta is the sampler's serve-path cost.
    let no_telemetry = Service::new(
        w.db.clone(),
        serving_config().with_telemetry(TelemetryConfig::disabled()),
    );
    no_telemetry.recommend(&w.analyst).expect("warm-up run");
    group.bench_function("warm_recommend_sampling_off", |b| {
        b.iter(|| {
            no_telemetry
                .recommend(&w.analyst)
                .expect("warm recommendation")
        })
    });

    // What closing one window costs: registry snapshot + diff + every
    // watchdog rule.
    group.bench_function("sample_window", |b| {
        b.iter(|| service.sample_window().expect("telemetry enabled"))
    });

    group.finish();
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);
