//! Experiments S2a–S2d — the view-query optimizations of §3.3.
//!
//! End-to-end recommendation latency under each optimizer configuration,
//! cumulatively enabling:
//! `basic` → `+combine target/comparison` (S2b: "halves the time") →
//! `+combine aggregates` (S2c: "speed up linear in the number of
//! aggregate attributes") → `+combine group-bys` (S2d: bin-packed
//! GROUPING SETS and multi-group-by roll-up).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seedb_bench::workload;
use seedb_core::{GroupByCombining, SeeDb, SeeDbConfig};

fn configs() -> Vec<(&'static str, SeeDbConfig)> {
    let base = || {
        let mut c = SeeDbConfig::basic();
        c.k = 5;
        c
    };
    vec![
        ("basic", base()),
        ("combine_tc", {
            let mut c = base();
            c.optimizer.combine_target_comparison = true;
            c
        }),
        ("combine_aggs", {
            let mut c = base();
            c.optimizer.combine_target_comparison = true;
            c.optimizer.combine_aggregates = true;
            c
        }),
        ("combine_gb_sets", {
            let mut c = base();
            c.optimizer.combine_target_comparison = true;
            c.optimizer.combine_aggregates = true;
            c.optimizer.group_by_combining = GroupByCombining::GroupingSets;
            c.optimizer.memory_budget_groups = 100_000;
            c
        }),
        ("combine_gb_rollup", {
            let mut c = base();
            c.optimizer.combine_target_comparison = true;
            c.optimizer.combine_aggregates = true;
            c.optimizer.group_by_combining = GroupByCombining::MultiGroupBy;
            c.optimizer.memory_budget_groups = 100_000;
            c
        }),
    ]
}

fn bench_optimizations(c: &mut Criterion) {
    let w = workload(60_000, 6, 10, 3, 42);
    let mut group = c.benchmark_group("optimizations");
    group.sample_size(10);
    for (name, config) in configs() {
        let seedb = SeeDb::new(w.db.clone(), config);
        group.bench_with_input(BenchmarkId::from_parameter(name), &seedb, |b, s| {
            b.iter(|| s.recommend(&w.analyst).expect("recommendation runs"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_optimizations);
criterion_main!(benches);
