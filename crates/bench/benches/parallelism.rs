//! Experiment S2f — parallel query execution (§3.3): "as the number of
//! queries executed in parallel increases, the total latency decreases at
//! the cost of increased per query execution time."
//!
//! Two axes of parallelism:
//!
//! * `total_latency` — inter-plan: total recommendation latency vs
//!   worker count, holding the plan fixed (basic un-combined plan =
//!   many independent queries, the regime where batch parallelism
//!   matters most). The per-query-time side of the trade-off is
//!   reported by the `experiments` binary.
//! * `phased` — intra-plan: phase-sliced execution with
//!   confidence-interval pruning over a 1M-row table, sequential vs
//!   partitioned across row workers with mergeable partial aggregates
//!   (`run_partitioned_partial`). Outcomes are byte-identical for every
//!   worker count; only the wall-clock should move.

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seedb_bench::workload;
use seedb_core::{
    enumerate_views, run_phased_with_group_counts, FunctionSet, Metric, PhasedConfig, SeeDb,
    SeeDbConfig,
};

fn bench_parallelism(c: &mut Criterion) {
    let w = workload(60_000, 6, 10, 2, 3);
    let mut group = c.benchmark_group("parallelism/total_latency");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        let mut config = SeeDbConfig::basic().with_k(5);
        config.execution = config.execution.with_workers(workers);
        let seedb = SeeDb::new(w.db.clone(), config);
        group.bench_with_input(BenchmarkId::from_parameter(workers), &seedb, |b, s| {
            b.iter(|| s.recommend(&w.analyst).expect("recommendation runs"))
        });
    }
    group.finish();
}

/// BENCH_parallelism's phased axis: phased-parallel must beat
/// sequential phased wall-clock on a ≥ 1M-row table with ≥ 4 workers.
fn bench_phased_partitioned(c: &mut Criterion) {
    let w = workload(1_000_000, 6, 10, 2, 5);
    let table = w.db.table("synthetic").unwrap();
    let views: Vec<_> = enumerate_views(table.schema(), &FunctionSet::standard())
        .into_iter()
        .filter(|v| v.dimension != "d0")
        .collect();
    // Precompute the confidence bound's per-dimension group counts the
    // way the engine does from its Phase-1 metadata, so the bench
    // measures the phase-sliced executor, not a stats pass.
    let mut counts: HashMap<String, usize> = HashMap::new();
    for v in &views {
        if !counts.contains_key(&v.dimension) {
            let s = memdb::ColumnStats::collect(&v.dimension, table.column(&v.dimension).unwrap());
            counts.insert(v.dimension.clone(), s.group_count());
        }
    }
    let mut group = c.benchmark_group("parallelism/phased");
    group.sample_size(10);
    for workers in [1usize, 4, 8] {
        let cfg = PhasedConfig {
            phases: 10,
            k: 5,
            delta: 0.05,
            min_phases: 2,
            metric: Metric::EarthMovers,
            workers,
        };
        group.bench_with_input(BenchmarkId::from_parameter(workers), &cfg, |b, cfg| {
            b.iter(|| {
                run_phased_with_group_counts(&table, &w.analyst, &views, cfg, &counts)
                    .expect("phased run")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallelism, bench_phased_partitioned);
criterion_main!(benches);
