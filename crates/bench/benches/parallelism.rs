//! Experiment S2f — parallel query execution (§3.3): "as the number of
//! queries executed in parallel increases, the total latency decreases at
//! the cost of increased per query execution time."
//!
//! Total recommendation latency vs worker count, holding the plan fixed
//! (basic un-combined plan = many independent queries, the regime where
//! parallelism matters most). The per-query-time side of the trade-off is
//! reported by the `experiments` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seedb_bench::workload;
use seedb_core::{SeeDb, SeeDbConfig};

fn bench_parallelism(c: &mut Criterion) {
    let w = workload(60_000, 6, 10, 2, 3);
    let mut group = c.benchmark_group("parallelism/total_latency");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        let mut config = SeeDbConfig::basic().with_k(5);
        config.optimizer.parallelism = workers;
        let seedb = SeeDb::new(w.db.clone(), config);
        group.bench_with_input(BenchmarkId::from_parameter(workers), &seedb, |b, s| {
            b.iter(|| s.recommend(&w.analyst).expect("recommendation runs"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallelism);
criterion_main!(benches);
