//! Durable-store performance: save/open throughput and the WAL's
//! append overhead.
//!
//! * `persistence/save_100k` — checkpoint a 100k-row catalog into a
//!   database directory (segment files + manifest, fsynced): the cost
//!   of making a catalog durable from scratch.
//! * `persistence/open_100k` — recover the same directory back into a
//!   serving catalog (manifest + chunk decode + dictionary rebuild):
//!   the restart path whose alternative is a full re-ingest.
//! * `persistence/append_durable_1k` vs `persistence/append_mem_1k` —
//!   the per-batch price of durability: `append_rows` with the batch
//!   WAL-logged + fsynced before publish, against the identical
//!   in-memory-only append. The gap is the WAL tax (dominated by the
//!   fsync; `DurabilityConfig::sync_writes(false)` trades it away).
//!
//! Save/open correctness (byte-identical results after reopen) is
//! asserted once at setup — the numbers are only meaningful because
//! both sides serve identical answers.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use memdb::{AggFunc, AggSpec, Database, DurabilityConfig, LogicalPlan, Table, Value};
use seedb_bench::workload;
use seedb_data::SyntheticSpec;

const BASE_ROWS: usize = 100_000;

fn delta_rows(n: usize, seed: u64) -> Vec<Vec<Value>> {
    let t = SyntheticSpec::knobs(n.max(1), 6, 10, 1.0, 2, seed).generate();
    (0..n).map(|i| t.row(i)).collect()
}

fn bench_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("seedb-bench-persistence-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bench_persistence(c: &mut Criterion) {
    let w = workload(BASE_ROWS, 6, 10, 2, 11);
    let base: Table = (*w.db.table("synthetic").expect("workload table")).clone();

    let mut group = c.benchmark_group("persistence");
    group.sample_size(10);

    // --- Correctness pin: a reopened catalog answers bit-identically.
    {
        let dir = bench_dir("roundtrip-check");
        let db = Database::new();
        db.register(base.clone());
        db.save(&dir).expect("save");
        let reopened = Database::open(&dir).expect("open");
        let plan = LogicalPlan::scan("synthetic")
            .aggregate(
                vec!["d1".into()],
                vec![AggSpec::new(AggFunc::Sum, "m0"), AggSpec::count_star()],
            )
            .lower()
            .expect("plan lowers");
        let a = plan.execute(&db.table("synthetic").unwrap()).unwrap();
        let b = plan.execute(&reopened.table("synthetic").unwrap()).unwrap();
        assert_eq!(
            a.result_set(0).unwrap(),
            b.result_set(0).unwrap(),
            "reopened catalog must answer identically"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    // --- Save throughput ---------------------------------------------
    let save_dir = bench_dir("save");
    {
        let db = Database::new();
        db.register(base.clone());
        group.bench_function("save_100k", |b| {
            b.iter(|| {
                db.save(&save_dir).expect("save");
                black_box(())
            })
        });
    }

    // --- Open (recovery) throughput ----------------------------------
    group.bench_function("open_100k", |b| {
        b.iter(|| black_box(Database::open(&save_dir).expect("open")))
    });

    // --- WAL append overhead vs in-memory ----------------------------
    let batch = delta_rows(1_000, 99);
    {
        let db = Database::new();
        db.register(base.clone());
        group.bench_function("append_mem_1k", |b| {
            b.iter(|| {
                black_box(
                    db.append_rows("synthetic", batch.clone())
                        .expect("append publishes"),
                )
            })
        });
    }
    {
        let dir = bench_dir("durable-append");
        let db = Database::new();
        db.register(base.clone());
        // Large checkpoint threshold so the bench isolates the WAL
        // append+fsync cost, not checkpoint sealing.
        db.save_with(
            &dir,
            DurabilityConfig::recommended().with_wal_checkpoint_bytes(1 << 30),
        )
        .expect("save");
        group.bench_function("append_durable_1k", |b| {
            b.iter(|| {
                black_box(
                    db.append_rows("synthetic", batch.clone())
                        .expect("append publishes"),
                )
            })
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&save_dir);

    group.finish();
}

criterion_group!(benches, bench_persistence);
criterion_main!(benches);
