//! Experiment S2g — view-space pruning (§3.3): latency with each pruning
//! rule enabled, on a table designed so each rule has prey: constant
//! columns (variance rule), derived alias columns (correlation rule), and
//! a recorded workload touching a few attributes (access rule).
//!
//! The companion table (views pruned per rule + recall of the true
//! top-k) is printed by the `experiments` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;

use memdb::Database;
use seedb_core::{AnalystQuery, PruningConfig, SeeDb, SeeDbConfig};
use seedb_data::{Categorical, DimSpec, Plant, SyntheticSpec};

/// Workload with pruneable structure.
fn pruneable() -> (Arc<Database>, AnalystQuery) {
    let mut spec = SyntheticSpec::knobs(40_000, 5, 10, 1.0, 2, 11).with_plant(Plant {
        subset_dim: 0,
        subset_value: 0,
        deviating_dims: vec![1, 2],
        deviating_measures: vec![],
    });
    // Constant dimension (variance-rule prey).
    spec.dims
        .push(DimSpec::new("constant", Categorical::Uniform { k: 1 }));
    // Noise-free aliases of d1 and d2 (correlation-rule prey).
    spec.dims.push(DimSpec::derived("d1_alias", 10, 1, 0.0));
    spec.dims.push(DimSpec::derived("d2_alias", 10, 2, 0.0));
    let analyst = AnalystQuery::new("synthetic", spec.subset_filter());
    let db = Arc::new(Database::new());
    db.register(spec.generate());
    (db, analyst)
}

fn bench_pruning(c: &mut Criterion) {
    let (db, analyst) = pruneable();
    let mut group = c.benchmark_group("pruning");
    group.sample_size(10);

    let configs: Vec<(&str, PruningConfig)> = vec![
        ("off", PruningConfig::disabled()),
        ("variance", {
            let mut p = PruningConfig::disabled();
            p.variance = true;
            p.min_entropy = 0.05;
            p
        }),
        ("variance+correlation", {
            let mut p = PruningConfig::disabled();
            p.variance = true;
            p.min_entropy = 0.05;
            p.correlation = true;
            p.correlation_threshold = 0.95;
            p
        }),
        ("all", PruningConfig::aggressive()),
    ];

    for (name, pruning) in configs {
        let mut config = SeeDbConfig::recommended().with_k(5);
        config.execution = config.execution.with_workers(1);
        config.pruning = pruning;
        let seedb = SeeDb::new(db.clone(), config);
        // Prime the workload log so the access rule can fire.
        for _ in 0..20 {
            seedb
                .tracker()
                .record("synthetic", ["d0", "d1", "d2", "m0", "m1"]);
        }
        group.bench_with_input(BenchmarkId::from_parameter(name), &seedb, |b, s| {
            b.iter(|| s.recommend(&analyst).expect("recommendation runs"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pruning);
criterion_main!(benches);
