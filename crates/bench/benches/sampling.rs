//! Experiment S2e — the sampling optimization of §3.3: "we construct a
//! sample of the dataset that can fit in memory and run all view queries
//! against the sample. However ... the sampling technique and size of the
//! sample both affect view accuracy."
//!
//! Latency vs sample fraction; the companion accuracy sweep (top-k
//! Jaccard vs the exact ranking) lives in the `experiments` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use memdb::SampleSpec;
use seedb_bench::workload;
use seedb_core::{SeeDb, SeeDbConfig};

fn bench_sampling(c: &mut Criterion) {
    let w = workload(100_000, 5, 10, 2, 7);
    let mut group = c.benchmark_group("sampling/latency");
    group.sample_size(10);
    for fraction in [1.0f64, 0.5, 0.2, 0.1, 0.05, 0.01] {
        let mut config = SeeDbConfig::recommended().with_k(5);
        config.execution = config.execution.with_workers(1); // isolate the sampling effect
        if fraction < 1.0 {
            config.optimizer.sample = Some(SampleSpec::Bernoulli { fraction, seed: 1 });
        }
        let seedb = SeeDb::new(w.db.clone(), config);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{fraction:.2}")),
            &seedb,
            |b, s| b.iter(|| s.recommend(&w.analyst).expect("recommendation runs")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
