//! Serving-layer throughput: the shared partial-aggregate cache and the
//! cross-request scan batcher under three regimes.
//!
//! * `serving/cold` — every request recomputes (cache cleared per
//!   iteration): the single-shot `SeeDb::recommend` baseline plus cache
//!   bookkeeping.
//! * `serving/warm` — a repeated analyst query served entirely from the
//!   cache (zero table scans); this is the steady-state cost of one
//!   session in a hot serving loop.
//! * `serving/concurrent_warm_x4` — four sessions issue the same query
//!   simultaneously over a warm cache (lock-contention check; on a
//!   multicore host this also shows cache reads scaling out).
//! * `serving/concurrent_cold_x4` — four *distinct* analysts arrive
//!   cold within one batch window: their plans merge into one shared
//!   grouping-sets scan (~1 scan, not 4). Includes the window wait.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use memdb::Expr;
use seedb_bench::workload;
use seedb_core::{AnalystQuery, SeeDbConfig, Service, ServiceConfig};

fn serving_config(window: Duration) -> ServiceConfig {
    let mut seedb = SeeDbConfig::recommended().with_k(5);
    // Access-frequency pruning consults workload history; keep every
    // iteration's plan set identical so the bench measures the cache.
    seedb.pruning.access_frequency = false;
    ServiceConfig::recommended()
        .with_seedb(seedb)
        .with_batch_window(window)
}

fn bench_serving(c: &mut Criterion) {
    let w = workload(50_000, 6, 10, 2, 7);
    let mut group = c.benchmark_group("serving");
    group.sample_size(10);

    let service = Service::new(w.db.clone(), serving_config(Duration::ZERO));
    group.bench_function("cold", |b| {
        b.iter(|| {
            service.clear_cache();
            service.recommend(&w.analyst).expect("recommendation runs")
        })
    });

    let service = Service::new(w.db.clone(), serving_config(Duration::ZERO));
    service.recommend(&w.analyst).expect("warm-up run");
    group.bench_function("warm", |b| {
        b.iter(|| service.recommend(&w.analyst).expect("warm recommendation"))
    });

    let service = Service::new(w.db.clone(), serving_config(Duration::ZERO));
    service.recommend(&w.analyst).expect("warm-up run");
    group.bench_function("concurrent_warm_x4", |b| {
        b.iter(|| {
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let session = service.session();
                    let analyst = &w.analyst;
                    s.spawn(move || session.recommend(analyst).expect("warm recommendation"));
                }
            })
        })
    });

    // Four distinct analyst subsets on the same table; a 2 ms window
    // lets their cold misses merge into one shared scan.
    let service = Service::new(w.db.clone(), serving_config(Duration::from_millis(2)));
    let analysts: Vec<AnalystQuery> = (0..4)
        .map(|i| {
            AnalystQuery::new(
                "synthetic",
                Some(Expr::col("d0").eq(w.spec.dim_label(0, i).as_str())),
            )
        })
        .collect();
    group.bench_function("concurrent_cold_x4", |b| {
        b.iter(|| {
            service.clear_cache();
            std::thread::scope(|s| {
                for analyst in &analysts {
                    let session = service.session();
                    s.spawn(move || session.recommend(analyst).expect("cold recommendation"));
                }
            })
        })
    });

    group.finish();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
