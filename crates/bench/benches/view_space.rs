//! Experiment C1 — §1 claim (b): "the number of candidate views (or
//! visualizations) increases as the square of the number of attributes".
//!
//! Benchmarks view enumeration time as attribute count grows and asserts
//! the quadratic count analytically (doubling attributes quadruples the
//! space).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use memdb::{ColumnDef, DataType, Schema};
use seedb_core::{enumerate_views, view_space_size, FunctionSet};

fn schema(attrs: usize) -> Schema {
    let dims = attrs / 2;
    let mut cols = Vec::new();
    for i in 0..dims {
        cols.push(ColumnDef::dimension(&format!("d{i}"), DataType::Str));
    }
    for i in 0..(attrs - dims) {
        cols.push(ColumnDef::measure(&format!("m{i}"), DataType::Float64));
    }
    Schema::new(cols).unwrap()
}

fn bench_view_space(c: &mut Criterion) {
    let funcs = FunctionSet::standard();
    let mut group = c.benchmark_group("view_space/enumerate");
    for attrs in [10usize, 20, 40, 80, 160] {
        let s = schema(attrs);
        // The quadratic-growth claim, checked exactly.
        let count = view_space_size(attrs / 2, attrs - attrs / 2, &funcs);
        let half = view_space_size(attrs / 4, attrs / 2 - attrs / 4, &funcs);
        assert!(
            attrs < 20 || (count as f64 / half as f64 - 4.0).abs() < 0.35,
            "doubling {attrs} attrs should ~quadruple views: {half} -> {count}"
        );
        group.bench_with_input(BenchmarkId::from_parameter(attrs), &attrs, |b, _| {
            b.iter(|| {
                let views = enumerate_views(&s, &funcs);
                assert_eq!(views.len(), count);
                views
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_view_space);
criterion_main!(benches);
