//! Bench regression gate: compare a fresh bench run against the
//! committed baselines.
//!
//! ```sh
//! SEEDB_BENCH_DIR=bench-out cargo bench -p seedb-bench
//! cargo run -p seedb-bench --bin bench_gate                  # gate
//! cargo run -p seedb-bench --bin bench_gate -- --bless       # rewrite baselines
//! ```
//!
//! Reads every `BENCH_*.json` summary in the current-run directory
//! (`--current`, default `$SEEDB_BENCH_DIR` or `bench-out`), compares
//! each benchmark's **median** wall-time against the baseline of the
//! same name in `--baseline` (default `benchmarks/baseline/` at the
//! repository root), prints a per-bench delta table, and exits non-zero
//! if any median regressed by more than the threshold (default 25%,
//! `--threshold PCT` or `$BENCH_GATE_THRESHOLD` to override — CI
//! runners are noisy, committed baselines come from dev machines).
//!
//! New benches (present in the run, absent from the baseline) fail the
//! gate until blessed. Benches present in the baseline but **missing
//! from the run** also fail hard: a silently skipped bench (a bench
//! binary that stopped emitting, a partial run) must not read as
//! "no regression". Bless to forget intentionally removed benches.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    bless: bool,
    current: PathBuf,
    baseline: PathBuf,
    threshold: f64,
}

fn parse_args() -> Result<Args, String> {
    let default_current = std::env::var("SEEDB_BENCH_DIR").unwrap_or_else(|_| "bench-out".into());
    let default_baseline = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../benchmarks/baseline")
        .to_path_buf();
    let mut args = Args {
        bless: false,
        current: PathBuf::from(default_current),
        baseline: default_baseline,
        threshold: std::env::var("BENCH_GATE_THRESHOLD")
            .ok()
            .and_then(|t| t.parse().ok())
            .unwrap_or(25.0),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match a.as_str() {
            "--bless" => args.bless = true,
            "--current" => args.current = PathBuf::from(value("--current")?),
            "--baseline" => args.baseline = PathBuf::from(value("--baseline")?),
            "--threshold" => {
                args.threshold = value("--threshold")?
                    .parse()
                    .map_err(|e| format!("--threshold: {e}"))?
            }
            "--help" | "-h" => return Err(
                "usage: bench_gate [--bless] [--current DIR] [--baseline DIR] [--threshold PCT]"
                    .to_string(),
            ),
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    Ok(args)
}

/// `file stem -> benchmark name -> median_ns`, from every BENCH_*.json
/// in `dir`. BTreeMaps keep the report ordering deterministic.
fn load_medians(dir: &Path) -> Result<BTreeMap<String, BTreeMap<String, f64>>, String> {
    let mut out = BTreeMap::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let path = entry.map_err(|e| e.to_string())?.path();
        let name = match path.file_name().and_then(|n| n.to_str()) {
            Some(n) if n.starts_with("BENCH_") && n.ends_with(".json") => n.to_string(),
            _ => continue,
        };
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let json = serde_json::from_str(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let mut medians = BTreeMap::new();
        for item in json
            .as_array()
            .ok_or_else(|| format!("{name}: not a JSON array"))?
        {
            let bench = item
                .get("name")
                .and_then(|v| v.as_str())
                .ok_or_else(|| format!("{name}: entry without a name"))?;
            let median = item
                .get("median_ns")
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("{name}/{bench}: no median_ns (re-run the benches)"))?;
            medians.insert(bench.to_string(), median);
        }
        out.insert(name, medians);
    }
    if out.is_empty() {
        return Err(format!(
            "no BENCH_*.json files in {} (run: SEEDB_BENCH_DIR={} cargo bench -p seedb-bench)",
            dir.display(),
            dir.display()
        ));
    }
    Ok(out)
}

fn bless(args: &Args) -> Result<(), String> {
    std::fs::create_dir_all(&args.baseline)
        .map_err(|e| format!("cannot create {}: {e}", args.baseline.display()))?;
    let entries = std::fs::read_dir(&args.current)
        .map_err(|e| format!("cannot read {}: {e}", args.current.display()))?;
    let mut copied = 0;
    for entry in entries {
        let path = entry.map_err(|e| e.to_string())?.path();
        match path.file_name().and_then(|n| n.to_str()) {
            Some(n) if n.starts_with("BENCH_") && n.ends_with(".json") => {
                std::fs::copy(&path, args.baseline.join(n))
                    .map_err(|e| format!("copy {}: {e}", path.display()))?;
                copied += 1;
            }
            _ => {}
        }
    }
    if copied == 0 {
        return Err(format!("no BENCH_*.json in {}", args.current.display()));
    }
    println!(
        "blessed {copied} baseline file(s) into {}",
        args.baseline.display()
    );
    Ok(())
}

/// Report label for one bench: `<file stem>/<bench name>`, without
/// repeating the stem when the bench's group already carries it.
fn gate_label(file: &str, bench: &str) -> String {
    let stem = file.trim_start_matches("BENCH_").trim_end_matches(".json");
    if bench == stem || bench.starts_with(&format!("{stem}/")) {
        bench.to_string()
    } else {
        format!("{stem}/{bench}")
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Verdict for one benchmark after comparing run and baseline.
#[derive(Debug, Clone, PartialEq)]
enum Verdict {
    /// Within threshold; carries (baseline, current, delta %).
    Ok(f64, f64, f64),
    /// Regressed past the threshold; carries (baseline, current, delta %).
    Regressed(f64, f64, f64),
    /// In the run but not the baseline — bless to accept.
    New(f64),
    /// In the baseline but not produced by this run — a hard failure:
    /// a vanished bench must never read as "no regression".
    Missing,
    /// Non-positive baseline median; comparison skipped with a warning.
    ZeroBaseline(f64),
}

impl Verdict {
    fn is_failure(&self) -> bool {
        matches!(
            self,
            Verdict::Regressed(..) | Verdict::New(_) | Verdict::Missing
        )
    }

    fn is_warning(&self) -> bool {
        matches!(self, Verdict::ZeroBaseline(_))
    }
}

type Medians = BTreeMap<String, BTreeMap<String, f64>>;

/// Run files with no committed baseline *file* at all — typically a
/// leftover from a renamed or deleted bench group still sitting in the
/// run directory. Each of their benches already fails as `NEW`, but the
/// file-level diagnosis ("this whole artifact is unknown — bless it or
/// delete the orphan") is worth a loud, explicit line of its own.
fn orphan_files(current: &Medians, baseline: &Medians) -> Vec<String> {
    current
        .keys()
        .filter(|file| !baseline.contains_key(*file))
        .cloned()
        .collect()
}

/// Pure gate decision: one `(label, verdict)` per benchmark in the
/// union of run and baseline, in deterministic order.
fn gate(current: &Medians, baseline: &Medians, threshold: f64) -> Vec<(String, Verdict)> {
    let mut out = Vec::new();
    for (file, benches) in current {
        let base_file = baseline.get(file);
        for (bench, &median) in benches {
            let label = gate_label(file, bench);
            let verdict = match base_file.and_then(|b| b.get(bench)) {
                None => Verdict::New(median),
                Some(&base) if base <= 0.0 => Verdict::ZeroBaseline(median),
                Some(&base) => {
                    let delta = (median - base) / base * 100.0;
                    if delta > threshold {
                        Verdict::Regressed(base, median, delta)
                    } else {
                        Verdict::Ok(base, median, delta)
                    }
                }
            };
            out.push((label, verdict));
        }
    }
    // Benchmarks the baseline promises but this run did not produce —
    // e.g. a bench binary that was dropped from the suite, or a partial
    // `cargo bench` invocation. These fail hard.
    for (file, benches) in baseline {
        for bench in benches.keys() {
            if current.get(file).map(|b| b.contains_key(bench)) != Some(true) {
                out.push((gate_label(file, bench), Verdict::Missing));
            }
        }
    }
    out
}

fn run(args: &Args) -> Result<bool, String> {
    let current = load_medians(&args.current)?;
    let baseline = load_medians(&args.baseline).map_err(|e| {
        format!("{e}\nhint: check in first baselines with `cargo run -p seedb-bench --bin bench_gate -- --bless`")
    })?;

    for file in orphan_files(&current, &baseline) {
        println!(
            "warning: {file} has no committed baseline under {} — bless it or delete the orphan",
            args.baseline.display()
        );
    }
    let rows = gate(&current, &baseline, args.threshold);
    println!(
        "{:<44} {:>12} {:>12} {:>9}  status (threshold +{:.0}%)",
        "benchmark", "baseline", "current", "delta", args.threshold
    );
    for (label, verdict) in &rows {
        match verdict {
            Verdict::Ok(base, median, delta) | Verdict::Regressed(base, median, delta) => {
                let status = if verdict.is_failure() { "FAIL" } else { "ok" };
                println!(
                    "{label:<44} {:>12} {:>12} {:>+8.1}%  {status}",
                    fmt_ns(*base),
                    fmt_ns(*median),
                    delta
                );
            }
            Verdict::New(median) => println!(
                "{label:<44} {:>12} {:>12} {:>9}  NEW — bless to accept",
                "-",
                fmt_ns(*median),
                "-"
            ),
            Verdict::Missing => println!(
                "{label:<44} {:>12} {:>12} {:>9}  MISSING — baseline exists but this run \
                 produced no result; run the full suite or bless to forget",
                "?", "-", "-"
            ),
            Verdict::ZeroBaseline(median) => println!(
                "{label:<44} {:>12} {:>12} {:>9}  SKIP (zero baseline)",
                "0",
                fmt_ns(*median),
                "-"
            ),
        }
    }
    let failures = rows.iter().filter(|(_, v)| v.is_failure()).count();
    let warnings = rows.iter().filter(|(_, v)| v.is_warning()).count();
    if warnings > 0 {
        println!("{warnings} warning(s)");
    }
    if failures > 0 {
        println!(
            "bench gate: {failures} failure(s) — medians regressed past +{:.0}%, \
             unblessed new benches, or benches missing from this run",
            args.threshold
        );
        Ok(false)
    } else {
        println!("bench gate: ok");
        Ok(true)
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let outcome = if args.bless {
        bless(&args).map(|()| true)
    } else {
        run(&args)
    };
    match outcome {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("bench_gate: {msg}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn medians(entries: &[(&str, &[(&str, f64)])]) -> Medians {
        entries
            .iter()
            .map(|(file, benches)| {
                (
                    file.to_string(),
                    benches
                        .iter()
                        .map(|(name, m)| (name.to_string(), *m))
                        .collect(),
                )
            })
            .collect()
    }

    fn verdict_of<'a>(rows: &'a [(String, Verdict)], label: &str) -> &'a Verdict {
        &rows
            .iter()
            .find(|(l, _)| l == label)
            .unwrap_or_else(|| panic!("no row {label}"))
            .1
    }

    #[test]
    fn within_threshold_passes_regression_fails() {
        let base = medians(&[("BENCH_a.json", &[("a/x", 100.0), ("a/y", 100.0)])]);
        let cur = medians(&[("BENCH_a.json", &[("a/x", 120.0), ("a/y", 130.0)])]);
        let rows = gate(&cur, &base, 25.0);
        assert!(matches!(verdict_of(&rows, "a/x"), Verdict::Ok(..)));
        assert!(matches!(verdict_of(&rows, "a/y"), Verdict::Regressed(..)));
        assert!(verdict_of(&rows, "a/y").is_failure());
    }

    #[test]
    fn new_benches_fail_until_blessed() {
        let base = medians(&[("BENCH_a.json", &[("a/x", 100.0)])]);
        let cur = medians(&[("BENCH_a.json", &[("a/x", 100.0), ("a/new", 5.0)])]);
        let rows = gate(&cur, &base, 25.0);
        assert!(matches!(verdict_of(&rows, "a/new"), Verdict::New(_)));
        assert!(verdict_of(&rows, "a/new").is_failure());
    }

    /// The regression this gate self-test pins down: a benchmark the
    /// baseline promises but the run did not produce must be a hard
    /// failure, not a warning — whether one bench vanished from a file
    /// or a whole BENCH_*.json file is absent from the run.
    #[test]
    fn missing_counterparts_fail_hard() {
        let base = medians(&[
            ("BENCH_a.json", &[("a/x", 100.0), ("a/gone", 50.0)][..]),
            ("BENCH_ingest.json", &[("ingest/append_1k", 80.0)][..]),
        ]);
        let cur = medians(&[("BENCH_a.json", &[("a/x", 100.0)][..])]);
        let rows = gate(&cur, &base, 25.0);
        assert!(matches!(verdict_of(&rows, "a/gone"), Verdict::Missing));
        assert!(matches!(
            verdict_of(&rows, "ingest/append_1k"),
            Verdict::Missing
        ));
        let failures = rows.iter().filter(|(_, v)| v.is_failure()).count();
        assert_eq!(failures, 2, "both missing benches fail the gate");
    }

    #[test]
    fn zero_baselines_warn_without_failing() {
        let base = medians(&[("BENCH_a.json", &[("a/x", 0.0)])]);
        let cur = medians(&[("BENCH_a.json", &[("a/x", 10.0)])]);
        let rows = gate(&cur, &base, 25.0);
        assert!(matches!(verdict_of(&rows, "a/x"), Verdict::ZeroBaseline(_)));
        assert!(!verdict_of(&rows, "a/x").is_failure());
        assert!(verdict_of(&rows, "a/x").is_warning());
    }

    /// A whole run file with no baseline counterpart is surfaced by
    /// name (on top of its benches failing as NEW) — never silently
    /// ignored.
    #[test]
    fn orphan_run_files_are_reported_by_name() {
        let base = medians(&[("BENCH_a.json", &[("a/x", 100.0)])]);
        let cur = medians(&[
            ("BENCH_a.json", &[("a/x", 100.0)][..]),
            ("BENCH_scan_pruning.json", &[("scan_pruning/1%", 5.0)][..]),
        ]);
        assert_eq!(
            orphan_files(&cur, &base),
            vec!["BENCH_scan_pruning.json".to_string()]
        );
        assert!(orphan_files(&base, &base).is_empty());
        // The orphan's benches still fail the gate as NEW.
        let rows = gate(&cur, &base, 25.0);
        assert!(verdict_of(&rows, "scan_pruning/1%").is_failure());
    }

    #[test]
    fn identical_sets_pass() {
        let base = medians(&[("BENCH_a.json", &[("a/x", 100.0)])]);
        let rows = gate(&base, &base, 25.0);
        assert!(rows.iter().all(|(_, v)| !v.is_failure() && !v.is_warning()));
    }
}
