//! The SeeDB experiment harness: regenerates every table/figure/claim of
//! the paper as terminal tables (see DESIGN.md's experiment index and
//! EXPERIMENTS.md for paper-vs-measured commentary).
//!
//! ```sh
//! cargo run --release -p seedb-bench --bin experiments          # all
//! cargo run --release -p seedb-bench --bin experiments -- s2e   # one
//! ```

use std::sync::Arc;
use std::time::Instant;

use memdb::{Database, SampleSpec};
use seedb_bench::{jaccard, recall, workload};
use seedb_core::{view_space_size, FunctionSet};
use seedb_core::{
    AnalystQuery, GroupByCombining, Metric, PruningConfig, SeeDb, SeeDbConfig, ViewResult,
};
use seedb_data::{Categorical, DimSpec, Plant, SyntheticSpec};

fn main() {
    let filter: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();
    let want = |id: &str| filter.is_empty() || filter.iter().any(|f| f == id);

    println!("SeeDB reproduction — experiment harness");
    println!("=======================================\n");

    if want("c1") {
        exp_c1_view_space_growth();
    }
    if want("s1") {
        exp_s1_utility();
    }
    if want("s2a") {
        exp_s2a_latency_sweep();
    }
    if want("s2b") {
        exp_s2b_combine_target_comparison();
    }
    if want("s2c") {
        exp_s2c_combine_aggregates();
    }
    if want("s2d") {
        exp_s2d_combine_groupbys();
    }
    if want("s2e") {
        exp_s2e_sampling();
    }
    if want("s2f") {
        exp_s2f_parallelism();
    }
    if want("s2g") {
        exp_s2g_pruning();
    }
    if want("e1") {
        exp_e1_phased();
    }
    if want("e2") {
        exp_e2_packing();
    }
}

fn header(id: &str, title: &str, claim: &str) {
    println!("--- {id}: {title}");
    println!("    paper: {claim}\n");
}

fn top_labels(views: &[ViewResult], k: usize) -> Vec<String> {
    views.iter().take(k).map(|v| v.spec.label()).collect()
}

fn top_dims(views: &[ViewResult], k: usize) -> Vec<String> {
    let mut dims = Vec::new();
    for v in views.iter() {
        if !dims.contains(&v.spec.dimension) {
            dims.push(v.spec.dimension.clone());
        }
        if dims.len() >= k {
            break;
        }
    }
    dims
}

/// C1 — §1(b): candidate views grow quadratically with attribute count.
fn exp_c1_view_space_growth() {
    header(
        "C1",
        "view-space growth",
        "\"the number of candidate views increases as the square of the number of attributes\"",
    );
    println!(
        "{:>12} {:>16} {:>10}",
        "attributes", "candidate views", "ratio"
    );
    let funcs = FunctionSet::standard();
    let mut prev = 0usize;
    for attrs in [10usize, 20, 40, 80, 160] {
        let views = view_space_size(attrs / 2, attrs - attrs / 2, &funcs);
        let ratio = if prev > 0 {
            format!("{:.2}x", views as f64 / prev as f64)
        } else {
            "-".to_string()
        };
        println!("{attrs:>12} {views:>16} {ratio:>10}");
        prev = views;
    }
    println!("    (doubling attributes ~quadruples views: quadratic)\n");
}

/// S1 — Scenario 1: utility. SeeDB recovers planted trends across the
/// three demo datasets and all metrics; low-utility views stay boring.
fn exp_s1_utility() {
    header(
        "S1",
        "utility (Scenario 1)",
        "\"demonstrate the utility of SEEDB in surfacing interesting trends for a query\"; \
         attendees can vary the distance metric",
    );

    let datasets: Vec<(&str, seedb_data::Dataset)> = vec![
        ("store_orders", seedb_data::store_orders(30_000, 42)),
        ("election", seedb_data::election_contributions(30_000, 42)),
        ("medical", seedb_data::medical(30_000, 42)),
    ];

    println!(
        "{:<14} {:<10} {:>9} {:>9}  top dimensions",
        "dataset", "metric", "recall@4", "top util"
    );
    for (name, data) in datasets {
        let db = Arc::new(Database::new());
        let truth = data.ground_truth.clone();
        let sql = data.query_sql.clone();
        db.register(data.table);
        for metric in Metric::all() {
            let mut cfg = SeeDbConfig::recommended().with_metric(metric).with_k(8);
            cfg.low_utility_views = 3;
            let seedb = SeeDb::new(db.clone(), cfg);
            let rec = seedb.recommend_sql(&sql).expect("demo query runs");
            let dims = top_dims(&rec.all, 4);
            let r = recall(&truth, &dims);
            println!(
                "{name:<14} {:<10} {r:>9.2} {:>9.3}  {}",
                metric.name(),
                rec.views.first().map(|v| v.utility).unwrap_or(0.0),
                dims.join(", ")
            );
            // Contrast: worst views score far below the best.
            if metric == Metric::EarthMovers {
                let worst = rec.low_utility.first().map(|v| v.utility).unwrap_or(0.0);
                let best = rec.views.first().map(|v| v.utility).unwrap_or(0.0);
                println!(
                    "{:<14} {:<10} {:>9} {:>9}  low-utility contrast: worst {:.4} vs best {:.4}",
                    "", "", "", "", worst, best
                );
            }
        }
    }
    println!();
}

/// S2a — Scenario 2: latency vs data size and attribute count, basic vs
/// all-optimizations.
fn exp_s2a_latency_sweep() {
    header(
        "S2a",
        "latency vs data size / attributes (Scenario 2)",
        "\"the right set of optimizations can enable real-time data analysis of large datasets\"",
    );
    println!(
        "{:>9} {:>6} | {:>10} {:>12} | {:>10} {:>12} | {:>8}",
        "rows", "dims", "basic ms", "basic rows", "opt ms", "opt rows", "speedup"
    );
    for (rows, dims) in [
        (20_000usize, 4usize),
        (50_000, 4),
        (100_000, 4),
        (200_000, 4),
        (50_000, 6),
        (50_000, 10),
        (50_000, 16),
    ] {
        let w = workload(rows, dims, 10, 3, 5);
        let run = |cfg: SeeDbConfig| {
            let seedb = SeeDb::new(w.db.clone(), cfg.with_k(5));
            let t0 = Instant::now();
            let rec = seedb.recommend(&w.analyst).expect("runs");
            (t0.elapsed().as_secs_f64() * 1e3, rec.cost.rows_scanned)
        };
        let (basic_ms, basic_rows) = run(SeeDbConfig::basic());
        let mut opt = SeeDbConfig::recommended();
        opt.pruning = PruningConfig::disabled(); // same views; isolate sharing+parallelism
        let (opt_ms, opt_rows) = run(opt);
        println!(
            "{rows:>9} {dims:>6} | {basic_ms:>10.1} {basic_rows:>12} | {opt_ms:>10.1} {opt_rows:>12} | {:>7.1}x",
            basic_ms / opt_ms
        );
    }
    println!();
}

/// S2b — "Combine target and comparison view query ... halves the time
/// required to compute the results for a single view."
fn exp_s2b_combine_target_comparison() {
    header(
        "S2b",
        "combine target + comparison",
        "\"This simple optimization halves the time required to compute the results for a single view.\"",
    );
    let w = workload(200_000, 3, 10, 1, 9);
    // A single view: restrict to SUM over m0 by d1.
    let mut base = SeeDbConfig::basic().with_k(1);
    base.functions = FunctionSet::sum_only();
    let run = |combine: bool| {
        let mut cfg = base.clone();
        cfg.optimizer.combine_target_comparison = combine;
        let seedb = SeeDb::new(w.db.clone(), cfg);
        let t0 = Instant::now();
        let rec = seedb.recommend(&w.analyst).expect("runs");
        (
            t0.elapsed().as_secs_f64() * 1e3,
            rec.cost.table_scans,
            rec.cost.rows_scanned,
        )
    };
    let (off_ms, off_scans, off_rows) = run(false);
    let (on_ms, on_scans, on_rows) = run(true);
    println!("{:<22} {:>9} {:>12} {:>10}", "", "scans", "rows", "ms");
    println!(
        "{:<22} {off_scans:>9} {off_rows:>12} {off_ms:>10.1}",
        "separate queries"
    );
    println!(
        "{:<22} {on_scans:>9} {on_rows:>12} {on_ms:>10.1}",
        "combined query"
    );
    println!(
        "    scan reduction {:.2}x (paper: 2x), wall speedup {:.2}x\n",
        off_scans as f64 / on_scans as f64,
        off_ms / on_ms
    );
}

/// S2c — "Combine Multiple Aggregates ... speed up linear in the number
/// of aggregate attributes."
fn exp_s2c_combine_aggregates() {
    header(
        "S2c",
        "combine multiple aggregates",
        "\"This rewriting provides a speed up linear in the number of aggregate attributes.\"",
    );
    println!(
        "{:>10} | {:>9} {:>10} | {:>9} {:>10} | {:>14}",
        "#measures", "sep scans", "sep ms", "comb scans", "comb ms", "scan reduction"
    );
    for measures in [1usize, 2, 4, 8] {
        let w = workload(100_000, 3, 10, measures, 13);
        let run = |combine: bool| {
            let mut cfg = SeeDbConfig::basic().with_k(3);
            cfg.functions = FunctionSet::sum_only();
            cfg.optimizer.combine_target_comparison = true;
            cfg.optimizer.combine_aggregates = combine;
            let seedb = SeeDb::new(w.db.clone(), cfg);
            let t0 = Instant::now();
            let rec = seedb.recommend(&w.analyst).expect("runs");
            (t0.elapsed().as_secs_f64() * 1e3, rec.cost.table_scans)
        };
        let (sep_ms, sep_scans) = run(false);
        let (comb_ms, comb_scans) = run(true);
        println!(
            "{measures:>10} | {sep_scans:>9} {sep_ms:>10.1} | {comb_scans:>10} {comb_ms:>10.1} | {:>13.1}x",
            sep_scans as f64 / comb_scans as f64
        );
    }
    println!("    (scan reduction grows linearly with the number of aggregate attributes)\n");
}

/// S2d — "Combine Multiple Group-bys" with the bin-packing memory budget.
fn exp_s2d_combine_groupbys() {
    header(
        "S2d",
        "combine multiple group-bys (bin packing under a memory budget)",
        "\"combine queries with different group-by attributes into a single query ... the number of \
         views that can be combined depends on ... working memory; we model the problem as a variant \
         of bin-packing\"",
    );
    let w = workload(100_000, 10, 12, 1, 17);
    println!(
        "{:<28} {:>8} {:>9} {:>12} {:>9}",
        "strategy / budget", "queries", "scans", "rows", "ms"
    );
    let run = |label: String, combining: GroupByCombining, budget: u64| {
        let mut cfg = SeeDbConfig::basic().with_k(5);
        cfg.functions = FunctionSet::sum_only();
        cfg.optimizer.combine_target_comparison = true;
        cfg.optimizer.combine_aggregates = true;
        cfg.optimizer.group_by_combining = combining;
        cfg.optimizer.memory_budget_groups = budget;
        let seedb = SeeDb::new(w.db.clone(), cfg);
        let t0 = Instant::now();
        let rec = seedb.recommend(&w.analyst).expect("runs");
        println!(
            "{label:<28} {:>8} {:>9} {:>12} {:>9.1}",
            rec.num_queries,
            rec.cost.table_scans,
            rec.cost.rows_scanned,
            t0.elapsed().as_secs_f64() * 1e3
        );
    };
    run(
        "off (one query per dim)".into(),
        GroupByCombining::Off,
        u64::MAX,
    );
    for budget in [12u64, 24, 48, 1_000_000] {
        run(
            format!("grouping sets, budget {budget}"),
            GroupByCombining::GroupingSets,
            budget,
        );
    }
    for budget in [144u64, 20_000, 1_000_000_000] {
        run(
            format!("multi-gb rollup, budget {budget}"),
            GroupByCombining::MultiGroupBy,
            budget,
        );
    }
    println!("    (larger budgets pack more group-bys per scan -> fewer scans)\n");
}

/// S2e — sampling: latency down, accuracy degrades gracefully.
fn exp_s2e_sampling() {
    header(
        "S2e",
        "sampling (latency vs accuracy)",
        "\"the sampling technique and size of the sample both affect view accuracy\"",
    );
    let w = workload(200_000, 6, 10, 2, 21);
    let exact = {
        let mut cfg = SeeDbConfig::recommended().with_k(5);
        cfg.execution = cfg.execution.with_workers(1);
        let seedb = SeeDb::new(w.db.clone(), cfg);
        let rec = seedb.recommend(&w.analyst).expect("runs");
        top_labels(&rec.all, 5)
    };
    println!(
        "{:>10} {:>12} {:>9} {:>12} {:>14}",
        "fraction", "rows", "ms", "jaccard@5", "truth recall"
    );
    for fraction in [1.0f64, 0.5, 0.2, 0.1, 0.05, 0.01, 0.002] {
        let mut cfg = SeeDbConfig::recommended().with_k(5);
        cfg.execution = cfg.execution.with_workers(1);
        if fraction < 1.0 {
            cfg.optimizer.sample = Some(SampleSpec::Bernoulli { fraction, seed: 3 });
        }
        let seedb = SeeDb::new(w.db.clone(), cfg);
        let t0 = Instant::now();
        let rec = seedb.recommend(&w.analyst).expect("runs");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let tops = top_labels(&rec.all, 5);
        let dims = top_dims(&rec.all, 3);
        println!(
            "{fraction:>10.3} {:>12} {ms:>9.1} {:>12.2} {:>14.2}",
            rec.cost.rows_scanned,
            jaccard(&exact, &tops),
            recall(&w.ground_truth_dims, &dims),
        );
    }
    println!(
        "    (latency falls with the sample; ranking stays accurate until very small samples)\n"
    );
}

/// S2f — parallelism: total latency down, per-query time up.
fn exp_s2f_parallelism() {
    header(
        "S2f",
        "parallel query execution",
        "\"as the number of queries executed in parallel increases, the total latency decreases at \
         the cost of increased per query execution time\"",
    );
    let w = workload(100_000, 8, 10, 2, 23);
    println!(
        "{:>9} {:>12} {:>18}",
        "workers", "total ms", "mean per-query ms"
    );
    for workers in [1usize, 2, 4, 8, 16] {
        let mut cfg = SeeDbConfig::basic().with_k(5);
        cfg.execution = cfg.execution.with_workers(workers);
        let seedb = SeeDb::new(w.db.clone(), cfg);
        let t0 = Instant::now();
        let rec = seedb.recommend(&w.analyst).expect("runs");
        let total_ms = t0.elapsed().as_secs_f64() * 1e3;
        // Mean per-query time: execution phase / queries, scaled by
        // workers (queries overlap), approximated from phase timing.
        let per_query_ms =
            rec.timings.execution.as_secs_f64() * 1e3 * workers as f64 / rec.num_queries as f64;
        println!("{workers:>9} {total_ms:>12.1} {per_query_ms:>18.2}");
    }
    println!();
}

/// E1 — extension: phased execution with confidence-interval pruning
/// (paper challenge (d): trade estimation accuracy for latency).
fn exp_e1_phased() {
    use seedb_core::{
        enumerate_views, run_phased, run_phased_with_group_counts, FunctionSet, PhasedConfig,
    };
    use std::collections::HashMap;
    header(
        "E1",
        "EXTENSION: phased execution + confidence-interval pruning",
        "challenge (d): \"we must trade-off accuracy of visualizations or estimation of \
         'interestingness' for reduced latency\" (realized in the authors' follow-up work)",
    );
    let w = workload(200_000, 10, 10, 2, 31);
    let table = w.db.table("synthetic").unwrap();
    let views: Vec<_> = enumerate_views(table.schema(), &FunctionSet::standard())
        .into_iter()
        .filter(|v| v.dimension != "d0")
        .collect();
    println!(
        "{:>8} {:>12} {:>12} {:>10} {:>12}",
        "phases", "view-phases", "work saved", "ms", "top-5 exact?"
    );
    // Exact top-5 for comparison.
    let exact_cfg = PhasedConfig {
        phases: 1,
        k: 5,
        delta: 0.05,
        min_phases: 1,
        metric: Metric::EarthMovers,
        workers: 1,
    };
    let exact = run_phased(&table, &w.analyst, &views, &exact_cfg).unwrap();
    let exact_top: Vec<String> = exact.views.iter().map(|v| v.spec.label()).collect();
    // Per-dimension group counts for the confidence bound, computed
    // once outside the timed loop (as the engine does from metadata).
    let mut counts: HashMap<String, usize> = HashMap::new();
    for v in &views {
        if !counts.contains_key(&v.dimension) {
            let s = memdb::ColumnStats::collect(&v.dimension, table.column(&v.dimension).unwrap());
            counts.insert(v.dimension.clone(), s.group_count());
        }
    }
    for phases in [1usize, 4, 10, 20] {
        let cfg = PhasedConfig {
            phases,
            k: 5,
            delta: 0.05,
            min_phases: 2,
            metric: Metric::EarthMovers,
            workers: 1,
        };
        let t0 = Instant::now();
        let out = run_phased_with_group_counts(&table, &w.analyst, &views, &cfg, &counts).unwrap();
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let top: Vec<String> = out.views.iter().map(|v| v.spec.label()).collect();
        println!(
            "{phases:>8} {:>12} {:>11.0}% {ms:>10.1} {:>12}",
            out.view_phases,
            100.0 * out.work_saved(views.len(), phases),
            if top == exact_top { "yes" } else { "NO" }
        );
    }
    println!("    (more phases -> earlier pruning of hopeless views; top-k stays exact)\n");
}

/// E2 — ablation: exact branch-and-bound vs first-fit-decreasing packing.
fn exp_e2_packing() {
    use seedb_core::packing::{pack_exact, pack_ffd};
    header(
        "E2",
        "ABLATION: bin-packing solver (exact B&B vs FFD heuristic)",
        "\"we model the problem ... as a variant of bin-packing and apply ILP techniques\"",
    );
    use rand::{Rng, SeedableRng};
    println!(
        "{:>7} {:>9} | {:>9} {:>9} {:>12}",
        "items", "capacity", "FFD bins", "B&B bins", "B&B wins"
    );
    for n in [8usize, 12, 16] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1234);
        let mut ffd_total = 0usize;
        let mut exact_total = 0usize;
        let mut wins = 0usize;
        let trials = 200;
        for _ in 0..trials {
            let weights: Vec<u64> = (0..n).map(|_| rng.gen_range(1..=60)).collect();
            let ffd = pack_ffd(&weights, 100).len();
            let exact = pack_exact(&weights, 100).len();
            ffd_total += ffd;
            exact_total += exact;
            if exact < ffd {
                wins += 1;
            }
        }
        println!(
            "{n:>7} {:>9} | {:>9.2} {:>9.2} {:>10}/{trials}",
            100,
            ffd_total as f64 / trials as f64,
            exact_total as f64 / trials as f64,
            wins
        );
    }
    println!("    (exact solver never uses more bins; each saved bin is one saved table scan)\n");
}

/// S2g — pruning: views pruned per rule, latency, and recall kept.
fn exp_s2g_pruning() {
    header(
        "S2g",
        "view-space pruning",
        "\"SEEDB ... aggressively prune[s] view queries that are unlikely to have high utility\" \
         via variance, correlated attributes, and access frequency",
    );
    // Build a table with prey for every rule (like the pruning bench).
    let mut spec = SyntheticSpec::knobs(60_000, 5, 10, 1.0, 2, 29).with_plant(Plant {
        subset_dim: 0,
        subset_value: 0,
        deviating_dims: vec![1, 2],
        deviating_measures: vec![],
    });
    spec.dims
        .push(DimSpec::new("constant", Categorical::Uniform { k: 1 }));
    spec.dims.push(DimSpec::derived("d1_alias", 10, 1, 0.0));
    spec.dims.push(DimSpec::derived("d2_alias", 10, 2, 0.0));
    let analyst = AnalystQuery::new("synthetic", spec.subset_filter());
    let truth = spec.ground_truth_dims();
    let db = Arc::new(Database::new());
    db.register(spec.generate());

    println!(
        "{:<24} {:>7} {:>8} {:>9} {:>9} {:>8}",
        "rules", "kept", "pruned", "queries", "ms", "recall"
    );
    let configs: Vec<(&str, PruningConfig)> = vec![
        ("none", PruningConfig::disabled()),
        ("variance", {
            let mut p = PruningConfig::disabled();
            p.variance = true;
            p.min_entropy = 0.05;
            p
        }),
        ("variance+correlation", {
            let mut p = PruningConfig::disabled();
            p.variance = true;
            p.min_entropy = 0.05;
            p.correlation = true;
            p.correlation_threshold = 0.95;
            p
        }),
        ("all (+access freq)", PruningConfig::aggressive()),
    ];
    for (name, pruning) in configs {
        let mut cfg = SeeDbConfig::recommended().with_k(5);
        cfg.execution = cfg.execution.with_workers(1);
        cfg.pruning = pruning;
        let seedb = SeeDb::new(db.clone(), cfg);
        for _ in 0..20 {
            seedb
                .tracker()
                .record("synthetic", ["d0", "d1", "d2", "m0", "m1"]);
        }
        let t0 = Instant::now();
        let rec = seedb.recommend(&analyst).expect("runs");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let dims = top_dims(&rec.all, 3);
        println!(
            "{name:<24} {:>7} {:>8} {:>9} {ms:>9.1} {:>8.2}",
            rec.all.len(),
            rec.pruned.len(),
            rec.num_queries,
            recall(&truth, &dims)
        );
    }
    println!("    (pruning shrinks the executed view set without losing the true top views)\n");
}
