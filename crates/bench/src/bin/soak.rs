//! `soak` — run the closed-loop traffic simulator against a real
//! service and check serving invariants continuously.
//!
//! ```text
//! cargo run --release -p seedb-bench --bin soak -- --seed 42 --short
//! ```
//!
//! Flags:
//! - `--seed N`       workload seed (default 42); same seed ⇒ byte-identical trace
//! - `--short`        the PR-blocking preset (~10 virtual seconds; default)
//! - `--full`         the nightly preset (minutes of virtual time)
//! - `--mini`         the test-sized preset (~3 virtual seconds)
//! - `--out DIR`      artifact directory (default `$SEEDB_BENCH_DIR` or `bench-out`)
//! - `--trace`        also dump the full workload trace to `<out>/soak-trace.txt`
//! - `--inject-slo NS` plant an NS-nanosecond latency sample per query into the
//!   watchdog's histogram — forces a deterministic `latency-p99` breach whose
//!   flight-recorder dump lands in `<out>/dumps/` (byte-identical per seed)
//!
//! Writes `BENCH_soak.json` (bench_gate shape — latency medians plus
//! seed-deterministic counters), `soak-report.json` (the invariant
//! report), and `obs-report.json` (every service incarnation's full
//! metrics snapshot keyed by recovery epoch, ticked on virtual time —
//! byte-identical per seed) into the artifact directory; watchdog
//! breaches write flight-recorder dumps into `<out>/dumps/`. Exits
//! non-zero iff any invariant tripped; every violation prints its
//! `(seed, vt)` replay hint.

use std::path::PathBuf;
use std::process::ExitCode;

use seedb_bench::soak::{self, SoakSpec};

struct Args {
    seed: u64,
    preset: Preset,
    out: PathBuf,
    dump_trace: bool,
    inject_slo_ns: u64,
}

enum Preset {
    Short,
    Full,
    Mini,
}

fn parse_args() -> Result<Args, String> {
    let default_out = std::env::var("SEEDB_BENCH_DIR").unwrap_or_else(|_| "bench-out".into());
    let mut args = Args {
        seed: 42,
        preset: Preset::Short,
        out: PathBuf::from(default_out),
        dump_trace: false,
        inject_slo_ns: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|_| format!("bad seed: {v}"))?;
            }
            "--short" => args.preset = Preset::Short,
            "--full" => args.preset = Preset::Full,
            "--mini" => args.preset = Preset::Mini,
            "--out" => args.out = PathBuf::from(it.next().ok_or("--out needs a value")?),
            "--trace" => args.dump_trace = true,
            "--inject-slo" => {
                let v = it.next().ok_or("--inject-slo needs a value (ns)")?;
                args.inject_slo_ns = v.parse().map_err(|_| format!("bad --inject-slo: {v}"))?;
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("soak: {e}");
            eprintln!(
                "usage: soak [--seed N] [--short|--full|--mini] [--out DIR] [--trace] \
                 [--inject-slo NS]"
            );
            return ExitCode::from(2);
        }
    };
    let mut spec = match args.preset {
        Preset::Short => SoakSpec::short(args.seed),
        Preset::Full => SoakSpec::full(args.seed),
        Preset::Mini => SoakSpec::mini(args.seed),
    };
    spec.slo_inject_ns = args.inject_slo_ns;
    println!(
        "soak: seed={} virtual={:.0}s analysts={} tables={} (ingest every {}ms, \
         rereg every {:.1}s, crash every {:.1}s)",
        spec.seed,
        spec.virtual_secs(),
        spec.analysts,
        spec.tables,
        spec.ingest_interval_us / 1_000,
        spec.reregister_interval_us as f64 / 1e6,
        spec.crash_interval_us as f64 / 1e6,
    );

    // The durable store the crash injector tears down and recovers.
    let store_dir =
        std::env::temp_dir().join(format!("seedb-soak-{}-{}", std::process::id(), spec.seed));
    let _ = std::fs::remove_dir_all(&store_dir);
    // Flight-recorder dumps live under the artifact dir (the store dir
    // is torn down mid-run); start from a clean slate so leftover dumps
    // from a previous run can't pollute a byte-compare.
    let dumps_dir = args.out.join("dumps");
    let _ = std::fs::remove_dir_all(&dumps_dir);
    if let Err(e) = std::fs::create_dir_all(&dumps_dir) {
        eprintln!("soak: cannot create {}: {e}", dumps_dir.display());
        return ExitCode::from(2);
    }
    let outcome = soak::run_with_dumps(&spec, &store_dir, Some(&dumps_dir));
    let _ = std::fs::remove_dir_all(&store_dir);
    let report = &outcome.report;
    let bench_path = args.out.join("BENCH_soak.json");
    let report_path = args.out.join("soak-report.json");
    let obs_path = args.out.join("obs-report.json");
    if let Err(e) = std::fs::write(&bench_path, report.to_bench_json()) {
        eprintln!("soak: cannot write {}: {e}", bench_path.display());
        return ExitCode::from(2);
    }
    if let Err(e) = std::fs::write(&report_path, report.to_report_json()) {
        eprintln!("soak: cannot write {}: {e}", report_path.display());
        return ExitCode::from(2);
    }
    // Every incarnation's full metrics snapshot (serve → execute →
    // store), ticked on virtual time — byte-identical per seed.
    if let Err(e) = std::fs::write(&obs_path, &outcome.obs_json) {
        eprintln!("soak: cannot write {}: {e}", obs_path.display());
        return ExitCode::from(2);
    }
    if args.dump_trace {
        let trace_path = args.out.join("soak-trace.txt");
        let mut text = outcome.trace.lines().join("\n");
        text.push('\n');
        if let Err(e) = std::fs::write(&trace_path, text) {
            eprintln!("soak: cannot write {}: {e}", trace_path.display());
            return ExitCode::from(2);
        }
    }

    println!(
        "soak: {} queries ({:.0}/s wall), {} appends ({} rows), {} reregisters, \
         {} crashes ({} clean / {} torn)",
        report.queries,
        report.throughput_qps(),
        report.appends,
        report.appended_rows,
        report.reregisters,
        report.crashes_clean + report.crashes_torn,
        report.crashes_clean,
        report.crashes_torn,
    );
    println!(
        "soak: cache hit rate {:.3} ({} hits / {} misses, {} refreshes, {} fallbacks), \
         {} table scans, {} rows scanned",
        report.hit_rate(),
        report.hits,
        report.misses,
        report.refreshes,
        report.refresh_fallbacks,
        report.table_scans,
        report.rows_scanned,
    );
    println!(
        "soak: recommend p50 {:.2}ms p99 {:.2}ms; checks: {} spot, {} crash, {} sweeps; \
         trace digest {:016x}",
        report.recommend.p50_ns as f64 / 1e6,
        report.recommend.p99_ns as f64 / 1e6,
        report.checks.0,
        report.checks.1,
        report.checks.2,
        report.trace_digest,
    );
    let dump_count = std::fs::read_dir(&dumps_dir)
        .map(|d| d.count())
        .unwrap_or(0);
    println!(
        "soak: telemetry: {} windows evaluated, {} watchdog breaches, {} flight-recorder \
         dump(s) in {}",
        report.telemetry_windows,
        report.telemetry_breaches,
        dump_count,
        dumps_dir.display(),
    );
    println!(
        "soak: wrote {}, {} and {}",
        bench_path.display(),
        report_path.display(),
        obs_path.display()
    );

    if report.violations.is_empty() {
        println!("soak: PASS — zero invariant violations");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "soak: FAIL — {} invariant violation(s):",
            report.violations.len()
        );
        for v in &report.violations {
            eprintln!("  {v}");
            eprintln!("  {}", v.replay_hint());
        }
        ExitCode::FAILURE
    }
}
