//! Shared helpers for the SeeDB benchmark harness.
//!
//! Each Criterion bench and the `experiments` binary regenerate one
//! artifact of the paper (see DESIGN.md's experiment index). The helpers
//! here build the standard workloads so every experiment measures the
//! same data.

use std::sync::Arc;

use memdb::Database;
use seedb_core::AnalystQuery;
use seedb_data::{Plant, SyntheticSpec};

pub mod soak;

/// A ready-to-query benchmark workload: database + analyst query +
/// planted ground truth.
pub struct Workload {
    /// The database holding the synthetic fact table.
    pub db: Arc<Database>,
    /// The analyst query selecting the planted subset.
    pub analyst: AnalystQuery,
    /// Names of the planted deviating dimensions.
    pub ground_truth_dims: Vec<String>,
    /// The generator spec (for reporting knob values).
    pub spec: SyntheticSpec,
}

/// Build the standard planted-deviation workload used across Scenario-2
/// experiments: `rows` rows, `dims` dimensions of cardinality `card`
/// (Zipf 1.0), `measures` measures, deviations planted on d1 and d2.
pub fn workload(rows: usize, dims: usize, card: usize, measures: usize, seed: u64) -> Workload {
    assert!(dims >= 3, "need at least d0 (subset) + d1/d2 (planted)");
    let spec = SyntheticSpec::knobs(rows, dims, card, 1.0, measures, seed).with_plant(Plant {
        subset_dim: 0,
        subset_value: 0,
        deviating_dims: vec![1, 2],
        deviating_measures: vec![(0, 30.0)],
    });
    let analyst = AnalystQuery::new("synthetic", spec.subset_filter());
    let db = Arc::new(Database::new());
    db.register(spec.generate());
    Workload {
        db,
        analyst,
        ground_truth_dims: spec.ground_truth_dims(),
        spec,
    }
}

/// Jaccard similarity between two top-k view-label lists (the sampling
/// experiments' accuracy measure).
pub fn jaccard(a: &[String], b: &[String]) -> f64 {
    let sa: std::collections::HashSet<&String> = a.iter().collect();
    let sb: std::collections::HashSet<&String> = b.iter().collect();
    let inter = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    if union == 0.0 {
        1.0
    } else {
        inter / union
    }
}

/// Fraction of `truth` entries appearing in `found` (recall@k for the
/// Scenario-1 utility experiments).
pub fn recall(truth: &[String], found: &[String]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    truth.iter().filter(|t| found.contains(t)).count() as f64 / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_builds() {
        let w = workload(1000, 4, 6, 2, 1);
        assert_eq!(w.ground_truth_dims, vec!["d1", "d2"]);
        assert!(w.analyst.filter.is_some());
        assert_eq!(w.db.table("synthetic").unwrap().num_rows(), 1000);
    }

    #[test]
    fn jaccard_and_recall() {
        let a: Vec<String> = ["x", "y"].iter().map(|s| s.to_string()).collect();
        let b: Vec<String> = ["y", "z"].iter().map(|s| s.to_string()).collect();
        assert!((jaccard(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(jaccard(&a, &a), 1.0);
        assert_eq!(recall(&a, &b), 0.5);
        assert_eq!(recall(&[], &b), 1.0);
    }
}
