//! Virtual time: a discrete-event clock and queue.
//!
//! Every workload decision in the soak harness is ordered by *virtual*
//! microseconds, never by the wall clock — two runs with the same spec
//! pop the same events in the same order on any machine, which is what
//! makes a soak trace replayable from just `(seed, virtual offset)`.
//! Wall time exists only inside [`super::shim`], as a measurement.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The virtual clock: monotone microseconds since soak start.
#[derive(Debug, Clone, Copy, Default)]
pub struct VirtualClock {
    now_us: u64,
}

impl VirtualClock {
    /// Current virtual time (µs).
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// Advance to `t` (monotone: earlier targets are ignored).
    pub fn advance_to(&mut self, t: u64) {
        self.now_us = self.now_us.max(t);
    }
}

/// A queue of `(virtual time, payload)` events, popped in time order
/// with deterministic FIFO tie-breaking (insertion sequence).
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    payloads: std::collections::HashMap<u64, E>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            payloads: std::collections::HashMap::new(),
            next_seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// Schedule `event` at virtual time `at_us`.
    pub fn push(&mut self, at_us: u64, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((at_us, seq)));
        self.payloads.insert(seq, event);
    }

    /// Pop the earliest event (FIFO among equal times).
    pub fn pop(&mut self) -> Option<(u64, E)> {
        while let Some(Reverse((at, seq))) = self.heap.pop() {
            if let Some(e) = self.payloads.remove(&seq) {
                return Some((at, e));
            }
        }
        None
    }

    /// Events still scheduled.
    pub fn len(&self) -> usize {
        self.payloads.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.payloads.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        let mut q = EventQueue::default();
        q.push(30, "c");
        q.push(10, "a1");
        q.push(10, "a2");
        q.push(20, "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            order,
            vec![(10, "a1"), (10, "a2"), (20, "b"), (30, "c")],
            "time order, insertion order among ties"
        );
        assert!(q.is_empty());
    }

    #[test]
    fn clock_is_monotone() {
        let mut c = VirtualClock::default();
        c.advance_to(50);
        c.advance_to(20);
        assert_eq!(c.now_us(), 50);
        c.advance_to(51);
        assert_eq!(c.now_us(), 51);
    }
}
