//! The closed-loop soak driver.
//!
//! A discrete-event loop over virtual time: synthetic analysts issue
//! Zipf-popular recommendation queries against a real [`Service`] while
//! ingest appends drifting rows, tables get re-registered with fresh
//! lineage, and a crash injector periodically tears the durable store
//! down and recovers it — all interleaved on one deterministic event
//! queue. The driver is single-threaded on purpose: given a
//! [`SoakSpec`], every decision (who queries what, when, which crash
//! flavor) replays byte-identically from the seed; concurrency inside
//! the service (parallel plan execution, shared scans) stays exercised
//! *underneath* each call without touching workload determinism.
//!
//! Wall time never steers the loop — it is only *measured*, through
//! [`super::shim`], to feed the latency invariants and the bench
//! artifact.

use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use memdb::{Database, DurabilityConfig, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seedb_core::{
    AnalystQuery, ExecutionStrategy, Recommendation, SeeDb, SeeDbConfig, Service, ServiceConfig,
};
use seedb_data::{Categorical, CategoricalSampler, SyntheticSpec};
use seedb_obs::{ManualClock, Obs};

use super::clock::{EventQueue, VirtualClock};
use super::invariants::{InvariantChecker, RecDigest};
use super::report::{LatencySummary, SoakReport, Trace};
use super::shim::{timed, Stopwatch};
use super::spec::SoakSpec;

/// One soak run's outputs: the report and the deterministic trace.
#[derive(Debug)]
pub struct SoakOutcome {
    /// Aggregated counters, latency summaries, and violations.
    pub report: SoakReport,
    /// The workload trace (same spec ⇒ byte-identical lines).
    pub trace: Trace,
    /// Full metrics snapshots of **every** service incarnation as one
    /// sorted-JSON object (`{"incarnations": [...]}`, one snapshot per
    /// recovery epoch, in order — each crash/restart starts a fresh
    /// registry, so the driver banks the snapshot right before dropping
    /// each incarnation). Every instrument ticks on the driver's
    /// virtual clock, so the same spec renders byte-identical JSON
    /// (an empty array if setup aborted before a service existed).
    pub obs_json: String,
}

/// What the event queue schedules.
enum Event {
    /// Analyst `i` wakes up and issues one query.
    Analyst(usize),
    /// One ingest batch lands on a Zipf-chosen table.
    Ingest,
    /// One table is replaced with fresh lineage.
    Reregister,
    /// The durable store is crashed and recovered.
    Crash,
    /// Continuous-invariant sweep (hit rate, window p99).
    Check,
}

/// Per-table ledger entry: the last *acknowledged* state, which a crash
/// is never allowed to lose.
struct TableState {
    /// Generator for this table's current lineage (labels, schema).
    spec: SyntheticSpec,
    /// Rows acknowledged (registration + every acked append).
    acked_rows: usize,
    /// Table version at the last ack.
    acked_version: u64,
}

/// Counters that survive service restarts (each recovered `Database`
/// and `Service` starts its counters at zero, so the driver banks them
/// at every crash).
#[derive(Default)]
struct RunningTotals {
    hits: u64,
    misses: u64,
    refreshes: u64,
    refresh_fallbacks: u64,
    table_scans: u64,
    rows_scanned: u64,
    telemetry_windows: u64,
    telemetry_breaches: u64,
}

impl RunningTotals {
    fn bank(&mut self, service: &Service) {
        let stats = service.cache_stats();
        self.hits += stats.hits;
        self.misses += stats.misses;
        self.refreshes += stats.refreshes;
        self.refresh_fallbacks += stats.refresh_fallbacks;
        let cost = service.database().cost();
        self.table_scans += cost.table_scans;
        self.rows_scanned += cost.rows_scanned;
        let health = service.health();
        self.telemetry_windows += health.windows_evaluated;
        self.telemetry_breaches += health.breaches.len() as u64;
    }
}

/// The serving configuration every soak uses: the recommended pipeline
/// with a small fixed `k`, access-frequency pruning off (it would make
/// served results depend on tracker history, breaking the
/// byte-identical spot check), a pinned worker count (machine-
/// independent plan counts), no cross-request batch window (nothing to
/// batch with — the driver is closed-loop — and the window is a wall
/// sleep), and the spec's cache capacity.
fn service_config(spec: &SoakSpec, dump_dir: Option<&Path>) -> ServiceConfig {
    let mut seedb = SeeDbConfig::recommended()
        .with_k(3)
        .with_execution(ExecutionStrategy::Parallel { workers: 2 });
    seedb.pruning.access_frequency = false;
    let mut cfg = ServiceConfig::recommended().with_seedb(seedb);
    cfg.cache_capacity = spec.cache_capacity;
    cfg.batch_window = Duration::ZERO;
    // Telemetry windows close on the injected virtual clock, so the
    // sampler/watchdog pipeline is exercised deterministically; a dump
    // directory turns breaches into flight-recorder files (byte-
    // identical per seed — the tracer stays disabled, so dumps carry no
    // thread-ordering-sensitive trace data).
    if let Some(dir) = dump_dir {
        cfg.telemetry = cfg.telemetry.with_dump_dir(dir);
    }
    cfg
}

fn durability(spec: &SoakSpec) -> DurabilityConfig {
    let mut d = DurabilityConfig::recommended();
    d.sync_writes = spec.sync_writes;
    d
}

/// A fresh generator spec for table index `i`, lineage `gen` (0 at
/// registration, bumped per re-registration).
fn table_spec(spec: &SoakSpec, i: usize, generation: u64) -> SyntheticSpec {
    SyntheticSpec::knobs(
        spec.rows_per_table,
        spec.dims,
        spec.cardinality,
        spec.zipf_skew,
        spec.measures,
        spec.seed ^ (i as u64).wrapping_mul(7919) ^ generation.wrapping_mul(0x5EED),
    )
    .named(&format!("t{i}"))
}

/// Distill a recommendation to its byte-comparable identity.
fn digest(rec: &Recommendation) -> RecDigest {
    rec.views
        .iter()
        .map(|v| (v.spec.label(), v.utility.to_bits()))
        .collect()
}

/// Exponentially distributed think time with mean `mean_us` (≥ 1µs).
fn think_time(rng: &mut StdRng, mean_us: u64) -> u64 {
    let u: f64 = rng.gen();
    let t = -(1.0 - u).ln() * mean_us as f64;
    (t as u64).max(1)
}

/// Run one soak to completion. `dir` is the durable-store directory the
/// crash injector tears down and recovers (created fresh; callers pass
/// a temp path and clean it up).
pub fn run(spec: &SoakSpec, dir: &Path) -> SoakOutcome {
    run_with_dumps(spec, dir, None)
}

/// [`run`] with an optional flight-recorder dump directory: watchdog
/// breaches during the soak write their dumps there (the store `dir` is
/// torn down by the crash injector, so dumps need their own home).
pub fn run_with_dumps(spec: &SoakSpec, dir: &Path, dump_dir: Option<&Path>) -> SoakOutcome {
    let run_sw = Stopwatch::start();
    let mut clock = VirtualClock::default();
    let mut queue: EventQueue<Event> = EventQueue::default();
    let mut trace = Trace::default();
    let mut checker = InvariantChecker::new(spec.seed, spec.bounds);
    let mut totals = RunningTotals::default();

    // ---- deterministic random streams -------------------------------
    // One stream per concern: interleaving never shifts another
    // stream's draws, so adding an event type cannot silently reshuffle
    // every analyst's behavior.
    let mut analyst_rngs: Vec<StdRng> = (0..spec.analysts)
        .map(|i| StdRng::seed_from_u64(spec.seed ^ 0xA11A ^ (i as u64).wrapping_mul(0x9E37_79B9)))
        .collect();
    let mut ingest_rng = StdRng::seed_from_u64(spec.seed ^ 0x1A6E);
    let table_sampler: CategoricalSampler = Categorical::Zipf {
        k: spec.tables,
        s: spec.zipf_skew,
    }
    .sampler();
    let dim_sampler: CategoricalSampler = Categorical::Uniform { k: spec.dims }.sampler();
    let value_sampler: CategoricalSampler = Categorical::Zipf {
        k: spec.cardinality,
        s: spec.zipf_skew,
    }
    .sampler();

    // ---- setup: tables, durable store, service ----------------------
    // One hand-driven observability clock for the whole run, stepped in
    // lockstep with the virtual event clock: latency histograms and
    // span stamps replay byte-identically from the seed. Each service
    // incarnation gets a *fresh* registry sharing this clock, matching
    // the per-incarnation counter banking above.
    let obs_clock = Arc::new(ManualClock::new());
    let db = Arc::new(Database::with_obs(Obs::with_clock(obs_clock.clone())));
    let mut tables: Vec<TableState> = (0..spec.tables)
        .map(|i| {
            let tspec = table_spec(spec, i, 0);
            let t = db.register(tspec.generate());
            TableState {
                spec: tspec,
                acked_rows: t.num_rows(),
                acked_version: t.version(),
            }
        })
        .collect();
    if let Err(e) = db.save_with(dir, durability(spec)) {
        // Without a durable store there is nothing to soak against.
        checker.query_error(0, "save durable store", &e.to_string());
        return finish(spec, run_sw, trace, checker, totals, None, Vec::new());
    }
    let cfg = service_config(spec, dump_dir);
    let mut service = Service::new(db, cfg.clone());
    // One metrics snapshot per service incarnation (each recovery epoch
    // starts a fresh registry), banked right before each teardown.
    let mut incarnations: Vec<String> = Vec::new();

    // ---- schedule the initial events --------------------------------
    for (i, rng) in analyst_rngs.iter_mut().enumerate() {
        queue.push(think_time(rng, spec.think_us), Event::Analyst(i));
    }
    if spec.ingest_interval_us > 0 {
        queue.push(spec.ingest_interval_us, Event::Ingest);
    }
    if spec.reregister_interval_us > 0 {
        queue.push(spec.reregister_interval_us, Event::Reregister);
    }
    if spec.crash_interval_us > 0 {
        queue.push(spec.crash_interval_us, Event::Crash);
    }
    if spec.check_interval_us > 0 {
        queue.push(spec.check_interval_us, Event::Check);
    }

    // ---- counters and latency streams -------------------------------
    let mut queries = 0u64;
    let mut appends = 0u64;
    let mut appended_rows = 0u64;
    let mut reregisters = 0u64;
    let mut crashes_clean = 0u64;
    let mut crashes_torn = 0u64;
    let mut crash_count = 0u64;
    let mut rereg_count = 0u64;
    let mut recommend_ns: Vec<u64> = Vec::new();
    let mut append_ns: Vec<u64> = Vec::new();
    let mut window_ns: Vec<u64> = Vec::new();

    // ---- the event loop ---------------------------------------------
    while let Some((at, event)) = queue.pop() {
        if at > spec.virtual_us {
            break;
        }
        clock.advance_to(at);
        obs_clock.set_ns(at.saturating_mul(1000));
        let vt = clock.now_us();
        match event {
            Event::Analyst(i) => {
                let rng = &mut analyst_rngs[i];
                let ti = table_sampler.sample(rng);
                let di = dim_sampler.sample(rng);
                let vi = value_sampler.sample(rng);
                let spot = rng.gen_bool(spec.spot_check_rate);
                let next = vt + think_time(rng, spec.think_us);
                let table = &tables[ti];
                let name = format!("t{ti}");
                let label = table.spec.dim_label(di, vi);
                let dim = format!("d{di}");
                trace.push(format!(
                    "vt={vt} analyst={i} query table={name} filter={dim}={label} spot={spot}"
                ));
                let analyst =
                    AnalystQuery::new(&name, Some(memdb::Expr::col(&dim).eq(label.as_str())));
                let (result, ns) = timed(|| service.recommend(&analyst));
                queries += 1;
                recommend_ns.push(ns);
                window_ns.push(ns);
                // SLO-breach injection: plant a fixed over-bound latency
                // sample into the shared `service.recommend_ns` histogram
                // (the cell the watchdog's p99 rule reads). Virtual-time
                // driven and single-threaded, so the tripped breach — and
                // its flight-recorder dump — replays byte-identically.
                if spec.slo_inject_ns > 0 {
                    service
                        .obs()
                        .registry()
                        .register_histogram("service.recommend_ns")
                        .record(spec.slo_inject_ns);
                }
                match result {
                    Ok(rec) => {
                        if spot {
                            // Cold recompute: a fresh engine over the same
                            // database, bypassing the cache entirely.
                            let cold_engine = SeeDb::new(
                                service.database().clone(),
                                service.config().seedb.clone(),
                            );
                            match cold_engine.recommend(&analyst) {
                                Ok(cold) => checker.spot_check(
                                    vt,
                                    &format!("{name} WHERE {dim} = {label}"),
                                    &digest(&rec),
                                    &digest(&cold),
                                ),
                                Err(e) => checker.query_error(
                                    vt,
                                    &format!("cold recompute {name}"),
                                    &e.to_string(),
                                ),
                            }
                        }
                    }
                    Err(e) => checker.query_error(
                        vt,
                        &format!("recommend {name} WHERE {dim} = {label}"),
                        &e.to_string(),
                    ),
                }
                queue.push(next, Event::Analyst(i));
            }
            Event::Ingest => {
                let ti = table_sampler.sample(&mut ingest_rng);
                let name = format!("t{ti}");
                // Measure means drift with virtual time so appended rows
                // actually pull cached aggregates stale.
                let mean = 100.0 + spec.drift_per_vsec * (vt as f64 / 1e6);
                let rows: Vec<Vec<Value>> = (0..spec.ingest_batch)
                    .map(|_| {
                        let mut row: Vec<Value> = (0..spec.dims)
                            .map(|d| {
                                let v = value_sampler.sample(&mut ingest_rng);
                                Value::Str(tables[ti].spec.dim_label(d, v))
                            })
                            .collect();
                        for _ in 0..spec.measures {
                            let jitter: f64 = ingest_rng.gen();
                            row.push(Value::Float(mean + (jitter - 0.5) * 10.0));
                        }
                        row
                    })
                    .collect();
                trace.push(format!(
                    "vt={vt} ingest table={name} rows={} mean={mean:.3}",
                    rows.len()
                ));
                let batch = rows.len();
                let (result, ns) = timed(|| service.append_rows(&name, rows));
                append_ns.push(ns);
                match result {
                    Ok(t) => {
                        appends += 1;
                        appended_rows += batch as u64;
                        tables[ti].acked_rows = t.num_rows();
                        tables[ti].acked_version = t.version();
                    }
                    Err(e) => checker.query_error(vt, &format!("append {name}"), &e.to_string()),
                }
                queue.push(vt + spec.ingest_interval_us, Event::Ingest);
            }
            Event::Reregister => {
                rereg_count += 1;
                let ti = (rereg_count as usize - 1) % spec.tables;
                let name = format!("t{ti}");
                let fresh = table_spec(spec, ti, rereg_count);
                trace.push(format!(
                    "vt={vt} reregister table={name} generation={rereg_count}"
                ));
                let t = service.database().register(fresh.generate());
                reregisters += 1;
                tables[ti] = TableState {
                    spec: fresh,
                    acked_rows: t.num_rows(),
                    acked_version: t.version(),
                };
                queue.push(vt + spec.reregister_interval_us, Event::Reregister);
            }
            Event::Crash => {
                crash_count += 1;
                let torn = crash_count.is_multiple_of(2);
                trace.push(format!(
                    "vt={vt} crash flavor={}",
                    if torn { "torn" } else { "clean" }
                ));
                if torn {
                    crashes_torn += 1;
                    // Hard crash: tear the WAL tail (a half-written frame
                    // that was never acknowledged), then drop every handle
                    // with no checkpoint — recovery must truncate the tear
                    // and keep every acked batch.
                    if let Err(e) = service.database().inject_torn_wal_tail() {
                        checker.query_error(vt, "inject torn WAL tail", &e.to_string());
                    }
                } else {
                    crashes_clean += 1;
                    // Clean restart: checkpoint + spill the warm plan set,
                    // then drop — recovery warm-starts the cache.
                    if let Err(e) = service.persist(dir) {
                        checker.query_error(vt, "persist before clean restart", &e.to_string());
                    }
                }
                totals.bank(&service);
                incarnations.push(service.metrics().to_json());
                drop(service);
                match Service::open_with_obs(
                    dir,
                    cfg.clone(),
                    durability(spec),
                    Obs::with_clock(obs_clock.clone()),
                ) {
                    Ok(recovered) => {
                        service = recovered;
                        for (ti, state) in tables.iter().enumerate() {
                            let name = format!("t{ti}");
                            let found = service
                                .database()
                                .table(&name)
                                .ok()
                                .map(|t| (t.num_rows(), t.version()));
                            checker.crash_check(
                                vt,
                                &name,
                                state.acked_rows,
                                state.acked_version,
                                found,
                            );
                        }
                    }
                    Err(e) => {
                        // Unrecoverable store: every acked table is lost.
                        checker.query_error(vt, "recover after crash", &e.to_string());
                        for (ti, state) in tables.iter().enumerate() {
                            checker.crash_check(
                                vt,
                                &format!("t{ti}"),
                                state.acked_rows,
                                state.acked_version,
                                None,
                            );
                        }
                        return finish(spec, run_sw, trace, checker, totals, None, incarnations);
                    }
                }
                queue.push(vt + spec.crash_interval_us, Event::Crash);
            }
            Event::Check => {
                let stats = service.cache_stats();
                checker.sweep(
                    vt,
                    totals.hits + stats.hits,
                    totals.misses + stats.misses,
                    &window_ns,
                );
                window_ns.clear();
                queue.push(vt + spec.check_interval_us, Event::Check);
            }
        }
    }

    totals.bank(&service);
    incarnations.push(service.metrics().to_json());
    let mut outcome = finish(
        spec,
        run_sw,
        trace,
        checker,
        totals,
        Some(clock.now_us()),
        incarnations,
    );
    outcome.report.queries = queries;
    outcome.report.appends = appends;
    outcome.report.appended_rows = appended_rows;
    outcome.report.reregisters = reregisters;
    outcome.report.crashes_clean = crashes_clean;
    outcome.report.crashes_torn = crashes_torn;
    outcome.report.recommend = LatencySummary::from_samples(&recommend_ns);
    outcome.report.append = LatencySummary::from_samples(&append_ns);
    outcome
}

/// Assemble the report skeleton shared by normal and aborted exits.
fn finish(
    spec: &SoakSpec,
    run_sw: Stopwatch,
    trace: Trace,
    checker: InvariantChecker,
    totals: RunningTotals,
    reached_vt: Option<u64>,
    incarnations: Vec<String>,
) -> SoakOutcome {
    let report = SoakReport {
        seed: spec.seed,
        virtual_us: reached_vt.unwrap_or(0),
        wall_ns: run_sw.elapsed_ns(),
        checks: checker.checks_performed(),
        hits: totals.hits,
        misses: totals.misses,
        refreshes: totals.refreshes,
        refresh_fallbacks: totals.refresh_fallbacks,
        table_scans: totals.table_scans,
        rows_scanned: totals.rows_scanned,
        telemetry_windows: totals.telemetry_windows,
        telemetry_breaches: totals.telemetry_breaches,
        violations: checker.violations().to_vec(),
        trace_digest: trace.digest(),
        ..SoakReport::default()
    };
    SoakOutcome {
        report,
        trace,
        obs_json: obs_report(&incarnations),
    }
}

/// Render the per-incarnation metrics snapshots as one JSON object. The
/// snapshots are already sorted-key JSON; this keys them by recovery
/// epoch so no incarnation's telemetry is lost to a crash.
fn obs_report(incarnations: &[String]) -> String {
    let body: Vec<String> = incarnations
        .iter()
        .map(|snap| snap.trim_end().to_string())
        .collect();
    if body.is_empty() {
        "{\n  \"incarnations\": []\n}\n".to_string()
    } else {
        format!("{{\n  \"incarnations\": [\n{}\n]\n}}\n", body.join(",\n"))
    }
}
