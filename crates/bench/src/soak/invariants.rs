//! The continuous invariant checker.
//!
//! Invariants are asserted *during* the soak, not at the end: the
//! driver feeds every served result, crash recovery, and periodic sweep
//! through this checker as virtual time advances. A violation carries
//! the seed and the virtual-time offset at which it tripped — the two
//! numbers needed to replay the exact workload prefix that produced it
//! (`soak --seed N` is deterministic, so the failure reproduces).

use super::spec::InvariantBounds;

/// Which invariant tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvariantKind {
    /// A served recommendation differed from a cold recompute.
    SpotCheck,
    /// Acknowledged state (rows/version) missing after a crash/restart.
    CrashRecovery,
    /// Cumulative cache hit rate fell below the configured floor.
    HitRateFloor,
    /// Window p99 recommend latency exceeded the configured bound.
    P99Latency,
    /// A request the workload considers infallible returned an error.
    QueryError,
}

impl InvariantKind {
    /// Stable name used in reports and the JSON artifact.
    pub fn name(self) -> &'static str {
        match self {
            InvariantKind::SpotCheck => "spot-check-byte-identical",
            InvariantKind::CrashRecovery => "no-acked-loss-across-crash",
            InvariantKind::HitRateFloor => "cache-hit-rate-floor",
            InvariantKind::P99Latency => "p99-latency-bound",
            InvariantKind::QueryError => "query-must-succeed",
        }
    }
}

/// One tripped invariant, with everything needed to replay it.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The invariant.
    pub kind: InvariantKind,
    /// The soak seed (replay key).
    pub seed: u64,
    /// Virtual time (µs since soak start) at which it tripped.
    pub vt_us: u64,
    /// Human-readable specifics.
    pub detail: String,
}

impl Violation {
    /// The replay instruction printed with every violation.
    pub fn replay_hint(&self) -> String {
        format!(
            "replay: cargo run -p seedb-bench --bin soak -- --seed {} (violation at vt={}µs)",
            self.seed, self.vt_us
        )
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] vt={}µs seed={}: {}",
            self.kind.name(),
            self.vt_us,
            self.seed,
            self.detail
        )
    }
}

/// A recommendation distilled to its byte-comparable identity: one
/// `(view label, utility bits)` pair per scored view, in rank order.
/// Two digests are equal iff the recommendations are byte-identical in
/// every way the serving contract promises.
pub type RecDigest = Vec<(String, u64)>;

/// The checker: pure bookkeeping over facts the driver feeds it, so
/// each invariant is unit-testable against a known-violation fixture.
#[derive(Debug)]
pub struct InvariantChecker {
    bounds: InvariantBounds,
    seed: u64,
    violations: Vec<Violation>,
    /// Spot checks performed (for the report).
    spot_checks: u64,
    /// Crash recoveries verified.
    crash_checks: u64,
    /// Periodic sweeps performed.
    sweeps: u64,
}

impl InvariantChecker {
    /// A checker for one run.
    pub fn new(seed: u64, bounds: InvariantBounds) -> Self {
        InvariantChecker {
            bounds,
            seed,
            violations: Vec::new(),
            spot_checks: 0,
            crash_checks: 0,
            sweeps: 0,
        }
    }

    fn trip(&mut self, kind: InvariantKind, vt_us: u64, detail: String) {
        self.violations.push(Violation {
            kind,
            seed: self.seed,
            vt_us,
            detail,
        });
    }

    /// Served-vs-cold spot check: the digests must match exactly (same
    /// views, same rank order, same utility *bits*).
    pub fn spot_check(&mut self, vt_us: u64, query: &str, served: &RecDigest, cold: &RecDigest) {
        self.spot_checks += 1;
        if served == cold {
            return;
        }
        let diff = served
            .iter()
            .zip(cold.iter())
            .enumerate()
            .find(|(_, (s, c))| s != c)
            .map(|(rank, (s, c))| {
                format!("first divergence at rank {rank}: served {s:?} vs cold {c:?}")
            })
            .unwrap_or_else(|| {
                format!(
                    "view count differs: served {} vs cold {}",
                    served.len(),
                    cold.len()
                )
            });
        self.trip(
            InvariantKind::SpotCheck,
            vt_us,
            format!("{query}: served result is not byte-identical to a cold recompute — {diff}"),
        );
    }

    /// Post-crash ledger check: every acknowledged batch must have
    /// survived — the recovered table carries exactly the acked row
    /// count and version.
    pub fn crash_check(
        &mut self,
        vt_us: u64,
        table: &str,
        expected_rows: usize,
        expected_version: u64,
        recovered: Option<(usize, u64)>,
    ) {
        self.crash_checks += 1;
        match recovered {
            None => self.trip(
                InvariantKind::CrashRecovery,
                vt_us,
                format!("table {table} vanished across the crash (acked {expected_rows} rows)"),
            ),
            Some((rows, version)) if rows != expected_rows || version != expected_version => {
                self.trip(
                    InvariantKind::CrashRecovery,
                    vt_us,
                    format!(
                        "table {table} recovered at {rows} rows v{version}, \
                         acked {expected_rows} rows v{expected_version}"
                    ),
                );
            }
            Some(_) => {}
        }
    }

    /// Periodic sweep: cumulative hit-rate floor (after warmup) and the
    /// p99 latency bound over this window's samples.
    pub fn sweep(&mut self, vt_us: u64, hits: u64, misses: u64, window_latencies_ns: &[u64]) {
        self.sweeps += 1;
        if vt_us >= self.bounds.warmup_us && hits + misses > 0 {
            let rate = hits as f64 / (hits + misses) as f64;
            if rate < self.bounds.hit_rate_floor {
                self.trip(
                    InvariantKind::HitRateFloor,
                    vt_us,
                    format!(
                        "cumulative hit rate {rate:.3} ({hits} hits / {misses} misses) \
                         below floor {:.3}",
                        self.bounds.hit_rate_floor
                    ),
                );
            }
        }
        if !window_latencies_ns.is_empty() {
            let p99 = percentile(window_latencies_ns, 0.99);
            if p99 > self.bounds.p99_ns {
                self.trip(
                    InvariantKind::P99Latency,
                    vt_us,
                    format!(
                        "window p99 {:.1}ms over bound {:.1}ms ({} samples)",
                        p99 as f64 / 1e6,
                        self.bounds.p99_ns as f64 / 1e6,
                        window_latencies_ns.len()
                    ),
                );
            }
        }
    }

    /// A request that must not fail, failed.
    pub fn query_error(&mut self, vt_us: u64, what: &str, err: &str) {
        self.trip(
            InvariantKind::QueryError,
            vt_us,
            format!("{what} failed: {err}"),
        );
    }

    /// All violations so far, in trip order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// `(spot checks, crash checks, sweeps)` performed.
    pub fn checks_performed(&self) -> (u64, u64, u64) {
        (self.spot_checks, self.crash_checks, self.sweeps)
    }
}

/// The `q`-th percentile (0.0..=1.0) of `samples` by nearest-rank on a
/// sorted copy. Returns 0 for an empty slice.
pub fn percentile(samples: &[u64], q: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    sorted.get(rank).copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checker() -> InvariantChecker {
        InvariantChecker::new(
            42,
            InvariantBounds {
                hit_rate_floor: 0.5,
                p99_ns: 1_000_000,
                warmup_us: 1_000,
            },
        )
    }

    fn digest(pairs: &[(&str, u64)]) -> RecDigest {
        pairs.iter().map(|(s, u)| (s.to_string(), *u)).collect()
    }

    // Each invariant has a known-violation fixture that must trip — and
    // a passing twin proving the checker is not trigger-happy.

    #[test]
    fn spot_check_trips_on_any_bit_difference() {
        let mut c = checker();
        let served = digest(&[("SUM(m0) by d1", 0x3FF0_0000_0000_0000)]);
        c.spot_check(10, "q", &served, &served.clone());
        assert!(c.violations().is_empty(), "identical digests pass");
        // One utility bit off — must trip.
        let cold = digest(&[("SUM(m0) by d1", 0x3FF0_0000_0000_0001)]);
        c.spot_check(20, "t0 WHERE d0 = d0_1", &served, &cold);
        // Rank-order difference — must trip.
        let swapped = digest(&[("b", 1), ("a", 2)]);
        let ordered = digest(&[("a", 2), ("b", 1)]);
        c.spot_check(30, "q2", &swapped, &ordered);
        // Missing view — must trip.
        c.spot_check(
            40,
            "q3",
            &digest(&[("a", 1)]),
            &digest(&[("a", 1), ("b", 2)]),
        );
        assert_eq!(c.violations().len(), 3);
        assert!(c
            .violations()
            .iter()
            .all(|v| v.kind == InvariantKind::SpotCheck));
        assert_eq!(c.violations()[0].vt_us, 20);
        assert_eq!(
            c.violations()[0].seed,
            42,
            "violations carry the replay seed"
        );
        assert!(c.violations()[0].replay_hint().contains("--seed 42"));
    }

    #[test]
    fn crash_check_trips_on_lost_rows_version_or_table() {
        let mut c = checker();
        c.crash_check(5, "t0", 100, 7, Some((100, 7)));
        assert!(c.violations().is_empty(), "exact recovery passes");
        c.crash_check(10, "t0", 100, 7, Some((90, 7))); // lost rows
        c.crash_check(20, "t0", 100, 7, Some((100, 6))); // lost version
        c.crash_check(30, "t1", 50, 3, None); // lost table
        assert_eq!(c.violations().len(), 3);
        assert!(c
            .violations()
            .iter()
            .all(|v| v.kind == InvariantKind::CrashRecovery));
        assert!(c.violations()[0].detail.contains("90 rows"));
    }

    #[test]
    fn hit_rate_floor_trips_after_warmup_only() {
        let mut c = checker();
        // Terrible hit rate during warmup: tolerated.
        c.sweep(500, 0, 100, &[]);
        assert!(c.violations().is_empty());
        // Same rate after warmup: trips.
        c.sweep(2_000, 10, 90, &[]);
        assert_eq!(c.violations().len(), 1);
        assert_eq!(c.violations()[0].kind, InvariantKind::HitRateFloor);
        // Healthy rate: passes.
        let before = c.violations().len();
        c.sweep(3_000, 90, 10, &[]);
        assert_eq!(c.violations().len(), before);
    }

    #[test]
    fn p99_bound_trips_on_a_slow_window() {
        let mut c = checker();
        let fast = vec![100_000u64; 100];
        c.sweep(2_000, 1, 0, &fast);
        assert!(c.violations().is_empty(), "fast window passes");
        // 2 of 100 samples at 10ms: p99 lands on a slow sample.
        let mut slow = vec![100_000u64; 98];
        slow.extend([10_000_000, 10_000_000]);
        c.sweep(3_000, 1, 0, &slow);
        assert_eq!(c.violations().len(), 1);
        assert_eq!(c.violations()[0].kind, InvariantKind::P99Latency);
    }

    #[test]
    fn query_errors_are_violations() {
        let mut c = checker();
        c.query_error(77, "recommend t0 WHERE d0 = d0_0", "unknown table t0");
        assert_eq!(c.violations().len(), 1);
        assert_eq!(c.violations()[0].kind, InvariantKind::QueryError);
        assert_eq!(c.violations()[0].vt_us, 77);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 0.99), 0);
        assert_eq!(percentile(&[7], 0.5), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(percentile(&v, 0.5), 51);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&v, 1.0), 100);
    }
}
