//! The closed-loop soak harness: a seeded, deterministic traffic
//! simulator that drives a real [`seedb_core::Service`] — Zipf-popular
//! analyst queries, concurrent drifting ingest, periodic table
//! re-registration, and injected crash/recovery over the durable store
//! — while asserting serving invariants *continuously*:
//!
//! - every spot-checked result is byte-identical to a cold recompute;
//! - no acknowledged batch is lost across a crash (clean or torn-WAL);
//! - the cache hit rate stays above a configured floor after warmup;
//! - window p99 latency stays under a (generous, wall-clock) bound.
//!
//! Every workload decision runs on virtual time from seeded streams —
//! a violation's `(seed, vt_us)` pair replays the exact run that
//! produced it. Wall clock is confined to [`shim`] (measurement only);
//! `seedb-lint` enforces that split.
//!
//! Entry point: [`driver::run`] with a [`spec::SoakSpec`] preset
//! (`short`/`full`/`mini`), or `cargo run -p seedb-bench --bin soak`.

pub mod clock;
pub mod driver;
pub mod invariants;
pub mod report;
pub mod shim;
pub mod spec;

pub use driver::{run, run_with_dumps, SoakOutcome};
pub use invariants::{InvariantChecker, InvariantKind, Violation};
pub use report::{SoakReport, Trace};
pub use spec::{InvariantBounds, SoakSpec};
