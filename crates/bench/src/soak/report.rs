//! Soak outputs: the workload trace, latency/counter summaries, and
//! the two JSON artifacts — `BENCH_soak.json` (bench_gate shape, so the
//! soak's deterministic counters and latency medians join the committed
//! baselines) and `soak-report.json` (the invariant report CI uploads).

use super::invariants::{percentile, Violation};

/// The deterministic workload trace: one line per driver decision, in
/// virtual-time order. Contains **no** wall-clock values and no
/// machine-specific paths — two runs with the same spec produce
/// byte-identical traces (the property the soak tests pin down).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    lines: Vec<String>,
}

impl Trace {
    /// Append one trace line.
    pub fn push(&mut self, line: String) {
        self.lines.push(line);
    }

    /// All lines, in order.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// FNV-1a 64 digest over the lines — the fingerprint two same-seed
    /// runs must share, printed by the `soak` bin for eyeball replays.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for line in &self.lines {
            for b in line.bytes().chain(std::iter::once(b'\n')) {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        h
    }
}

/// Distribution summary of one latency stream (wall nanoseconds).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Sample count.
    pub samples: u64,
    /// Minimum.
    pub min_ns: u64,
    /// Maximum.
    pub max_ns: u64,
    /// Arithmetic mean.
    pub mean_ns: f64,
    /// Median (p50, nearest rank).
    pub p50_ns: u64,
    /// p99 (nearest rank).
    pub p99_ns: u64,
}

impl LatencySummary {
    /// Summarize `samples` (empty in, zeros out).
    pub fn from_samples(samples: &[u64]) -> Self {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        let sum: u128 = samples.iter().map(|&n| u128::from(n)).sum();
        LatencySummary {
            samples: samples.len() as u64,
            min_ns: samples.iter().copied().min().unwrap_or(0),
            max_ns: samples.iter().copied().max().unwrap_or(0),
            mean_ns: (sum / u128::from(samples.len() as u64).max(1)) as f64,
            p50_ns: percentile(samples, 0.5),
            p99_ns: percentile(samples, 0.99),
        }
    }
}

/// Everything one soak run produced.
#[derive(Debug, Clone, Default)]
pub struct SoakReport {
    /// The replay seed.
    pub seed: u64,
    /// Virtual duration covered.
    pub virtual_us: u64,
    /// Wall nanoseconds the whole run took (measurement only).
    pub wall_ns: u64,
    /// Recommendations served.
    pub queries: u64,
    /// Ingest batches acknowledged.
    pub appends: u64,
    /// Rows those batches carried.
    pub appended_rows: u64,
    /// Replace-with-fresh-lineage re-registrations performed.
    pub reregisters: u64,
    /// Clean `persist → drop → open` restarts survived.
    pub crashes_clean: u64,
    /// Hard crashes (torn WAL tail injected) survived.
    pub crashes_torn: u64,
    /// Spot checks performed / crash recoveries verified / sweeps run.
    pub checks: (u64, u64, u64),
    /// Cache hits across the whole run (summed across restarts).
    pub hits: u64,
    /// Cache misses.
    pub misses: u64,
    /// Incremental refreshes performed.
    pub refreshes: u64,
    /// Refresh fallbacks (invalidate + recompute).
    pub refresh_fallbacks: u64,
    /// Full table scans executed by the DBMS.
    pub table_scans: u64,
    /// Rows scanned.
    pub rows_scanned: u64,
    /// Telemetry windows the watchdog evaluated (summed across
    /// restarts; windows close on virtual time).
    pub telemetry_windows: u64,
    /// Watchdog breaches tripped (summed across restarts).
    pub telemetry_breaches: u64,
    /// Recommend latency distribution.
    pub recommend: LatencySummary,
    /// Append latency distribution.
    pub append: LatencySummary,
    /// Violations, in trip order.
    pub violations: Vec<Violation>,
    /// Digest of the workload trace.
    pub trace_digest: u64,
}

impl SoakReport {
    /// Cache hit rate over the whole run.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Queries served per wall second.
    pub fn throughput_qps(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.queries as f64 / (self.wall_ns as f64 / 1e9)
        }
    }

    /// `BENCH_soak.json` in the exact shape the vendored criterion
    /// emits and `bench_gate` consumes: a sorted array of entries with
    /// alphabetical keys and `median_ns` carrying the gated value.
    /// Latency entries gate wall time; `count_*` entries carry
    /// seed-deterministic counters (identical on every machine), so an
    /// over-threshold swing in scans/misses/fallbacks fails the gate
    /// like a latency regression would.
    pub fn to_bench_json(&self) -> String {
        let mut entries: Vec<(String, f64, f64, f64, f64, u64)> = vec![
            latency_entry("soak/recommend", &self.recommend),
            latency_entry("soak/append", &self.append),
            count_entry("soak/count_cache_misses", self.misses),
            count_entry("soak/count_refresh_fallbacks", self.refresh_fallbacks),
            count_entry("soak/count_table_scans", self.table_scans),
        ];
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let body: Vec<String> = entries
            .iter()
            .map(|(name, max, mean, median, min, samples)| {
                format!(
                    "  {{\"iters_per_sample\": 1, \"max_ns\": {max:.1}, \"mean_ns\": {mean:.1}, \
                     \"median_ns\": {median:.1}, \"min_ns\": {min:.1}, \"name\": {name:?}, \
                     \"samples\": {samples}}}"
                )
            })
            .collect();
        format!("[\n{}\n]\n", body.join(",\n"))
    }

    /// `soak-report.json`: the full invariant report (counters, latency
    /// summary, trace digest, and every violation with its replay
    /// hint). Hand-rendered JSON with sorted keys, like every artifact
    /// in this repo.
    pub fn to_report_json(&self) -> String {
        let violations: Vec<String> = self
            .violations
            .iter()
            .map(|v| {
                format!(
                    "    {{\"detail\": {:?}, \"invariant\": {:?}, \"replay\": {:?}, \
                     \"seed\": {}, \"vt_us\": {}}}",
                    v.detail,
                    v.kind.name(),
                    v.replay_hint(),
                    v.seed,
                    v.vt_us
                )
            })
            .collect();
        format!(
            "{{\n  \"appended_rows\": {},\n  \"appends\": {},\n  \"crash_checks\": {},\n  \
             \"crashes_clean\": {},\n  \"crashes_torn\": {},\n  \"hit_rate\": {:.4},\n  \
             \"queries\": {},\n  \"recommend_mean_ns\": {:.1},\n  \"recommend_p50_ns\": {},\n  \
             \"recommend_p99_ns\": {},\n  \"refresh_fallbacks\": {},\n  \"refreshes\": {},\n  \
             \"reregisters\": {},\n  \"rows_scanned\": {},\n  \"seed\": {},\n  \
             \"spot_checks\": {},\n  \"sweeps\": {},\n  \"table_scans\": {},\n  \
             \"telemetry_breaches\": {},\n  \"telemetry_windows\": {},\n  \
             \"throughput_qps\": {:.1},\n  \"trace_digest\": \"{:016x}\",\n  \
             \"violations\": [\n{}\n  ],\n  \"virtual_us\": {},\n  \"wall_ns\": {}\n}}\n",
            self.appended_rows,
            self.appends,
            self.checks.1,
            self.crashes_clean,
            self.crashes_torn,
            self.hit_rate(),
            self.queries,
            self.recommend.mean_ns,
            self.recommend.p50_ns,
            self.recommend.p99_ns,
            self.refresh_fallbacks,
            self.refreshes,
            self.reregisters,
            self.rows_scanned,
            self.seed,
            self.checks.0,
            self.checks.2,
            self.table_scans,
            self.telemetry_breaches,
            self.telemetry_windows,
            self.throughput_qps(),
            self.trace_digest,
            violations.join(",\n"),
            self.virtual_us,
            self.wall_ns,
        )
    }
}

fn latency_entry(name: &str, l: &LatencySummary) -> (String, f64, f64, f64, f64, u64) {
    (
        name.to_string(),
        l.max_ns as f64,
        l.mean_ns,
        l.p50_ns as f64,
        l.min_ns as f64,
        l.samples.max(1),
    )
}

/// A deterministic counter shoehorned into the bench shape: every ns
/// field carries the count, so `bench_gate` flags a >threshold growth.
fn count_entry(name: &str, count: u64) -> (String, f64, f64, f64, f64, u64) {
    let c = count as f64;
    (name.to_string(), c, c, c, c, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_digest_is_order_and_content_sensitive() {
        let mut a = Trace::default();
        a.push("x".into());
        a.push("y".into());
        let mut b = Trace::default();
        b.push("y".into());
        b.push("x".into());
        assert_ne!(a.digest(), b.digest());
        let mut c = Trace::default();
        c.push("x".into());
        c.push("y".into());
        assert_eq!(a.digest(), c.digest());
        assert_eq!(a, c);
    }

    #[test]
    fn latency_summary_matches_hand_computation() {
        let l = LatencySummary::from_samples(&[10, 30, 20, 40, 1000]);
        assert_eq!(l.samples, 5);
        assert_eq!(l.min_ns, 10);
        assert_eq!(l.max_ns, 1000);
        assert_eq!(l.p50_ns, 30);
        assert_eq!(l.p99_ns, 1000);
        assert!((l.mean_ns - 220.0).abs() < 1.0);
        assert_eq!(LatencySummary::from_samples(&[]), LatencySummary::default());
    }

    #[test]
    fn bench_json_parses_and_matches_the_gate_shape() {
        let mut r = SoakReport {
            misses: 18,
            table_scans: 25,
            ..SoakReport::default()
        };
        r.recommend = LatencySummary::from_samples(&[1_000_000, 2_000_000, 3_000_000]);
        let json = r.to_bench_json();
        let parsed = serde_json::from_str(&json).expect("valid JSON");
        let arr = parsed.as_array().expect("array");
        assert_eq!(arr.len(), 5);
        // Sorted by name, every entry has a median the gate can read.
        let names: Vec<&str> = arr
            .iter()
            .map(|e| e.get("name").and_then(|n| n.as_str()).expect("name"))
            .collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        for e in arr {
            assert!(e.get("median_ns").and_then(|v| v.as_f64()).is_some());
        }
        let misses = arr
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("soak/count_cache_misses"))
            .expect("count entry");
        assert_eq!(misses.get("median_ns").and_then(|v| v.as_f64()), Some(18.0));
    }

    #[test]
    fn report_json_parses_and_carries_violations() {
        use super::super::invariants::{InvariantChecker, RecDigest};
        use super::super::spec::InvariantBounds;
        let mut checker = InvariantChecker::new(9, InvariantBounds::recommended());
        let a: RecDigest = vec![("v".into(), 1)];
        let b: RecDigest = vec![("v".into(), 2)];
        checker.spot_check(123, "q", &a, &b);
        let r = SoakReport {
            seed: 9,
            violations: checker.violations().to_vec(),
            ..SoakReport::default()
        };
        let parsed = serde_json::from_str(&r.to_report_json()).expect("valid JSON");
        let v = parsed
            .get("violations")
            .and_then(|v| v.as_array())
            .expect("violations array");
        assert_eq!(v.len(), 1);
        assert_eq!(
            v[0].get("invariant").and_then(|s| s.as_str()),
            Some("spot-check-byte-identical")
        );
        assert!(v[0]
            .get("replay")
            .and_then(|s| s.as_str())
            .expect("replay hint")
            .contains("--seed 9"));
    }
}
