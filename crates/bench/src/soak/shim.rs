//! The latency-measurement shim — the **only** soak module allowed to
//! read the wall clock.
//!
//! `seedb-lint`'s `no-wallclock-in-plan` rule covers the rest of
//! `crates/bench/src/soak/`: workload decisions run on virtual time
//! exclusively, so a soak replays bit-identically from its seed. Wall
//! time is an observation (latency samples, total run duration) that
//! must never feed back into what the driver does next.

use std::time::Instant;

/// A started wall-clock stopwatch.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Start measuring.
    pub fn start() -> Self {
        Stopwatch(Instant::now())
    }

    /// Nanoseconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Run `f`, returning its result and the wall nanoseconds it took.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let sw = Stopwatch::start();
    let out = f();
    (out, sw.elapsed_ns())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_returns_result_and_a_duration() {
        let (value, ns) = timed(|| 40 + 2);
        assert_eq!(value, 42);
        // Monotonic clocks can legally report 0ns for a trivial closure;
        // just check the measurement is usable as a sample.
        assert!(ns < 60_000_000_000, "sane upper bound");
    }
}
