//! The workload specification: every knob of one soak run.
//!
//! A [`SoakSpec`] fully determines the workload — given the same spec
//! (seed included), the driver makes byte-identical decisions and emits
//! an identical trace. Anything wall-clock (latency bounds) only
//! *observes* the run; it never steers it.

/// Bounds the invariant checker enforces continuously during a soak.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvariantBounds {
    /// Minimum cumulative cache hit rate (hits / (hits + misses)) after
    /// the warmup window. Zipfian repeat traffic should comfortably
    /// clear this; a drop means the cache key or invalidation logic
    /// broke.
    pub hit_rate_floor: f64,
    /// Maximum p99 recommend latency per check window, in nanoseconds.
    /// Wall-clock, so keep it generous enough for shared CI runners —
    /// it exists to catch order-of-magnitude serving stalls, not 10%
    /// drifts (the bench gate owns those).
    pub p99_ns: u64,
    /// Virtual time before the hit-rate floor is enforced (the cold
    /// cache must be allowed to fill).
    pub warmup_us: u64,
}

impl InvariantBounds {
    /// Defaults shared by the presets.
    pub fn recommended() -> Self {
        InvariantBounds {
            hit_rate_floor: 0.30,
            p99_ns: 2_000_000_000,
            warmup_us: 2_000_000,
        }
    }
}

/// Complete description of one closed-loop soak workload.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakSpec {
    /// Master seed; every stream of decisions derives from it.
    pub seed: u64,
    /// Virtual duration of the run, in virtual microseconds.
    pub virtual_us: u64,
    /// Synthetic analyst population size.
    pub analysts: usize,
    /// Mean analyst think time between queries (virtual µs,
    /// exponentially distributed).
    pub think_us: u64,
    /// Number of registered tables (`t0..tN`), Zipf-popular by index.
    pub tables: usize,
    /// Rows per table at registration.
    pub rows_per_table: usize,
    /// Dimension columns per table.
    pub dims: usize,
    /// Distinct values per dimension.
    pub cardinality: usize,
    /// Measure columns per table.
    pub measures: usize,
    /// Zipf skew for table popularity and per-dimension filter-value
    /// popularity (1.0 = classic Zipf).
    pub zipf_skew: f64,
    /// Virtual µs between ingest batches (0 disables ingest).
    pub ingest_interval_us: u64,
    /// Rows per ingest batch.
    pub ingest_batch: usize,
    /// Additive drift of every measure's mean per virtual second of
    /// ingest — appended rows pull cached aggregates stale by
    /// construction, so refresh correctness is actually exercised.
    pub drift_per_vsec: f64,
    /// Virtual µs between table re-registrations (replace with fresh
    /// lineage; 0 disables).
    pub reregister_interval_us: u64,
    /// Virtual µs between injected crash/restarts over the durable
    /// store (0 disables). Flavors alternate: a clean `persist → drop →
    /// open` and a hard drop with a torn WAL tail injected.
    pub crash_interval_us: u64,
    /// Probability a served recommendation is spot-checked
    /// byte-identical against a cold recompute.
    pub spot_check_rate: f64,
    /// Virtual µs between continuous invariant sweeps (hit rate, p99).
    pub check_interval_us: u64,
    /// Service cache capacity (states). Sized above the distinct-plan
    /// working set so eviction noise never clouds determinism checks.
    pub cache_capacity: usize,
    /// fsync WAL appends before acknowledging them (the honest
    /// default; turning it off speeds local runs and is safe for
    /// in-process crash simulation).
    pub sync_writes: bool,
    /// Latency-SLO breach injection: when non-zero, every served query
    /// also plants this fixed latency sample (ns) into the
    /// `service.recommend_ns` histogram the watchdog's p99 rule reads.
    /// Set it above the telemetry p99 bound (2 s by default) to force a
    /// deterministic `latency-p99` breach — and, with a dump directory,
    /// byte-identical flight-recorder dumps per seed. 0 disables.
    pub slo_inject_ns: u64,
    /// Invariant bounds.
    pub bounds: InvariantBounds,
}

impl SoakSpec {
    /// The PR-blocking smoke soak: ~10 virtual seconds, a few hundred
    /// queries, at least one crash of each flavor and one
    /// re-registration. Deterministic for a fixed `seed` and fast
    /// enough (< ~20 s wall on one CPU) to gate every push.
    pub fn short(seed: u64) -> Self {
        SoakSpec {
            seed,
            virtual_us: 10_000_000,
            analysts: 50,
            think_us: 1_200_000,
            tables: 3,
            rows_per_table: 1_500,
            dims: 4,
            cardinality: 6,
            measures: 2,
            zipf_skew: 1.0,
            ingest_interval_us: 250_000,
            ingest_batch: 20,
            drift_per_vsec: 15.0,
            reregister_interval_us: 4_500_000,
            crash_interval_us: 4_000_000,
            spot_check_rate: 0.05,
            check_interval_us: 1_000_000,
            cache_capacity: 4_096,
            sync_writes: true,
            slo_inject_ns: 0,
            bounds: InvariantBounds::recommended(),
        }
    }

    /// The nightly soak: minutes of virtual (and wall) time, a
    /// thousand analysts, dozens of crashes and re-registrations.
    pub fn full(seed: u64) -> Self {
        SoakSpec {
            virtual_us: 120_000_000,
            analysts: 1_000,
            think_us: 2_500_000,
            tables: 4,
            rows_per_table: 2_500,
            reregister_interval_us: 11_000_000,
            crash_interval_us: 9_000_000,
            spot_check_rate: 0.01,
            ..SoakSpec::short(seed)
        }
    }

    /// A miniature spec for tests: a couple of virtual seconds, small
    /// tables, every event type still firing at least once. The
    /// hit-rate floor is relaxed — two crashes inside three virtual
    /// seconds never let the cache warm past the serving floor.
    pub fn mini(seed: u64) -> Self {
        SoakSpec {
            bounds: InvariantBounds {
                hit_rate_floor: 0.05,
                ..InvariantBounds::recommended()
            },
            virtual_us: 3_000_000,
            analysts: 8,
            think_us: 500_000,
            tables: 2,
            rows_per_table: 400,
            ingest_interval_us: 400_000,
            ingest_batch: 10,
            reregister_interval_us: 1_500_000,
            crash_interval_us: 1_400_000,
            spot_check_rate: 0.20,
            check_interval_us: 1_000_000,
            ..SoakSpec::short(seed)
        }
    }

    /// Virtual duration in (fractional) seconds.
    pub fn virtual_secs(&self) -> f64 {
        self.virtual_us as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        for spec in [SoakSpec::short(1), SoakSpec::full(1), SoakSpec::mini(1)] {
            assert!(spec.analysts > 0);
            assert!(spec.tables > 0);
            assert!(spec.virtual_us > 0);
            assert!(spec.dims >= 2, "need a filter dim plus grouping dims");
            assert!(spec.bounds.hit_rate_floor > 0.0);
            assert!(spec.bounds.warmup_us < spec.virtual_us);
        }
        assert!(SoakSpec::full(1).virtual_us > SoakSpec::short(1).virtual_us);
    }

    #[test]
    fn seed_is_the_only_axis_between_equal_presets() {
        assert_eq!(SoakSpec::short(7), SoakSpec::short(7));
        assert_ne!(SoakSpec::short(7), SoakSpec::short(8));
    }
}
