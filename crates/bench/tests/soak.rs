//! Soak-harness integration tests: the determinism contract (same seed
//! ⇒ byte-identical workload trace) and a real mini-soak that must
//! complete with zero invariant violations while exercising every
//! event type at least once.

use std::path::PathBuf;

use seedb_bench::soak::{self, SoakSpec};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("seedb-soak-it-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run(spec: &SoakSpec, name: &str) -> soak::SoakOutcome {
    let dir = tmp(name);
    let outcome = soak::run(spec, &dir);
    let _ = std::fs::remove_dir_all(&dir);
    outcome
}

/// The determinism property the whole harness rests on: two runs from
/// the same spec produce byte-identical traces (and therefore the same
/// digest and the same deterministic counters), while a different seed
/// produces a different workload.
#[test]
fn same_seed_produces_a_byte_identical_trace() {
    let a = run(&SoakSpec::mini(1234), "det-a");
    let b = run(&SoakSpec::mini(1234), "det-b");
    assert_eq!(
        a.trace.lines(),
        b.trace.lines(),
        "same seed must replay the exact same workload"
    );
    assert_eq!(a.trace.digest(), b.trace.digest());
    assert_eq!(a.report.trace_digest, b.report.trace_digest);
    // Deterministic counters too, not just the trace.
    assert_eq!(a.report.queries, b.report.queries);
    assert_eq!(a.report.appends, b.report.appends);
    assert_eq!(a.report.table_scans, b.report.table_scans);
    assert_eq!(a.report.rows_scanned, b.report.rows_scanned);
    assert_eq!(a.report.hits, b.report.hits);
    assert_eq!(a.report.misses, b.report.misses);

    let c = run(&SoakSpec::mini(1235), "det-c");
    assert_ne!(
        a.trace.lines(),
        c.trace.lines(),
        "a different seed must produce a different workload"
    );
}

/// Every observability instrument ticks on the driver's virtual clock,
/// so the telemetry artifact — counters, gauges, AND latency
/// histograms — is byte-identical for a given seed.
#[test]
fn same_seed_produces_byte_identical_obs_report() {
    let a = run(&SoakSpec::mini(77), "obs-a");
    let b = run(&SoakSpec::mini(77), "obs-b");
    assert!(!a.obs_json.is_empty(), "obs snapshot must be populated");
    assert_eq!(
        a.obs_json, b.obs_json,
        "same seed must render byte-identical telemetry"
    );
    // The report accumulates one snapshot per service incarnation; a
    // mini soak always crashes at least twice, so the crashed epochs'
    // telemetry must survive in the array, not just the final one's.
    assert!(a.obs_json.starts_with("{\n  \"incarnations\": ["));
    let epochs = a.obs_json.matches("\"counters\"").count();
    let crashes = (a.report.crashes_clean + a.report.crashes_torn) as usize;
    assert_eq!(
        epochs,
        crashes + 1,
        "one snapshot per recovery epoch (crashes + final)"
    );
    assert!(serde_json::from_str(&a.obs_json).is_ok());
}

/// SLO-breach injection: planting over-bound latency samples trips the
/// `latency-p99` watchdog rule deterministically, and the resulting
/// flight-recorder dumps are byte-identical across two same-seed runs —
/// the debuggability acceptance bar for the telemetry pipeline.
#[test]
fn injected_slo_breach_dumps_are_byte_identical_across_same_seed_runs() {
    let mut spec = SoakSpec::mini(91);
    spec.slo_inject_ns = 5_000_000_000; // 5 s >> the 2 s p99 bound
    let run_with_dumps = |store: &str, dumps: &str| -> Vec<(String, Vec<u8>)> {
        let store_dir = tmp(store);
        let dump_dir = tmp(dumps);
        std::fs::create_dir_all(&dump_dir).unwrap();
        let outcome = soak::run_with_dumps(&spec, &store_dir, Some(&dump_dir));
        assert!(
            outcome.report.telemetry_breaches > 0,
            "injected latency must trip the watchdog"
        );
        let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(&dump_dir)
            .unwrap()
            .map(|e| {
                let e = e.unwrap();
                (
                    e.file_name().to_string_lossy().into_owned(),
                    std::fs::read(e.path()).unwrap(),
                )
            })
            .collect();
        files.sort();
        let _ = std::fs::remove_dir_all(&store_dir);
        let _ = std::fs::remove_dir_all(&dump_dir);
        files
    };
    let a = run_with_dumps("slo-store-a", "slo-dumps-a");
    let b = run_with_dumps("slo-store-b", "slo-dumps-b");
    assert!(!a.is_empty(), "breaches must write flight-recorder dumps");
    assert!(
        a.iter().any(|(name, _)| name.contains("latency-p99")),
        "the latency rule must be among the dumped breaches: {:?}",
        a.iter().map(|(n, _)| n).collect::<Vec<_>>()
    );
    assert_eq!(a, b, "same-seed dumps must be byte-identical");
}

/// The registry's `service.cache.*` counters and the legacy
/// `CacheStats` surface are the same cells; the emitted JSON must agree
/// with the report's final-incarnation-banked counters exactly.
#[test]
fn obs_report_counters_are_populated_and_coherent() {
    let outcome = run(&SoakSpec::mini(42), "obs-coherent");
    let json = &outcome.obs_json;
    for metric in [
        "service.cache.hits",
        "service.cache.misses",
        "service.recommend_ns",
        "exec.queries",
        "exec.rows_scanned",
        "exec.partial_partitions",
        "store.wal.appends",
        "store.checkpoints",
        "store.recovery.replayed_records",
    ] {
        assert!(
            json.contains(&format!("\"{metric}\"")),
            "missing {metric} in {json}"
        );
    }
    // Counter extraction from the deterministic sorted-JSON rendering.
    let counter = |name: &str| -> u64 {
        let key = format!("\"{name}\": ");
        let at = json
            .find(&key)
            .unwrap_or_else(|| panic!("{name} not in {json}"));
        json[at + key.len()..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .expect("counter value")
    };
    // The report banks counters across every service incarnation; the
    // obs snapshot is the final incarnation only — so report totals are
    // an upper bound reached exactly when no crash happened after the
    // last bank. What must hold exactly: the snapshot's cells are the
    // same ones `CacheStats` read at the final bank, so the final
    // incarnation's contribution equals the last bank delta. Mini soaks
    // always crash at least once, so check the robust property: the
    // snapshot is populated and never exceeds the banked totals.
    assert!(counter("exec.queries") > 0);
    assert!(counter("store.wal.appends") > 0);
    assert!(counter("service.cache.hits") <= outcome.report.hits);
    assert!(counter("service.cache.misses") <= outcome.report.misses);
    assert!(counter("exec.rows_scanned") <= outcome.report.rows_scanned);
}

/// A mini soak exercises every event type and finishes with zero
/// violations — the same check CI runs at `short` scale on every push.
#[test]
fn mini_soak_is_violation_free_and_covers_every_event_type() {
    let outcome = run(&SoakSpec::mini(42), "mini");
    let r = &outcome.report;
    assert!(
        r.violations.is_empty(),
        "mini soak tripped invariants: {:?}",
        r.violations
    );
    assert!(r.queries > 0, "analysts must have queried");
    assert!(r.appends > 0, "ingest must have run");
    assert!(r.reregisters > 0, "re-registration must have run");
    assert!(r.crashes_clean > 0, "a clean restart must have run");
    assert!(r.crashes_torn > 0, "a torn-WAL crash must have run");
    assert!(r.checks.0 > 0, "spot checks must have run");
    assert!(r.checks.1 > 0, "crash recoveries must have been verified");
    assert!(r.checks.2 > 0, "invariant sweeps must have run");
    assert!(r.hits + r.misses > 0, "the cache must have been probed");
    // The artifacts render and parse.
    assert!(serde_json::from_str(&r.to_bench_json()).is_ok());
    assert!(serde_json::from_str(&r.to_report_json()).is_ok());
}
