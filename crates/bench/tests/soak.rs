//! Soak-harness integration tests: the determinism contract (same seed
//! ⇒ byte-identical workload trace) and a real mini-soak that must
//! complete with zero invariant violations while exercising every
//! event type at least once.

use std::path::PathBuf;

use seedb_bench::soak::{self, SoakSpec};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("seedb-soak-it-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run(spec: &SoakSpec, name: &str) -> soak::SoakOutcome {
    let dir = tmp(name);
    let outcome = soak::run(spec, &dir);
    let _ = std::fs::remove_dir_all(&dir);
    outcome
}

/// The determinism property the whole harness rests on: two runs from
/// the same spec produce byte-identical traces (and therefore the same
/// digest and the same deterministic counters), while a different seed
/// produces a different workload.
#[test]
fn same_seed_produces_a_byte_identical_trace() {
    let a = run(&SoakSpec::mini(1234), "det-a");
    let b = run(&SoakSpec::mini(1234), "det-b");
    assert_eq!(
        a.trace.lines(),
        b.trace.lines(),
        "same seed must replay the exact same workload"
    );
    assert_eq!(a.trace.digest(), b.trace.digest());
    assert_eq!(a.report.trace_digest, b.report.trace_digest);
    // Deterministic counters too, not just the trace.
    assert_eq!(a.report.queries, b.report.queries);
    assert_eq!(a.report.appends, b.report.appends);
    assert_eq!(a.report.table_scans, b.report.table_scans);
    assert_eq!(a.report.rows_scanned, b.report.rows_scanned);
    assert_eq!(a.report.hits, b.report.hits);
    assert_eq!(a.report.misses, b.report.misses);

    let c = run(&SoakSpec::mini(1235), "det-c");
    assert_ne!(
        a.trace.lines(),
        c.trace.lines(),
        "a different seed must produce a different workload"
    );
}

/// A mini soak exercises every event type and finishes with zero
/// violations — the same check CI runs at `short` scale on every push.
#[test]
fn mini_soak_is_violation_free_and_covers_every_event_type() {
    let outcome = run(&SoakSpec::mini(42), "mini");
    let r = &outcome.report;
    assert!(
        r.violations.is_empty(),
        "mini soak tripped invariants: {:?}",
        r.violations
    );
    assert!(r.queries > 0, "analysts must have queried");
    assert!(r.appends > 0, "ingest must have run");
    assert!(r.reregisters > 0, "re-registration must have run");
    assert!(r.crashes_clean > 0, "a clean restart must have run");
    assert!(r.crashes_torn > 0, "a torn-WAL crash must have run");
    assert!(r.checks.0 > 0, "spot checks must have run");
    assert!(r.checks.1 > 0, "crash recoveries must have been verified");
    assert!(r.checks.2 > 0, "invariant sweeps must have run");
    assert!(r.hits + r.misses > 0, "the cache must have been probed");
    // The artifacts render and parse.
    assert!(serde_json::from_str(&r.to_bench_json()).is_ok());
    assert!(serde_json::from_str(&r.to_report_json()).is_ok());
}
