//! Top-level SeeDB configuration.

use std::path::PathBuf;
use std::time::Duration;

use crate::distance::Metric;
use crate::live::RefreshConfig;
use crate::optimizer::OptimizerConfig;
use crate::pruning::PruningConfig;
use crate::view::FunctionSet;

/// How the planned view queries are executed — the parallelism ×
/// early-termination axis of §3.3, selectable per engine (and from the
/// demo CLI via `:strategy` / `:workers`).
///
/// The two phased strategies trade the batch executor for
/// [`crate::phased::run_phased`]: the table is processed in `phases`
/// contiguous slices and views whose utility confidence interval falls
/// below the running top-k are discarded early (survivors still end
/// with exact full-table utilities). `PhasedParallel` additionally
/// splits every phase slice across `workers` row partitions whose
/// partial aggregate states merge deterministically — outcomes are
/// byte-identical for every worker count. Phased strategies execute
/// against the table directly, so [`crate::engine::Recommendation::cost`]
/// reflects only catalog-mediated work (zero for a pure phased run).
///
/// Phased strategies are *exact by construction* (survivors end with
/// full-table utilities); they do not compose with scan sampling, so a
/// configured `optimizer.sample` is ignored while a phased strategy is
/// selected (the demo CLI prints a notice when both are set).
#[derive(Debug, Clone, PartialEq)]
pub enum ExecutionStrategy {
    /// One query at a time (the paper's baseline).
    Sequential,
    /// Independent plans fan out across a `workers`-thread pool
    /// ([`memdb::run_batch`]).
    Parallel {
        /// Worker threads pulling plans from the shared queue.
        workers: usize,
    },
    /// Phase-sliced execution with confidence-interval pruning,
    /// single-threaded.
    Phased {
        /// Number of table slices.
        phases: usize,
        /// Confidence parameter δ of the pruning bound.
        delta: f64,
        /// Never prune before this many phases.
        min_phases: usize,
    },
    /// Phased execution whose phase slices additionally fan out across
    /// row-partition workers with mergeable partial aggregates.
    PhasedParallel {
        /// Number of table slices.
        phases: usize,
        /// Confidence parameter δ of the pruning bound.
        delta: f64,
        /// Never prune before this many phases.
        min_phases: usize,
        /// Row-partition workers per phase slice.
        workers: usize,
    },
}

impl ExecutionStrategy {
    /// Phased defaults (10 slices, δ = 0.05, 2 warm-up phases).
    pub fn phased() -> Self {
        ExecutionStrategy::Phased {
            phases: 10,
            delta: 0.05,
            min_phases: 2,
        }
    }

    /// Phased-parallel defaults with `workers` row partitions.
    pub fn phased_parallel(workers: usize) -> Self {
        ExecutionStrategy::PhasedParallel {
            phases: 10,
            delta: 0.05,
            min_phases: 2,
            workers,
        }
    }

    /// The strategy with its worker count set to `n` (promoting
    /// `Sequential` to `Parallel` and `Phased` to `PhasedParallel`;
    /// `n <= 1` demotes back).
    pub fn with_workers(self, n: usize) -> Self {
        match self {
            ExecutionStrategy::Sequential | ExecutionStrategy::Parallel { .. } => {
                if n <= 1 {
                    ExecutionStrategy::Sequential
                } else {
                    ExecutionStrategy::Parallel { workers: n }
                }
            }
            ExecutionStrategy::Phased {
                phases,
                delta,
                min_phases,
            }
            | ExecutionStrategy::PhasedParallel {
                phases,
                delta,
                min_phases,
                ..
            } => {
                if n <= 1 {
                    ExecutionStrategy::Phased {
                        phases,
                        delta,
                        min_phases,
                    }
                } else {
                    ExecutionStrategy::PhasedParallel {
                        phases,
                        delta,
                        min_phases,
                        workers: n,
                    }
                }
            }
        }
    }

    /// Worker count this strategy uses (1 for the sequential forms).
    pub fn workers(&self) -> usize {
        match self {
            ExecutionStrategy::Sequential | ExecutionStrategy::Phased { .. } => 1,
            ExecutionStrategy::Parallel { workers }
            | ExecutionStrategy::PhasedParallel { workers, .. } => (*workers).max(1),
        }
    }

    /// Parse a CLI/demo name: `sequential`, `parallel`, `phased`,
    /// `phased-parallel`.
    pub fn parse(name: &str, default_workers: usize) -> Option<Self> {
        match name {
            "sequential" | "seq" => Some(ExecutionStrategy::Sequential),
            "parallel" | "par" => Some(ExecutionStrategy::Parallel {
                workers: default_workers,
            }),
            "phased" => Some(ExecutionStrategy::phased()),
            "phased-parallel" | "phased_parallel" => {
                Some(ExecutionStrategy::phased_parallel(default_workers))
            }
            _ => None,
        }
    }
}

impl std::fmt::Display for ExecutionStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecutionStrategy::Sequential => write!(f, "sequential"),
            ExecutionStrategy::Parallel { workers } => write!(f, "parallel ({workers} workers)"),
            ExecutionStrategy::Phased { phases, .. } => write!(f, "phased ({phases} phases)"),
            ExecutionStrategy::PhasedParallel {
                phases, workers, ..
            } => write!(f, "phased-parallel ({phases} phases × {workers} workers)"),
        }
    }
}

/// Hardware parallelism (the default worker count for the parallel
/// strategies).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Everything tunable about a SeeDB instance — the "knobs" of demo
/// Scenario 2 ("attendees will also be able to select the optimizations
/// that SEEDB applies and observe the effect on response times and
/// accuracy").
#[derive(Debug, Clone)]
pub struct SeeDbConfig {
    /// Distance function `S` for utility.
    pub metric: Metric,
    /// Number of views to recommend.
    pub k: usize,
    /// Aggregate functions to enumerate.
    pub functions: FunctionSet,
    /// View-space pruning rules.
    pub pruning: PruningConfig,
    /// Query-combination optimizations.
    pub optimizer: OptimizerConfig,
    /// Whether the metadata collector computes the dimension-correlation
    /// matrix (`O(|A|²·n)`; required for correlation pruning).
    pub compute_correlations: bool,
    /// Additionally return this many *lowest*-utility views — the demo
    /// shows "bad views ... that were not selected by SeeDB" for
    /// contrast.
    pub low_utility_views: usize,
    /// Exclude dimensions that appear in the analyst's own predicate
    /// from the view space. Their target views trivially concentrate on
    /// the selected value (e.g. `product` under
    /// `WHERE product = 'Laserwave'`) and would crowd out genuine
    /// insights. Default: on.
    pub exclude_filter_attributes: bool,
    /// How planned queries are executed (sequential, batch-parallel, or
    /// phased with confidence-interval pruning).
    pub execution: ExecutionStrategy,
}

impl SeeDbConfig {
    /// Paper defaults: EMD, k = 10, standard functions, all pruning and
    /// sharing optimizations on.
    pub fn recommended() -> Self {
        SeeDbConfig {
            metric: Metric::EarthMovers,
            k: 10,
            functions: FunctionSet::standard(),
            pruning: PruningConfig::aggressive(),
            optimizer: OptimizerConfig::all_optimizations(),
            compute_correlations: true,
            low_utility_views: 0,
            exclude_filter_attributes: true,
            execution: ExecutionStrategy::Parallel {
                workers: default_workers(),
            },
        }
    }

    /// The paper's Basic Framework: no pruning, no sharing, sequential.
    pub fn basic() -> Self {
        SeeDbConfig {
            metric: Metric::EarthMovers,
            k: 10,
            functions: FunctionSet::standard(),
            pruning: PruningConfig::disabled(),
            optimizer: OptimizerConfig::basic(),
            compute_correlations: false,
            low_utility_views: 0,
            exclude_filter_attributes: true,
            execution: ExecutionStrategy::Sequential,
        }
    }

    /// Builder: set the distance metric.
    pub fn with_metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }

    /// Builder: set `k`.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Builder: set the function set.
    pub fn with_functions(mut self, functions: FunctionSet) -> Self {
        self.functions = functions;
        self
    }

    /// Builder: set the execution strategy.
    pub fn with_execution(mut self, execution: ExecutionStrategy) -> Self {
        self.execution = execution;
        self
    }
}

impl Default for SeeDbConfig {
    fn default() -> Self {
        SeeDbConfig::recommended()
    }
}

/// Telemetry-pipeline knobs of the serving layer: how often the
/// metrics registry is sampled into time-series windows, the watchdog
/// rule bounds evaluated per window, and where flight-recorder dumps
/// land when a rule trips. All timing flows through the service's
/// injected [`seedb_obs::Clock`], so under the soak harness's virtual
/// clock the whole pipeline — windows, breaches, dump bytes — is
/// deterministic per seed.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryConfig {
    /// Master switch: `false` skips sampling and watchdog evaluation on
    /// the serve path entirely (one branch per request).
    pub enabled: bool,
    /// Minimum injected-clock nanoseconds between sampled windows.
    pub interval_ns: u64,
    /// Windows retained in the sampler's ring.
    pub window_capacity: usize,
    /// Watchdog: breach when the windowed p99 of
    /// `service.recommend_ns` exceeds this bound.
    pub p99_bound_ns: u64,
    /// Watchdog: breach when the windowed cache hit rate falls below
    /// this floor.
    pub hit_rate_floor: f64,
    /// Minimum cache probes in a window before the hit-rate rule
    /// applies (a near-idle window proves nothing).
    pub hit_rate_min_events: u64,
    /// Watchdog: breach after this many consecutive windows of strictly
    /// growing `store.wal.bytes_pending` (backlog never drains).
    pub wal_growth_windows: usize,
    /// Watchdog: breach when `service.cache.refresh_fallbacks` moves by
    /// more than this inside one window.
    pub refresh_fallback_max: u64,
    /// Directory flight-recorder dumps are written to on a breach.
    /// `None` disables dumps; breaches still surface via
    /// [`crate::Service::health`].
    pub dump_dir: Option<PathBuf>,
}

impl TelemetryConfig {
    /// Serving defaults: sampling on at 1 s windows, 64 retained,
    /// p99 bound 2 s, hit-rate floor 10% over ≥ 20 probes, WAL growth
    /// over 6 windows, 32 refresh fallbacks per window, no dump
    /// directory.
    pub fn recommended() -> Self {
        TelemetryConfig {
            enabled: true,
            interval_ns: 1_000_000_000,
            window_capacity: 64,
            p99_bound_ns: 2_000_000_000,
            hit_rate_floor: 0.10,
            hit_rate_min_events: 20,
            wal_growth_windows: 6,
            refresh_fallback_max: 32,
            dump_dir: None,
        }
    }

    /// Telemetry fully off.
    pub fn disabled() -> Self {
        TelemetryConfig {
            enabled: false,
            ..TelemetryConfig::recommended()
        }
    }

    /// Builder: set the dump directory.
    pub fn with_dump_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.dump_dir = Some(dir.into());
        self
    }
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig::recommended()
    }
}

/// Configuration of the serving layer ([`crate::service::Service`]): a
/// [`SeeDbConfig`] for the recommendation pipeline plus the knobs of the
/// shared partial-aggregate cache and the cross-request scan batcher.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Recommendation pipeline configuration shared by every session.
    pub seedb: SeeDbConfig,
    /// Maximum cached partial-aggregate states (LRU eviction beyond
    /// this; 0 disables caching entirely).
    pub cache_capacity: usize,
    /// How long the first cache-missing request on a table holds the
    /// batch open so concurrent misses can join its shared scan.
    /// `Duration::ZERO` disables cross-request batching (each miss
    /// scans for itself, still deduplicated within one request).
    pub batch_window: Duration,
    /// Working-set cap for one batched shared scan: plans whose
    /// combined grouping-set count would exceed this are bin-packed
    /// into several scans (reusing [`crate::packing::pack`]).
    pub max_batch_sets: usize,
    /// Live-ingest policy: when cached partial-aggregate states are
    /// refreshed incrementally after [`crate::Service::append_rows`]
    /// (lazy on probe, eager on append, or off), and how large a delta
    /// may grow before falling back to a full recompute.
    pub refresh: RefreshConfig,
    /// Telemetry pipeline: registry sampling, watchdog rules, and
    /// flight-recorder dumps.
    pub telemetry: TelemetryConfig,
}

impl ServiceConfig {
    /// Serving defaults: recommended pipeline, 512 cached states, a
    /// 2 ms batch window, 64 grouping sets per shared scan, lazy
    /// incremental refresh.
    pub fn recommended() -> Self {
        ServiceConfig {
            seedb: SeeDbConfig::recommended(),
            cache_capacity: 512,
            batch_window: Duration::from_millis(2),
            max_batch_sets: 64,
            refresh: RefreshConfig::recommended(),
            telemetry: TelemetryConfig::recommended(),
        }
    }

    /// A deterministic one-line summary of the output- and
    /// performance-determining knobs, stamped into every flight-recorder
    /// dump so a dump is attributable to the exact configuration that
    /// produced it.
    pub fn fingerprint(&self) -> String {
        format!(
            "k={} metric={:?} functions={} exec={} cache={} batch_window_us={} \
             max_batch_sets={} refresh={:?} telemetry_interval_ns={}",
            self.seedb.k,
            self.seedb.metric,
            self.seedb.functions.funcs().len(),
            self.seedb.execution,
            self.cache_capacity,
            self.batch_window.as_micros(),
            self.max_batch_sets,
            self.refresh.mode,
            self.telemetry.interval_ns,
        )
    }

    /// Builder: set the pipeline configuration.
    pub fn with_seedb(mut self, seedb: SeeDbConfig) -> Self {
        self.seedb = seedb;
        self
    }

    /// Builder: set the cache capacity (entries; 0 disables caching).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Builder: set the batch window (`Duration::ZERO` disables
    /// cross-request batching).
    pub fn with_batch_window(mut self, window: Duration) -> Self {
        self.batch_window = window;
        self
    }

    /// Builder: set the live-ingest refresh policy.
    pub fn with_refresh(mut self, refresh: RefreshConfig) -> Self {
        self.refresh = refresh;
        self
    }

    /// Builder: set the telemetry pipeline configuration.
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = telemetry;
        self
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig::recommended()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_where_expected() {
        let rec = SeeDbConfig::recommended();
        let basic = SeeDbConfig::basic();
        assert!(rec.pruning.variance && !basic.pruning.variance);
        assert!(rec.optimizer.combine_target_comparison);
        assert!(!basic.optimizer.combine_target_comparison);
        assert_eq!(basic.optimizer.parallelism, 1);
    }

    #[test]
    fn strategy_parsing_and_worker_promotion() {
        assert_eq!(
            ExecutionStrategy::parse("sequential", 8),
            Some(ExecutionStrategy::Sequential)
        );
        assert_eq!(
            ExecutionStrategy::parse("parallel", 8),
            Some(ExecutionStrategy::Parallel { workers: 8 })
        );
        assert!(matches!(
            ExecutionStrategy::parse("phased", 8),
            Some(ExecutionStrategy::Phased { phases: 10, .. })
        ));
        assert!(matches!(
            ExecutionStrategy::parse("phased-parallel", 8),
            Some(ExecutionStrategy::PhasedParallel { workers: 8, .. })
        ));
        assert_eq!(ExecutionStrategy::parse("turbo", 8), None);

        // Worker promotion/demotion keeps the phased parameters.
        let p = ExecutionStrategy::phased().with_workers(6);
        assert!(matches!(
            p,
            ExecutionStrategy::PhasedParallel {
                phases: 10,
                workers: 6,
                ..
            }
        ));
        assert!(matches!(
            p.with_workers(1),
            ExecutionStrategy::Phased { phases: 10, .. }
        ));
        assert_eq!(
            ExecutionStrategy::Sequential.with_workers(4),
            ExecutionStrategy::Parallel { workers: 4 }
        );
        assert_eq!(
            ExecutionStrategy::Parallel { workers: 4 }.with_workers(1),
            ExecutionStrategy::Sequential
        );
        assert_eq!(ExecutionStrategy::Sequential.workers(), 1);
        assert_eq!(ExecutionStrategy::phased_parallel(3).workers(), 3);
    }

    #[test]
    fn strategies_render() {
        assert_eq!(ExecutionStrategy::Sequential.to_string(), "sequential");
        assert!(ExecutionStrategy::phased_parallel(4)
            .to_string()
            .contains("4 workers"));
    }

    #[test]
    fn fingerprint_is_deterministic_and_config_sensitive() {
        let a = ServiceConfig::recommended();
        let b = ServiceConfig::recommended();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = ServiceConfig::recommended().with_cache_capacity(7);
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert!(a.fingerprint().contains("cache=512"));
    }

    #[test]
    fn telemetry_presets() {
        let t = TelemetryConfig::recommended();
        assert!(t.enabled);
        assert!(t.dump_dir.is_none());
        assert!(!TelemetryConfig::disabled().enabled);
        let d = TelemetryConfig::recommended().with_dump_dir("/tmp/dumps");
        assert_eq!(
            d.dump_dir.as_deref(),
            Some(std::path::Path::new("/tmp/dumps"))
        );
    }

    #[test]
    fn builders() {
        let c = SeeDbConfig::recommended()
            .with_metric(Metric::KlDivergence)
            .with_k(3)
            .with_functions(FunctionSet::sum_only());
        assert_eq!(c.metric, Metric::KlDivergence);
        assert_eq!(c.k, 3);
        assert_eq!(c.functions, FunctionSet::sum_only());
    }
}
