//! Top-level SeeDB configuration.

use crate::distance::Metric;
use crate::optimizer::OptimizerConfig;
use crate::pruning::PruningConfig;
use crate::view::FunctionSet;

/// Everything tunable about a SeeDB instance — the "knobs" of demo
/// Scenario 2 ("attendees will also be able to select the optimizations
/// that SEEDB applies and observe the effect on response times and
/// accuracy").
#[derive(Debug, Clone)]
pub struct SeeDbConfig {
    /// Distance function `S` for utility.
    pub metric: Metric,
    /// Number of views to recommend.
    pub k: usize,
    /// Aggregate functions to enumerate.
    pub functions: FunctionSet,
    /// View-space pruning rules.
    pub pruning: PruningConfig,
    /// Query-combination optimizations.
    pub optimizer: OptimizerConfig,
    /// Whether the metadata collector computes the dimension-correlation
    /// matrix (`O(|A|²·n)`; required for correlation pruning).
    pub compute_correlations: bool,
    /// Additionally return this many *lowest*-utility views — the demo
    /// shows "bad views ... that were not selected by SeeDB" for
    /// contrast.
    pub low_utility_views: usize,
    /// Exclude dimensions that appear in the analyst's own predicate
    /// from the view space. Their target views trivially concentrate on
    /// the selected value (e.g. `product` under
    /// `WHERE product = 'Laserwave'`) and would crowd out genuine
    /// insights. Default: on.
    pub exclude_filter_attributes: bool,
}

impl SeeDbConfig {
    /// Paper defaults: EMD, k = 10, standard functions, all pruning and
    /// sharing optimizations on.
    pub fn recommended() -> Self {
        SeeDbConfig {
            metric: Metric::EarthMovers,
            k: 10,
            functions: FunctionSet::standard(),
            pruning: PruningConfig::aggressive(),
            optimizer: OptimizerConfig::all_optimizations(),
            compute_correlations: true,
            low_utility_views: 0,
            exclude_filter_attributes: true,
        }
    }

    /// The paper's Basic Framework: no pruning, no sharing, sequential.
    pub fn basic() -> Self {
        SeeDbConfig {
            metric: Metric::EarthMovers,
            k: 10,
            functions: FunctionSet::standard(),
            pruning: PruningConfig::disabled(),
            optimizer: OptimizerConfig::basic(),
            compute_correlations: false,
            low_utility_views: 0,
            exclude_filter_attributes: true,
        }
    }

    /// Builder: set the distance metric.
    pub fn with_metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }

    /// Builder: set `k`.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Builder: set the function set.
    pub fn with_functions(mut self, functions: FunctionSet) -> Self {
        self.functions = functions;
        self
    }
}

impl Default for SeeDbConfig {
    fn default() -> Self {
        SeeDbConfig::recommended()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_where_expected() {
        let rec = SeeDbConfig::recommended();
        let basic = SeeDbConfig::basic();
        assert!(rec.pruning.variance && !basic.pruning.variance);
        assert!(rec.optimizer.combine_target_comparison);
        assert!(!basic.optimizer.combine_target_comparison);
        assert_eq!(basic.optimizer.parallelism, 1);
    }

    #[test]
    fn builders() {
        let c = SeeDbConfig::recommended()
            .with_metric(Metric::KlDivergence)
            .with_k(3)
            .with_functions(FunctionSet::sum_only());
        assert_eq!(c.metric, Metric::KlDivergence);
        assert_eq!(c.k, 3);
        assert_eq!(c.functions, FunctionSet::sum_only());
    }
}
