//! Distance metrics between probability distributions.
//!
//! The utility of a view is `U(V_i) = S(P[V_i(D_Q)], P[V_i(D)])` for a
//! distance function `S` (paper §2). The paper names Earth Mover's
//! Distance, Euclidean distance, Kullback-Leibler divergence, and
//! Jenson-Shannon distance, and stresses that SeeDB "is not tied to any
//! particular metric(s)" — so the metric is a plug-in enum here, plus two
//! extras (L1 and chi-squared) used by the metric-comparison experiment.

use crate::distribution::AlignedPair;

/// Small constant used to smooth zero probabilities where a metric's
/// formula would otherwise divide by zero or take `log 0`.
pub const EPSILON: f64 = 1e-10;

/// A distance function `S` over aligned probability distributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// 1-D Earth Mover's Distance over the canonical group order
    /// (sum of absolute prefix-sum differences).
    EarthMovers,
    /// Euclidean (L2) distance.
    Euclidean,
    /// Manhattan (L1) distance, a.k.a. total variation ×2.
    L1,
    /// Kullback-Leibler divergence `KL(p ‖ q)` with epsilon smoothing.
    /// Asymmetric: `p` is the target view, `q` the comparison view.
    KlDivergence,
    /// Jensen-Shannon *distance* (square root of JS divergence, base e) —
    /// symmetric, bounded by `sqrt(ln 2)`.
    JensenShannon,
    /// Pearson chi-squared statistic of `p` against `q` as expectation.
    ChiSquared,
    /// Hellinger distance: `sqrt(1 - Σ sqrt(p·q))`-style, bounded by 1.
    Hellinger,
    /// Total variation distance: `max_A |P(A) − Q(A)| = L1 / 2`,
    /// bounded by 1.
    TotalVariation,
}

impl Metric {
    /// All metrics, in a stable order (used by experiment sweeps).
    pub fn all() -> [Metric; 8] {
        [
            Metric::EarthMovers,
            Metric::Euclidean,
            Metric::L1,
            Metric::KlDivergence,
            Metric::JensenShannon,
            Metric::ChiSquared,
            Metric::Hellinger,
            Metric::TotalVariation,
        ]
    }

    /// Short name for tables and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            Metric::EarthMovers => "emd",
            Metric::Euclidean => "euclidean",
            Metric::L1 => "l1",
            Metric::KlDivergence => "kl",
            Metric::JensenShannon => "js",
            Metric::ChiSquared => "chi2",
            Metric::Hellinger => "hellinger",
            Metric::TotalVariation => "tv",
        }
    }

    /// Parse a metric name as produced by [`Metric::name`].
    pub fn parse(s: &str) -> Option<Metric> {
        Metric::all().into_iter().find(|m| m.name() == s)
    }

    /// Whether `S(p, q) == S(q, p)` for this metric.
    pub fn is_symmetric(self) -> bool {
        !matches!(self, Metric::KlDivergence | Metric::ChiSquared)
    }

    /// Compute the distance over an aligned pair.
    pub fn distance(self, pair: &AlignedPair) -> f64 {
        distance(self, &pair.p, &pair.q)
    }
}

impl std::fmt::Display for Metric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Compute `S(p, q)` for aligned probability vectors.
///
/// Inputs need not be perfectly normalized (all-zero vectors from empty
/// views are accepted); outputs are always finite and non-negative.
pub fn distance(metric: Metric, p: &[f64], q: &[f64]) -> f64 {
    debug_assert_eq!(p.len(), q.len(), "distance over unaligned vectors");
    if p.is_empty() {
        return 0.0;
    }
    match metric {
        Metric::EarthMovers => {
            let mut prefix = 0.0f64;
            let mut total = 0.0f64;
            for (a, b) in p.iter().zip(q) {
                prefix += a - b;
                total += prefix.abs();
            }
            total
        }
        Metric::Euclidean => p
            .iter()
            .zip(q)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            .sqrt(),
        Metric::L1 => p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum(),
        Metric::KlDivergence => p
            .iter()
            .zip(q)
            .map(|(&a, &b)| {
                if a <= 0.0 {
                    0.0
                } else {
                    a * (a / (b + EPSILON)).ln()
                }
            })
            .sum::<f64>()
            .max(0.0),
        Metric::JensenShannon => {
            let mut js = 0.0f64;
            for (&a, &b) in p.iter().zip(q) {
                let m = 0.5 * (a + b);
                if a > 0.0 {
                    js += 0.5 * a * (a / m).ln();
                }
                if b > 0.0 {
                    js += 0.5 * b * (b / m).ln();
                }
            }
            js.max(0.0).sqrt()
        }
        Metric::ChiSquared => p
            .iter()
            .zip(q)
            .map(|(&a, &b)| {
                let d = a - b;
                if d == 0.0 {
                    0.0
                } else {
                    d * d / (b + EPSILON)
                }
            })
            .sum(),
        Metric::Hellinger => {
            // H²(p, q) = ½ Σ (√p − √q)² — algebraically 1 − BC for
            // normalized inputs, but exactly 0 for identical vectors
            // (the 1 − BC form loses ~1e-8 to rounding under the sqrt).
            let h2: f64 = 0.5
                * p.iter()
                    .zip(q)
                    .map(|(&a, &b)| {
                        let d = a.max(0.0).sqrt() - b.max(0.0).sqrt();
                        d * d
                    })
                    .sum::<f64>();
            h2.min(1.0).sqrt()
        }
        Metric::TotalVariation => 0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::{AlignedPair, Distribution};

    fn pair(p: Vec<f64>, q: Vec<f64>) -> AlignedPair {
        let labels = (0..p.len()).map(|i| format!("g{i}")).collect();
        AlignedPair { labels, p, q }
    }

    #[test]
    fn identical_distributions_have_zero_distance() {
        let p = vec![0.25, 0.25, 0.5];
        for m in Metric::all() {
            let d = distance(m, &p, &p);
            assert!(d.abs() < 1e-9, "{m}: {d}");
        }
    }

    #[test]
    fn disjoint_distributions_have_positive_distance() {
        let p = vec![1.0, 0.0];
        let q = vec![0.0, 1.0];
        for m in Metric::all() {
            assert!(distance(m, &p, &q) > 0.1, "{m}");
        }
    }

    #[test]
    fn known_values() {
        let p = vec![1.0, 0.0];
        let q = vec![0.0, 1.0];
        assert!((distance(Metric::L1, &p, &q) - 2.0).abs() < 1e-12);
        assert!((distance(Metric::Euclidean, &p, &q) - 2f64.sqrt()).abs() < 1e-12);
        // EMD: all mass moves one slot.
        assert!((distance(Metric::EarthMovers, &p, &q) - 1.0).abs() < 1e-12);
        // JS distance of disjoint distributions = sqrt(ln 2).
        assert!((distance(Metric::JensenShannon, &p, &q) - 2f64.ln().sqrt()).abs() < 1e-9);
        // TV and Hellinger are 1 for disjoint distributions.
        assert!((distance(Metric::TotalVariation, &p, &q) - 1.0).abs() < 1e-12);
        assert!((distance(Metric::Hellinger, &p, &q) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tv_is_half_l1_and_bounded() {
        let p = vec![0.7, 0.2, 0.1];
        let q = vec![0.2, 0.3, 0.5];
        let tv = distance(Metric::TotalVariation, &p, &q);
        let l1 = distance(Metric::L1, &p, &q);
        assert!((tv - l1 / 2.0).abs() < 1e-12);
        assert!(tv <= 1.0 + 1e-12);
    }

    #[test]
    fn hellinger_known_value_and_bounds() {
        // H(p, q)² = 1 − Σ√(p·q); for p = (1, 0), q = (0.5, 0.5):
        // BC = √0.5, H = sqrt(1 − √0.5).
        let h = distance(Metric::Hellinger, &[1.0, 0.0], &[0.5, 0.5]);
        assert!((h - (1.0 - 0.5f64.sqrt()).sqrt()).abs() < 1e-12);
        // Empty-vs-nonempty views: the ½Σ(√p−√q)² form gives √(½·Σq)
        // = √0.5 for an all-zero side against a normalized side.
        let h = distance(Metric::Hellinger, &[0.0, 0.0], &[0.5, 0.5]);
        assert!((h - 0.5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn emd_respects_ordering() {
        // Mass moving two slots costs twice as much as one slot.
        let near = distance(Metric::EarthMovers, &[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]);
        let far = distance(Metric::EarthMovers, &[1.0, 0.0, 0.0], &[0.0, 0.0, 1.0]);
        assert!((far - 2.0 * near).abs() < 1e-12);
    }

    #[test]
    fn kl_is_asymmetric_and_finite_on_zeros() {
        let p = vec![0.9, 0.1];
        let q = vec![0.1, 0.9];
        let ab = distance(Metric::KlDivergence, &p, &q);
        let ba = distance(Metric::KlDivergence, &q, &p);
        assert!((ab - ba).abs() > 1e-12 || ab == ba); // may coincide numerically
                                                      // q has a zero where p has mass: smoothing keeps it finite.
        let d = distance(Metric::KlDivergence, &[0.5, 0.5], &[1.0, 0.0]);
        assert!(d.is_finite());
        assert!(d > 0.0);
    }

    #[test]
    fn symmetric_metrics_are_symmetric() {
        let p = vec![0.7, 0.2, 0.1];
        let q = vec![0.1, 0.3, 0.6];
        for m in Metric::all().into_iter().filter(|m| m.is_symmetric()) {
            let ab = distance(m, &p, &q);
            let ba = distance(m, &q, &p);
            assert!((ab - ba).abs() < 1e-12, "{m}");
        }
    }

    #[test]
    fn all_zero_vectors_are_handled() {
        let z = vec![0.0, 0.0];
        let p = vec![0.5, 0.5];
        for m in Metric::all() {
            assert!(distance(m, &z, &z).abs() < 1e-9, "{m}");
            assert!(distance(m, &p, &z).is_finite(), "{m}");
            assert!(distance(m, &z, &p).is_finite(), "{m}");
        }
    }

    #[test]
    fn empty_vectors() {
        for m in Metric::all() {
            assert_eq!(distance(m, &[], &[]), 0.0);
        }
    }

    #[test]
    fn metric_distance_on_aligned_pair_matches_raw() {
        let t = Distribution::from_pairs(vec![("a".into(), Some(3.0)), ("b".into(), Some(1.0))]);
        let c = Distribution::from_pairs(vec![("a".into(), Some(1.0)), ("b".into(), Some(3.0))]);
        let pair = AlignedPair::align(&t, &c);
        for m in Metric::all() {
            assert!((m.distance(&pair) - distance(m, &pair.p, &pair.q)).abs() < 1e-15);
        }
        let _ = pair;
    }

    #[test]
    fn name_parse_roundtrip() {
        for m in Metric::all() {
            assert_eq!(Metric::parse(m.name()), Some(m));
        }
        assert_eq!(Metric::parse("nope"), None);
    }

    #[test]
    fn larger_deviation_larger_distance() {
        // Monotonicity sanity: moving further from q increases distance.
        let q = vec![0.5, 0.5];
        let mild = vec![0.6, 0.4];
        let strong = vec![0.9, 0.1];
        for m in Metric::all() {
            assert!(distance(m, &strong, &q) > distance(m, &mild, &q), "{m}");
        }
    }

    #[test]
    fn helper_pair_used() {
        let p = pair(vec![0.5, 0.5], vec![0.5, 0.5]);
        assert_eq!(Metric::L1.distance(&p), 0.0);
    }
}
