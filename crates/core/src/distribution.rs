//! View results as probability distributions.
//!
//! The paper (§2) normalizes each two-column view result into a
//! probability distribution so target and comparison views are comparable
//! regardless of subset size: "We normalize each result table into a
//! probability distribution, such that the values of f(m) sum to 1."

use memdb::Value;

/// A named discrete distribution: group labels with probabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct Distribution {
    /// Group labels in canonical (sorted) order.
    pub labels: Vec<String>,
    /// Probabilities, aligned with `labels`, summing to ~1 (or all zero
    /// when the underlying view was empty).
    pub probs: Vec<f64>,
    /// The raw (pre-normalization) aggregate values, for display.
    pub raw: Vec<f64>,
}

impl Distribution {
    /// Build a distribution from `(label, value)` pairs.
    ///
    /// Handling of awkward inputs, documented because SeeDB must score
    /// *every* view robustly:
    /// * `NULL` aggregates (empty groups) contribute weight 0;
    /// * negative aggregates are clamped to 0 for the probability mass
    ///   (distance metrics assume distributions) while `raw` keeps the
    ///   signed value for display;
    /// * if total mass is 0 the distribution is all-zero (and any distance
    ///   against it is driven entirely by the other side).
    pub fn from_pairs(pairs: Vec<(String, Option<f64>)>) -> Distribution {
        let mut pairs = pairs;
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        let labels: Vec<String> = pairs.iter().map(|(l, _)| l.clone()).collect();
        let raw: Vec<f64> = pairs.iter().map(|(_, v)| v.unwrap_or(0.0)).collect();
        let mass: Vec<f64> = raw.iter().map(|&v| v.max(0.0)).collect();
        let total: f64 = mass.iter().sum();
        let probs = if total > 0.0 {
            mass.iter().map(|&v| v / total).collect()
        } else {
            vec![0.0; mass.len()]
        };
        Distribution { labels, probs, raw }
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the distribution has no groups at all.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Probability for `label`, 0 if absent.
    pub fn prob(&self, label: &str) -> f64 {
        match self.labels.binary_search_by(|l| l.as_str().cmp(label)) {
            Ok(i) => self.probs[i],
            Err(_) => 0.0,
        }
    }
}

/// Two distributions aligned on the union of their group labels, in a
/// shared canonical order — the form every distance metric consumes.
/// Groups missing on one side get probability 0 (e.g. a store with no
/// Laserwave sales at all).
#[derive(Debug, Clone, PartialEq)]
pub struct AlignedPair {
    /// Union of group labels, sorted.
    pub labels: Vec<String>,
    /// Target-view probabilities (`P[V_i(D_Q)]`).
    pub p: Vec<f64>,
    /// Comparison-view probabilities (`P[V_i(D)]`).
    pub q: Vec<f64>,
}

impl AlignedPair {
    /// Align `target` and `comparison` on their label union.
    pub fn align(target: &Distribution, comparison: &Distribution) -> AlignedPair {
        let mut labels: Vec<String> = Vec::with_capacity(target.len().max(comparison.len()));
        let (mut i, mut j) = (0usize, 0usize);
        while i < target.len() || j < comparison.len() {
            let next = match (target.labels.get(i), comparison.labels.get(j)) {
                (Some(a), Some(b)) => {
                    use std::cmp::Ordering::*;
                    match a.cmp(b) {
                        Less => {
                            i += 1;
                            a.clone()
                        }
                        Greater => {
                            j += 1;
                            b.clone()
                        }
                        Equal => {
                            i += 1;
                            j += 1;
                            a.clone()
                        }
                    }
                }
                (Some(a), None) => {
                    i += 1;
                    a.clone()
                }
                (None, Some(b)) => {
                    j += 1;
                    b.clone()
                }
                (None, None) => unreachable!("loop condition"),
            };
            labels.push(next);
        }
        let p = labels.iter().map(|l| target.prob(l)).collect();
        let q = labels.iter().map(|l| comparison.prob(l)).collect();
        AlignedPair { labels, p, q }
    }

    /// Number of aligned groups.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when there are no groups.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The group where `|p - q|` is largest — the paper's frontend shows
    /// "value with maximum change" as view metadata (§3.2).
    pub fn max_change(&self) -> Option<(&str, f64)> {
        self.labels
            .iter()
            .zip(self.p.iter().zip(self.q.iter()))
            .map(|(l, (&p, &q))| (l.as_str(), (p - q).abs()))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
    }
}

/// Render a group-label [`Value`] the way distributions key it.
pub fn label_of(v: &Value) -> String {
    v.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist(pairs: &[(&str, f64)]) -> Distribution {
        Distribution::from_pairs(
            pairs
                .iter()
                .map(|(l, v)| (l.to_string(), Some(*v)))
                .collect(),
        )
    }

    #[test]
    fn normalization_sums_to_one() {
        let d = dist(&[
            ("Jan", 180.55),
            ("Feb", 145.50),
            ("Mar", 122.00),
            ("Apr", 90.13),
        ]);
        let total: f64 = d.probs.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Paper example: 180.55 / 538.18.
        assert!((d.prob("Jan") - 180.55 / 538.18).abs() < 1e-12);
    }

    #[test]
    fn labels_sorted_canonically() {
        let d = dist(&[("b", 1.0), ("a", 2.0), ("c", 3.0)]);
        assert_eq!(d.labels, vec!["a", "b", "c"]);
        assert_eq!(d.raw, vec![2.0, 1.0, 3.0]);
    }

    #[test]
    fn null_and_negative_values() {
        let d = Distribution::from_pairs(vec![
            ("a".into(), Some(-5.0)),
            ("b".into(), None),
            ("c".into(), Some(5.0)),
        ]);
        assert_eq!(d.prob("a"), 0.0);
        assert_eq!(d.prob("b"), 0.0);
        assert_eq!(d.prob("c"), 1.0);
        assert_eq!(d.raw[0], -5.0); // raw keeps the sign
    }

    #[test]
    fn zero_mass_distribution() {
        let d = dist(&[("a", 0.0), ("b", 0.0)]);
        assert_eq!(d.probs, vec![0.0, 0.0]);
    }

    #[test]
    fn alignment_unions_labels() {
        let t = dist(&[("MA", 1.0), ("WA", 3.0)]);
        let c = dist(&[("MA", 1.0), ("NY", 1.0)]);
        let a = AlignedPair::align(&t, &c);
        assert_eq!(a.labels, vec!["MA", "NY", "WA"]);
        assert_eq!(a.p, vec![0.25, 0.0, 0.75]);
        assert_eq!(a.q, vec![0.5, 0.5, 0.0]);
    }

    #[test]
    fn alignment_identical() {
        let t = dist(&[("a", 1.0), ("b", 1.0)]);
        let a = AlignedPair::align(&t, &t);
        assert_eq!(a.p, a.q);
    }

    #[test]
    fn max_change_group() {
        let t = dist(&[("MA", 9.0), ("WA", 1.0)]);
        let c = dist(&[("MA", 1.0), ("WA", 9.0)]);
        let a = AlignedPair::align(&t, &c);
        let (label, delta) = a.max_change().unwrap();
        assert!(label == "MA" || label == "WA");
        assert!((delta - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_distributions_align() {
        let e = Distribution::from_pairs(vec![]);
        let d = dist(&[("a", 1.0)]);
        let a = AlignedPair::align(&e, &d);
        assert_eq!(a.labels, vec!["a"]);
        assert_eq!(a.p, vec![0.0]);
        assert_eq!(a.q, vec![1.0]);
        assert!(AlignedPair::align(&e, &e).is_empty());
    }

    #[test]
    fn prob_lookup_missing_label() {
        let d = dist(&[("a", 1.0)]);
        assert_eq!(d.prob("zzz"), 0.0);
    }
}
