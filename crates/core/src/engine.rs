//! The SeeDB engine: the full backend pipeline of Fig. 4.
//!
//! ```text
//! analyst query Q
//!   └─ Metadata Collector  (stats, correlations, access patterns)
//!       └─ Query Generator (enumerate views, prune unpromising ones)
//!           └─ Optimizer   (combine view queries, sample, parallelize)
//!               └─ DBMS    (memdb executes the planned queries)
//!                   └─ View Processor (normalize, score, top-k)
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use memdb::{
    run_batch, CostSnapshot, Database, DbError, DbResult, LogicalPlan, PlanOutput, Table, Value,
};
use seedb_obs::Span;

use crate::config::{ExecutionStrategy, SeeDbConfig};
use crate::metadata::{AccessTracker, MetadataCollector};
use crate::optimizer::plan;
use crate::phased::{run_phased_with_group_counts, EarlyPrune, PhasedConfig};
use crate::processor::{top_k, Processor, ViewResult};
use crate::pruning::{prune, PrunedView};
use crate::querygen::AnalystQuery;
use crate::view::enumerate_views;

/// Wall-clock time spent in each backend phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Metadata collection (stats + correlations).
    pub metadata: Duration,
    /// View enumeration + pruning.
    pub pruning: Duration,
    /// Optimizer planning (including bin packing).
    pub planning: Duration,
    /// Query execution on the DBMS.
    pub execution: Duration,
    /// View processing (normalization, scoring, top-k).
    pub processing: Duration,
}

impl PhaseTimings {
    /// End-to-end backend time.
    pub fn total(&self) -> Duration {
        self.metadata + self.pruning + self.planning + self.execution + self.processing
    }
}

/// A SeeDB recommendation for one analyst query.
#[derive(Debug)]
pub struct Recommendation {
    /// The top-k views, highest utility first.
    pub views: Vec<ViewResult>,
    /// The configured number of *lowest*-utility views (demo contrast);
    /// empty unless `low_utility_views > 0`.
    pub low_utility: Vec<ViewResult>,
    /// Every scored view, in candidate order (for experiments).
    pub all: Vec<ViewResult>,
    /// Views pruned without execution, with reasons.
    pub pruned: Vec<PrunedView>,
    /// Views discarded mid-execution by a phased strategy's
    /// confidence-interval pruning (empty for the batch strategies).
    pub early_pruned: Vec<EarlyPrune>,
    /// Correlation clusters detected during pruning.
    pub clusters: Vec<Vec<String>>,
    /// Candidate views before pruning.
    pub num_candidates: usize,
    /// DBMS queries actually executed.
    pub num_queries: usize,
    /// Per-query execution errors (query index in plan, error). Views
    /// touched by a failed query score against an empty side.
    pub errors: Vec<(usize, DbError)>,
    /// Phase timings.
    pub timings: PhaseTimings,
    /// DBMS cost counters consumed by this recommendation.
    pub cost: CostSnapshot,
}

/// The SeeDB system: wraps a [`Database`] and answers
/// "given this query, which visualizations are interesting?".
#[derive(Debug)]
pub struct SeeDb {
    db: Arc<Database>,
    collector: MetadataCollector,
    config: SeeDbConfig,
}

impl SeeDb {
    /// Wrap `db` with the given configuration.
    pub fn new(db: Arc<Database>, config: SeeDbConfig) -> Self {
        SeeDb {
            db,
            collector: MetadataCollector::new(),
            config,
        }
    }

    /// Wrap `db` with [`SeeDbConfig::recommended`].
    pub fn with_defaults(db: Arc<Database>) -> Self {
        SeeDb::new(db, SeeDbConfig::recommended())
    }

    /// The wrapped database.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Current configuration.
    pub fn config(&self) -> &SeeDbConfig {
        &self.config
    }

    /// Mutable configuration (adjust knobs between queries).
    pub fn config_mut(&mut self) -> &mut SeeDbConfig {
        &mut self.config
    }

    /// The workload access tracker feeding access-frequency pruning.
    pub fn tracker(&self) -> &AccessTracker {
        self.collector.tracker()
    }

    /// Append rows to a registered table (live ingest): publishes a new
    /// table version that shares all existing segments with the old one
    /// ([`Database::append_rows`]). Recommendations already in flight
    /// keep their snapshot; the next [`SeeDb::recommend`] sees the
    /// appended rows. (The serving layer's [`crate::Service`] wraps
    /// this with incremental cache maintenance.)
    ///
    /// # Errors
    /// Same as [`Database::append_rows`].
    pub fn append_rows(&self, table: &str, rows: Vec<Vec<Value>>) -> DbResult<Arc<Table>> {
        self.db.append_rows(table, rows)
    }

    /// Recommend views for an analyst query given as SQL
    /// (`SELECT * FROM t WHERE ...`).
    ///
    /// # Errors
    /// Parse errors and unknown-table errors; per-view query failures are
    /// reported in [`Recommendation::errors`] instead.
    pub fn recommend_sql(&self, sql: &str) -> DbResult<Recommendation> {
        let analyst = AnalystQuery::from_sql(sql)?;
        self.recommend(&analyst)
    }

    /// Recommend views for an analyst query.
    ///
    /// # Errors
    /// `UnknownTable` if the query's table is not registered; metadata
    /// collection failures. Individual view-query failures are captured
    /// in [`Recommendation::errors`].
    pub fn recommend(&self, analyst: &AnalystQuery) -> DbResult<Recommendation> {
        self.recommend_via(analyst, &Span::none(), |plans, _span| {
            run_batch(&self.db, plans, self.config.execution.workers()).outputs
        })
    }

    /// [`SeeDb::recommend`] with a pluggable plan executor — the hook the
    /// serving layer ([`crate::service::Service`]) uses to route the
    /// batch strategies' planned queries through its shared
    /// partial-aggregate cache. `execute` receives the planned
    /// [`LogicalPlan`]s and must return one outcome per plan, in input
    /// order, byte-identical to what [`memdb::run_batch`] would produce.
    /// The phased strategies execute against the table directly and
    /// never call `execute`. Each pipeline phase records a child of
    /// `span` (pass [`Span::none`] when not tracing); `execute` receives
    /// the `execute` phase's span to hang scan spans under.
    pub(crate) fn recommend_via<F>(
        &self,
        analyst: &AnalystQuery,
        span: &Span,
        execute: F,
    ) -> DbResult<Recommendation>
    where
        F: FnOnce(&[LogicalPlan], &Span) -> Vec<DbResult<PlanOutput>>,
    {
        let table = self.db.table(&analyst.table)?;
        let cost_before = self.db.cost();
        let mut timings = PhaseTimings::default();

        // Record this analyst query in the workload log (it arrives
        // before metadata collection so it is visible to pruning of
        // *later* queries; the paper's access patterns accumulate over
        // the analysis session).
        self.collector
            .tracker()
            .record(&analyst.table, analyst.referenced_columns());

        // Phase 1: metadata.
        let t0 = Instant::now();
        let metadata_span = span.child("metadata");
        let need_corr = self.config.compute_correlations && self.config.pruning.correlation;
        let metadata = self.collector.collect(&table, need_corr)?;
        drop(metadata_span);
        timings.metadata = t0.elapsed();

        // Phase 2: enumerate + prune.
        let t0 = Instant::now();
        let prune_span = span.child("prune");
        let candidates = enumerate_views(table.schema(), &self.config.functions);
        let num_candidates = candidates.len();
        // Dimensions the analyst filtered on convey nothing beyond the
        // query itself; drop their views first when configured.
        let (candidates, filter_pruned) = if self.config.exclude_filter_attributes {
            let filter_cols = analyst.referenced_columns();
            let (dropped, kept): (Vec<_>, Vec<_>) = candidates
                .into_iter()
                .partition(|v| filter_cols.contains(&v.dimension));
            (
                kept,
                dropped
                    .into_iter()
                    .map(|spec| PrunedView {
                        spec,
                        reason: crate::pruning::PruneReason::FilterAttribute,
                    })
                    .collect(),
            )
        } else {
            (candidates, Vec::new())
        };
        let mut outcome = prune(candidates, &metadata, &self.config.pruning);
        outcome.pruned.extend(filter_pruned);
        prune_span.attr("candidates", num_candidates);
        prune_span.attr("kept", outcome.kept.len());
        drop(prune_span);
        timings.pruning = t0.elapsed();

        // Phases 3–5 depend on the execution strategy: the batch
        // strategies plan shared-scan queries and stream their outputs
        // through the view processor; the phased strategies hand the
        // surviving views to the phase-sliced executor, which prunes
        // hopeless views mid-flight via confidence intervals.
        let phased_params = match self.config.execution {
            ExecutionStrategy::Phased {
                phases,
                delta,
                min_phases,
            } => Some((phases, delta, min_phases, 1)),
            ExecutionStrategy::PhasedParallel {
                phases,
                delta,
                min_phases,
                workers,
            } => Some((phases, delta, min_phases, workers)),
            ExecutionStrategy::Sequential | ExecutionStrategy::Parallel { .. } => None,
        };
        if let Some((phases, delta, min_phases, workers)) = phased_params {
            let phased_cfg = PhasedConfig {
                phases,
                k: self.config.k,
                delta,
                min_phases,
                metric: self.config.metric,
                workers,
            };
            // The confidence bound's per-dimension group counts come
            // from the Phase-1 metadata — no table rescan.
            let mut dim_groups = std::collections::HashMap::new();
            for v in &outcome.kept {
                if !dim_groups.contains_key(&v.dimension) {
                    if let Ok(stats) = metadata.stats.column(&v.dimension) {
                        dim_groups.insert(v.dimension.clone(), stats.group_count());
                    }
                }
            }
            let t0 = Instant::now();
            let phased_span = span.child("phased_execute");
            let phased = run_phased_with_group_counts(
                &table,
                analyst,
                &outcome.kept,
                &phased_cfg,
                &dim_groups,
            )?;
            phased_span.attr("plans", phased.plans_executed);
            drop(phased_span);
            timings.execution = t0.elapsed();
            let t0 = Instant::now();
            let low_utility = low_utility_views(&phased.survivors, self.config.low_utility_views);
            timings.processing = t0.elapsed();
            return Ok(Recommendation {
                views: phased.views,
                low_utility,
                all: phased.survivors,
                pruned: outcome.pruned,
                early_pruned: phased.pruned,
                clusters: outcome.clusters,
                num_candidates,
                num_queries: phased.plans_executed,
                errors: Vec::new(),
                timings,
                cost: self.db.cost().since(&cost_before),
            });
        }

        // Phase 3: plan.
        let t0 = Instant::now();
        let optimize_span = span.child("optimize");
        let exec_plan = plan(&outcome.kept, analyst, &metadata, &self.config.optimizer);
        optimize_span.attr("queries", exec_plan.num_queries());
        drop(optimize_span);
        timings.planning = t0.elapsed();

        // Phase 4: execute.
        let t0 = Instant::now();
        let execute_span = span.child("execute");
        execute_span.attr("plans", exec_plan.num_queries());
        let plans: Vec<LogicalPlan> = exec_plan.queries.iter().map(|q| q.plan.clone()).collect();
        let outputs = execute(&plans, &execute_span);
        drop(execute_span);
        timings.execution = t0.elapsed();

        // Phase 5: process (streaming over completed queries).
        let t0 = Instant::now();
        let process_span = span.child("process");
        let mut processor = Processor::new(outcome.kept.clone(), self.config.metric);
        let mut errors = Vec::new();
        for (i, (pq, out)) in exec_plan.queries.iter().zip(outputs).enumerate() {
            match out {
                Ok(output) => processor.consume(pq, &output)?,
                Err(e) => errors.push((i, e)),
            }
        }
        let all = processor.finish();
        let views = top_k(all.clone(), self.config.k);
        let low_utility = low_utility_views(&all, self.config.low_utility_views);
        process_span.attr("views", all.len());
        drop(process_span);
        timings.processing = t0.elapsed();

        Ok(Recommendation {
            views,
            low_utility,
            all,
            pruned: outcome.pruned,
            early_pruned: Vec::new(),
            clusters: outcome.clusters,
            num_candidates,
            num_queries: exec_plan.num_queries(),
            errors,
            timings,
            cost: self.db.cost().since(&cost_before),
        })
    }
}

/// The `n` lowest-utility views (demo contrast), ascending.
fn low_utility_views(all: &[ViewResult], n: usize) -> Vec<ViewResult> {
    if n == 0 {
        return Vec::new();
    }
    let mut asc = all.to_vec();
    asc.sort_by(|a, b| {
        a.utility
            .partial_cmp(&b.utility)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.spec.label().cmp(&b.spec.label()))
    });
    asc.truncate(n);
    asc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::Metric;
    use crate::view::FunctionSet;
    use memdb::{ColumnDef, DataType, Expr, Schema, Table, Value};

    /// Sales-like table with a planted deviation: product "Laserwave"
    /// sells overwhelmingly in the east, everything else in the west.
    fn demo_db() -> Arc<Database> {
        let schema = Schema::new(vec![
            ColumnDef::dimension("region", DataType::Str),
            ColumnDef::dimension("category", DataType::Str),
            ColumnDef::dimension("product", DataType::Str),
            ColumnDef::measure("amount", DataType::Float64),
            ColumnDef::measure("quantity", DataType::Float64),
        ])
        .unwrap();
        let mut t = Table::new("sales", schema);
        for i in 0..600 {
            let laser = i % 6 == 0;
            let product = if laser { "Laserwave" } else { "Other" };
            // Laserwave rows are all eastern; others are 25% east.
            let region = if laser || i % 4 == 0 { "east" } else { "west" };
            // `(i + i/6) % 3` cycles over categories even on the
            // Laserwave rows (multiples of 6), keeping category balanced
            // within and outside the subset.
            let category = ["appliance", "gadget", "tool"][(i + i / 6) % 3];
            t.push_row(vec![
                region.into(),
                category.into(),
                product.into(),
                Value::Float(10.0 + (i % 5) as f64),
                Value::Float(1.0 + (i % 3) as f64),
            ])
            .unwrap();
        }
        let db = Database::new();
        db.register(t);
        Arc::new(db)
    }

    fn laserwave() -> AnalystQuery {
        AnalystQuery::new("sales", Some(Expr::col("product").eq("Laserwave")))
    }

    #[test]
    fn end_to_end_recommendation() {
        let seedb = SeeDb::with_defaults(demo_db());
        let rec = seedb.recommend(&laserwave()).unwrap();
        assert!(rec.errors.is_empty());
        assert!(!rec.views.is_empty());
        assert!(rec.num_candidates > 0);
        assert!(rec.num_queries > 0);
        // The most deviating dimensions are `product` (the filter
        // attribute itself: target is 100% Laserwave) and the planted
        // `region` skew; `category` is balanced and must not win.
        assert_ne!(rec.views[0].spec.dimension, "category");
        assert!(rec
            .views
            .iter()
            .any(|v| v.spec.dimension == "region" && v.utility > 0.1));
        // Utilities sorted descending.
        for w in rec.views.windows(2) {
            assert!(w[0].utility >= w[1].utility);
        }
        assert!(rec.cost.queries > 0);
    }

    #[test]
    fn recommend_sql_parse_errors_carry_token_position() {
        let seedb = SeeDb::with_defaults(demo_db());
        let err = seedb
            .recommend_sql("SELECT * FROM sales WHEREE product = 'Laserwave'")
            .unwrap_err();
        assert!(matches!(err, DbError::Parse(_)));
        let msg = err.to_string();
        // The misspelled WHERE starts at byte 21; the error must point
        // there instead of dropping the lexer position.
        assert!(msg.contains("at position 21"), "{msg}");
    }

    #[test]
    fn recommend_from_sql() {
        let seedb = SeeDb::with_defaults(demo_db());
        let rec = seedb
            .recommend_sql("SELECT * FROM sales WHERE product = 'Laserwave'")
            .unwrap();
        assert_ne!(rec.views[0].spec.dimension, "category");
        assert!(rec.views[0].utility > 0.1);
    }

    #[test]
    fn basic_and_optimized_agree_on_ranking() {
        let db = demo_db();
        let basic = SeeDb::new(db.clone(), SeeDbConfig::basic())
            .recommend(&laserwave())
            .unwrap();
        let mut cfg = SeeDbConfig::recommended();
        cfg.pruning = crate::pruning::PruningConfig::disabled(); // same view set
        let optimized = SeeDb::new(db, cfg).recommend(&laserwave()).unwrap();
        assert_eq!(basic.all.len(), optimized.all.len());
        for (a, b) in basic.all.iter().zip(&optimized.all) {
            assert_eq!(a.spec, b.spec);
            assert!((a.utility - b.utility).abs() < 1e-9, "{}", a.spec);
        }
        // But the optimized plan issues far fewer queries.
        assert!(optimized.num_queries < basic.num_queries);
    }

    #[test]
    fn optimizations_reduce_scan_cost() {
        let db = demo_db();
        let basic = SeeDb::new(db.clone(), SeeDbConfig::basic())
            .recommend(&laserwave())
            .unwrap();
        let mut cfg = SeeDbConfig::recommended();
        cfg.execution = cfg.execution.with_workers(1);
        let optimized = SeeDb::new(db, cfg).recommend(&laserwave()).unwrap();
        assert!(
            optimized.cost.rows_scanned < basic.cost.rows_scanned / 2,
            "optimized {} vs basic {}",
            optimized.cost.rows_scanned,
            basic.cost.rows_scanned
        );
    }

    #[test]
    fn low_utility_views_for_demo_contrast() {
        let db = demo_db();
        let mut cfg = SeeDbConfig::recommended();
        cfg.low_utility_views = 2;
        let rec = SeeDb::new(db, cfg).recommend(&laserwave()).unwrap();
        assert_eq!(rec.low_utility.len(), 2);
        let worst = rec.low_utility[0].utility;
        let best = rec.views[0].utility;
        assert!(worst <= best);
    }

    #[test]
    fn phased_strategy_matches_batch_top_k() {
        let db = demo_db();
        let mut batch_cfg = SeeDbConfig::recommended().with_k(3);
        batch_cfg.pruning = crate::pruning::PruningConfig::disabled();
        let batch = SeeDb::new(db.clone(), batch_cfg.clone())
            .recommend(&laserwave())
            .unwrap();

        for strategy in [
            ExecutionStrategy::phased(),
            ExecutionStrategy::phased_parallel(4),
        ] {
            let cfg = batch_cfg.clone().with_execution(strategy.clone());
            let rec = SeeDb::new(db.clone(), cfg).recommend(&laserwave()).unwrap();
            assert!(rec.errors.is_empty());
            let b: Vec<String> = batch.views.iter().map(|v| v.spec.label()).collect();
            let p: Vec<String> = rec.views.iter().map(|v| v.spec.label()).collect();
            assert_eq!(b, p, "{strategy}: phased top-k must match batch top-k");
            for (x, y) in batch.views.iter().zip(&rec.views) {
                assert!((x.utility - y.utility).abs() < 1e-9, "{strategy}");
            }
            // Phased execution runs one shared-scan plan per phase.
            assert!(rec.num_queries <= 10, "one plan per phase");
        }
    }

    #[test]
    fn phased_strategy_reports_early_pruned_views() {
        let db = demo_db();
        let mut cfg = SeeDbConfig::recommended().with_k(1);
        cfg.pruning = crate::pruning::PruningConfig::disabled();
        cfg.execution = ExecutionStrategy::Phased {
            phases: 10,
            delta: 0.05,
            min_phases: 2,
        };
        let rec = SeeDb::new(db, cfg).recommend(&laserwave()).unwrap();
        // survivors + early-pruned partition the executed candidates.
        assert_eq!(
            rec.all.len() + rec.early_pruned.len(),
            rec.num_candidates - rec.pruned.len()
        );
        // The batch strategies never early-prune.
        let rec2 = SeeDb::with_defaults(demo_db())
            .recommend(&laserwave())
            .unwrap();
        assert!(rec2.early_pruned.is_empty());
    }

    #[test]
    fn unknown_table_errors_cleanly() {
        let seedb = SeeDb::with_defaults(demo_db());
        let r = seedb.recommend(&AnalystQuery::new("missing", None));
        assert!(matches!(r, Err(DbError::UnknownTable(_))));
    }

    #[test]
    fn no_filter_query_yields_near_zero_utilities() {
        let seedb = SeeDb::with_defaults(demo_db());
        let rec = seedb.recommend(&AnalystQuery::new("sales", None)).unwrap();
        for v in &rec.all {
            assert!(v.utility < 1e-9, "{}: {}", v.spec, v.utility);
        }
    }

    #[test]
    fn workload_accumulates_in_tracker() {
        let seedb = SeeDb::with_defaults(demo_db());
        seedb.recommend(&laserwave()).unwrap();
        seedb.recommend(&laserwave()).unwrap();
        assert_eq!(seedb.tracker().total_queries("sales"), 2);
        assert_eq!(seedb.tracker().count("sales", "product"), 2);
    }

    #[test]
    fn metric_changes_scores() {
        let db = demo_db();
        let mut cfg = SeeDbConfig::recommended();
        cfg.metric = Metric::EarthMovers;
        let emd = SeeDb::new(db.clone(), cfg.clone())
            .recommend(&laserwave())
            .unwrap();
        cfg.metric = Metric::KlDivergence;
        let kl = SeeDb::new(db, cfg).recommend(&laserwave()).unwrap();
        let e = emd.views[0].utility;
        let k = kl.views[0].utility;
        assert!(e > 0.0 && k > 0.0);
        assert!((e - k).abs() > 1e-12, "different metrics, different scales");
    }

    #[test]
    fn k_truncates_results() {
        let db = demo_db();
        let mut cfg = SeeDbConfig::recommended().with_k(2);
        cfg.functions = FunctionSet::full();
        let rec = SeeDb::new(db, cfg).recommend(&laserwave()).unwrap();
        assert_eq!(rec.views.len(), 2);
        assert!(rec.all.len() > 2);
    }

    #[test]
    fn timings_are_populated() {
        let seedb = SeeDb::with_defaults(demo_db());
        let rec = seedb.recommend(&laserwave()).unwrap();
        assert!(rec.timings.total() > Duration::ZERO);
        assert!(rec.timings.execution > Duration::ZERO);
    }
}
