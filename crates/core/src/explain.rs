//! EXPLAIN ANALYZE for the serving layer.
//!
//! A [`crate::Service`] executes an analyst request through a pipeline
//! of cache probes, shared batch scans, standalone scans, and
//! incremental refreshes. [`crate::Service::recommend_explained`] runs
//! one request with operator recording switched on: every point that
//! touches (or deliberately avoids) the table contributes one
//! [`ExplainOp`] carrying the extended [`ExecStats`] — rows scanned
//! vs. matched, partition fan-out, merge time, and the cache probe
//! outcome.
//!
//! The operator list reconciles *exactly* with the database's cost
//! counters: operators are recorded at the same points
//! [`memdb::Database`] cost recording fires, so the report's scan
//! totals equal the `exec.*` registry deltas over the request by
//! construction ([`ExplainReport::reconciles`] asserts it, and the
//! demo CLI's `:explain` prints both). `elapsed` and `merge_ns` are
//! wall/clock time and therefore excluded from [`ExplainReport::render`]
//! totals' determinism guarantee only where noted — on a fully warm
//! (all-hit) run the rendered report is byte-identical across repeats.

use memdb::{CacheOutcome, CostSnapshot, ExecStats};

/// One recorded operator of an explained request.
#[derive(Debug, Clone)]
pub struct ExplainOp {
    /// What the operator did: `cache_hit`, `projection_hit`,
    /// `batch_scan(n)`, `scan`, `refresh`, `refresh_restamp`,
    /// `bypass_scan`.
    pub label: String,
    /// The operator's execution stats (zeroed scan figures for
    /// cache-served operators — that is exactly what they cost).
    pub stats: ExecStats,
}

/// Per-operator stats of one explained request plus the `exec.*`
/// registry counter deltas observed across it.
#[derive(Debug, Clone, Default)]
pub struct ExplainReport {
    /// Operators in execution order.
    pub ops: Vec<ExplainOp>,
    /// `exec.*` cost-counter deltas over the request (what the DBMS
    /// actually charged).
    pub cost_delta: CostSnapshot,
}

impl ExplainReport {
    /// Summed stats across all operators.
    pub fn totals(&self) -> ExecStats {
        let mut total = ExecStats::default();
        for op in &self.ops {
            total.merge(&op.stats);
        }
        total
    }

    /// Do the recorded operators' scan totals equal the registry's
    /// cost-counter deltas? True on a quiescent service (concurrent
    /// requests' scans land in the deltas but not in this report's
    /// operator list).
    pub fn reconciles(&self) -> bool {
        let t = self.totals();
        t.rows_scanned == self.cost_delta.rows_scanned
            && t.table_scans == self.cost_delta.table_scans
    }

    /// Render the report as a fixed-width table. Deterministic for
    /// deterministic stats: wall-clock `elapsed` is deliberately
    /// excluded and `merge_ns` is 0 for unpartitioned or cache-served
    /// operators, so a fully warm (all-hit) run renders byte-identical
    /// across repeats.
    pub fn render(&self) -> String {
        let mut rows: Vec<[String; 7]> = vec![[
            "operator".into(),
            "cache".into(),
            "rows_scanned".into(),
            "rows_matched".into(),
            "partitions".into(),
            "groups".into(),
            "merge_ns".into(),
        ]];
        let fmt_stats = |label: &str, s: &ExecStats, cache: String| {
            [
                label.to_string(),
                cache,
                s.rows_scanned.to_string(),
                s.rows_matched.to_string(),
                s.partitions.to_string(),
                s.groups_emitted.to_string(),
                s.merge_ns.to_string(),
            ]
        };
        for op in &self.ops {
            rows.push(fmt_stats(&op.label, &op.stats, op.stats.cache.to_string()));
        }
        let totals = self.totals();
        rows.push(fmt_stats("TOTAL", &totals, "-".into()));
        let mut widths = [0usize; 7];
        for row in &rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        for (i, row) in rows.iter().enumerate() {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(c, cell)| format!("{:w$}", cell, w = widths[c]))
                .collect();
            out.push_str(line.join("  ").trim_end());
            out.push('\n');
            if i == 0 {
                let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
                out.push_str(&rule.join("  "));
                out.push('\n');
            }
        }
        out.push_str(&format!(
            "registry delta: queries={} table_scans={} rows_scanned={} groups_emitted={} \
             (reconciles: {})\n",
            self.cost_delta.queries,
            self.cost_delta.table_scans,
            self.cost_delta.rows_scanned,
            self.cost_delta.groups_emitted,
            self.reconciles(),
        ));
        out
    }
}

/// Shorthand for the all-zero stats cache-served operators report,
/// stamped with their probe outcome.
pub(crate) fn cache_only_stats(outcome: CacheOutcome) -> ExecStats {
    ExecStats {
        cache: outcome,
        ..ExecStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_reconciliation() {
        let report = ExplainReport {
            ops: vec![
                ExplainOp {
                    label: "scan".into(),
                    stats: ExecStats {
                        rows_scanned: 100,
                        rows_matched: 40,
                        table_scans: 1,
                        groups_emitted: 5,
                        partitions: 2,
                        merge_ns: 10,
                        cache: CacheOutcome::Miss,
                        ..ExecStats::default()
                    },
                },
                ExplainOp {
                    label: "cache_hit".into(),
                    stats: cache_only_stats(CacheOutcome::Hit),
                },
            ],
            cost_delta: CostSnapshot {
                queries: 1,
                table_scans: 1,
                rows_scanned: 100,
                groups_emitted: 5,
            },
        };
        let t = report.totals();
        assert_eq!(t.rows_scanned, 100);
        assert_eq!(t.rows_matched, 40);
        assert_eq!(t.partitions, 2);
        assert!(report.reconciles());
        let mut off = report.clone();
        off.cost_delta.rows_scanned = 99;
        assert!(!off.reconciles());
    }

    #[test]
    fn render_is_deterministic_and_excludes_elapsed() {
        let report = ExplainReport {
            ops: vec![ExplainOp {
                label: "cache_hit".into(),
                stats: ExecStats {
                    elapsed: std::time::Duration::from_millis(5),
                    ..cache_only_stats(CacheOutcome::Hit)
                },
            }],
            cost_delta: CostSnapshot::default(),
        };
        let a = report.render();
        let mut other = report.clone();
        // A different wall-clock elapsed must not change the bytes.
        other.ops[0].stats.elapsed = std::time::Duration::from_millis(99);
        assert_eq!(a, other.render());
        assert!(a.contains("cache_hit"));
        assert!(a.contains("hit"));
        assert!(a.contains("reconciles: true"));
        assert!(!a.contains("elapsed"));
    }

    #[test]
    fn empty_report_renders_header_and_totals() {
        let r = ExplainReport::default().render();
        assert!(r.starts_with("operator"));
        assert!(r.contains("TOTAL"));
    }
}
