//! Post-recommendation interaction: drill-down and roll-up.
//!
//! Paper §1 step (4): once interesting views are identified, the analyst
//! may "further interact with the displayed views (e.g., by drilling
//! down or rolling up), or start afresh with a new query". A drill-down
//! narrows the analyst's subset to one group of a recommended view and
//! re-runs SeeDB; a roll-up removes the most recent constraint.

use memdb::{DbError, DbResult, Expr, Value};

use crate::querygen::AnalystQuery;
use crate::view::ViewSpec;

/// Narrow `analyst`'s subset to the rows of `view`'s group `label`
/// (e.g. clicking the "Cambridge, MA" bar of `SUM(amount) BY store`),
/// producing the next analyst query to feed back into
/// [`SeeDb::recommend`](crate::engine::SeeDb::recommend).
///
/// The new condition is `view.dimension = label` (or `IS NULL` for the
/// null group), ANDed onto the existing filter.
pub fn drill_down(analyst: &AnalystQuery, view: &ViewSpec, label: &str) -> AnalystQuery {
    let condition = if label == "NULL" {
        Expr::col(&view.dimension).is_null()
    } else {
        Expr::col(&view.dimension).eq(Value::from(label))
    };
    let filter = match &analyst.filter {
        Some(f) => f.clone().and(condition),
        None => condition,
    };
    AnalystQuery {
        table: analyst.table.clone(),
        filter: Some(filter),
    }
}

/// Undo the most recent drill-down: strip the last AND-ed conjunct off
/// the filter. Returns the broadened query, or an error if the filter
/// has no conjunct to remove (a fresh query's own predicate is not
/// removable — "start afresh with a new query" instead).
///
/// # Errors
/// `InvalidQuery` when the filter is absent or not a conjunction.
pub fn roll_up(analyst: &AnalystQuery) -> DbResult<AnalystQuery> {
    match &analyst.filter {
        Some(Expr::And(left, _)) => Ok(AnalystQuery {
            table: analyst.table.clone(),
            filter: Some((**left).clone()),
        }),
        Some(_) => Err(DbError::InvalidQuery(
            "nothing to roll up: the filter has a single condition".to_string(),
        )),
        None => Err(DbError::InvalidQuery(
            "nothing to roll up: the query has no filter".to_string(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memdb::AggFunc;

    fn base() -> AnalystQuery {
        AnalystQuery::new("sales", Some(Expr::col("product").eq("Laserwave")))
    }

    #[test]
    fn drill_down_adds_conjunct() {
        let v = ViewSpec::new("store", "amount", AggFunc::Sum);
        let next = drill_down(&base(), &v, "Cambridge, MA");
        assert_eq!(
            next.filter.unwrap().to_sql(),
            "(product = 'Laserwave' AND store = 'Cambridge, MA')"
        );
        assert_eq!(next.table, "sales");
    }

    #[test]
    fn drill_down_on_unfiltered_query() {
        let aq = AnalystQuery::new("sales", None);
        let v = ViewSpec::count("region");
        let next = drill_down(&aq, &v, "east");
        assert_eq!(next.filter.unwrap().to_sql(), "region = 'east'");
    }

    #[test]
    fn drill_down_into_null_group() {
        let v = ViewSpec::count("region");
        let next = drill_down(&base(), &v, "NULL");
        assert_eq!(
            next.filter.unwrap().to_sql(),
            "(product = 'Laserwave' AND region IS NULL)"
        );
    }

    #[test]
    fn roll_up_reverses_drill_down() {
        let v = ViewSpec::count("region");
        let drilled = drill_down(&base(), &v, "east");
        let back = roll_up(&drilled).unwrap();
        assert_eq!(back, base());
    }

    #[test]
    fn roll_up_beyond_the_base_query_errors() {
        assert!(roll_up(&base()).is_err());
        assert!(roll_up(&AnalystQuery::new("t", None)).is_err());
    }

    #[test]
    fn repeated_drill_downs_nest_and_unwind() {
        let v1 = ViewSpec::count("region");
        let v2 = ViewSpec::count("segment");
        let q1 = drill_down(&base(), &v1, "east");
        let q2 = drill_down(&q1, &v2, "Consumer");
        assert!(q2.filter.as_ref().unwrap().to_sql().contains("Consumer"));
        let back1 = roll_up(&q2).unwrap();
        assert_eq!(back1, q1);
        let back0 = roll_up(&back1).unwrap();
        assert_eq!(back0, base());
    }

    #[test]
    fn drilled_query_executes_end_to_end() {
        use crate::config::SeeDbConfig;
        use crate::engine::SeeDb;
        use memdb::{ColumnDef, DataType, Database, Schema, Table};
        use std::sync::Arc;

        let schema = Schema::new(vec![
            ColumnDef::dimension("region", DataType::Str),
            ColumnDef::dimension("segment", DataType::Str),
            ColumnDef::dimension("product", DataType::Str),
            ColumnDef::measure("amount", DataType::Float64),
        ])
        .unwrap();
        let mut t = Table::new("sales", schema);
        for i in 0..400 {
            t.push_row(vec![
                ["east", "west"][i % 2].into(),
                ["Consumer", "Corporate", "Home"][i % 3].into(),
                ["Laserwave", "Other"][(i / 2) % 2].into(),
                Value::Float((i % 9) as f64),
            ])
            .unwrap();
        }
        let db = Arc::new(Database::new());
        db.register(t);
        let seedb = SeeDb::new(db, SeeDbConfig::recommended().with_k(3));

        let rec = seedb.recommend(&base()).unwrap();
        assert!(!rec.views.is_empty());
        let top = &rec.views[0];
        let label = top.aligned.labels[0].clone();
        let drilled = drill_down(&base(), &top.spec, &label);
        let rec2 = seedb.recommend(&drilled).unwrap();
        assert!(rec2.errors.is_empty());
        // The drilled dimension joins the filter attributes and is
        // excluded from the next round's view space.
        assert!(rec2
            .all
            .iter()
            .all(|v| v.spec.dimension != top.spec.dimension));
    }
}
