//! # seedb-core — deviation-based visualization recommendation
//!
//! A full reproduction of the SeeDB backend from *"SeeDB: Automatically
//! Generating Query Visualizations"* (Vartak, Madden, Parameswaran,
//! Polyzotis — VLDB 2014 demo). Given an analyst query `Q` selecting a
//! subset `D_Q` of a fact table, SeeDB:
//!
//! 1. enumerates every candidate view `(a, m, f)` — group by dimension
//!    `a`, aggregate measure `m` with function `f` ([`view`]);
//! 2. prunes unpromising views using metadata: low-variance dimensions,
//!    correlated-attribute clusters, rarely-accessed attributes
//!    ([`metadata`], [`pruning`]);
//! 3. rewrites the surviving target/comparison view queries into as few
//!    shared-scan DBMS queries as possible — combined target+comparison,
//!    combined aggregates, combined group-bys via bin packing under a
//!    memory budget — optionally over a sample and in parallel
//!    ([`querygen`], [`optimizer`], [`packing`]);
//! 4. normalizes each view's target and comparison results into
//!    probability distributions and scores the view by their distance
//!    ([`distribution`], [`distance`](mod@distance), [`processor`]);
//! 5. returns the top-k highest-utility views ([`engine`]).
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use memdb::{Database, Table, Schema, ColumnDef, DataType, Expr};
//! use seedb_core::{SeeDb, AnalystQuery};
//!
//! // A tiny sales table: Laserwave sales skew east, the rest west.
//! let schema = Schema::new(vec![
//!     ColumnDef::dimension("region", DataType::Str),
//!     ColumnDef::dimension("product", DataType::Str),
//!     ColumnDef::measure("amount", DataType::Float64),
//! ]).unwrap();
//! let mut sales = Table::new("sales", schema);
//! for i in 0..200 {
//!     let laser = i % 4 == 0;
//!     // Laserwave sells mostly east; other products mostly west.
//!     let east = if laser { i % 20 != 0 } else { i % 4 == 1 };
//!     sales.push_row(vec![
//!         if east { "east" } else { "west" }.into(),
//!         if laser { "Laserwave" } else { "Other" }.into(),
//!         (10.0 + (i % 7) as f64).into(),
//!     ]).unwrap();
//! }
//! let db = Arc::new(Database::new());
//! db.register(sales);
//!
//! let seedb = SeeDb::with_defaults(db);
//! let rec = seedb
//!     .recommend(&AnalystQuery::new("sales", Some(Expr::col("product").eq("Laserwave"))))
//!     .unwrap();
//! // The planted deviation surfaces at the top of the ranking.
//! assert!(rec.views[0].utility > 0.2);
//! assert!(rec.views.iter().any(|v| v.spec.dimension == "region"));
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod config;
pub mod distance;
pub mod distribution;
pub mod engine;
pub mod explain;
pub mod interact;
pub mod live;
pub mod metadata;
pub mod optimizer;
pub mod packing;
pub mod phased;
pub mod processor;
pub mod pruning;
pub mod querygen;
pub mod service;
pub mod view;

pub use config::{default_workers, ExecutionStrategy, SeeDbConfig, ServiceConfig, TelemetryConfig};
pub use distance::{distance, Metric};
pub use distribution::{AlignedPair, Distribution};
pub use engine::{PhaseTimings, Recommendation, SeeDb};
pub use explain::{ExplainOp, ExplainReport};
pub use interact::{drill_down, roll_up};
pub use live::{RecomputeReason, RefreshConfig, RefreshDecision, RefreshMode};
pub use metadata::{AccessTracker, Metadata, MetadataCollector};
pub use optimizer::{
    ExecutionPlan, Extract, GroupByCombining, OptimizerConfig, PlannedQuery, ValueSource,
};
pub use phased::{
    confidence_halfwidth, run_phased, run_phased_with_group_counts, EarlyPrune, PhasedConfig,
    PhasedOutcome,
};
pub use processor::{top_k, Processor, ViewResult};
pub use pruning::{prune, PruneOutcome, PruneReason, PrunedView, PruningConfig};
pub use querygen::{comparison_query, target_query, AnalystQuery, Side};
pub use service::{CacheStats, Service, Session};
pub use view::{enumerate_views, view_space_size, FunctionSet, ViewSpec};
