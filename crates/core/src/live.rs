//! Live-ingest refresh policy: when and how the serving layer's cached
//! partial-aggregate states follow appends.
//!
//! `memdb`'s segmented storage makes appends *pure*: version `v+1`
//! shares every sealed segment with `v` and adds one delta segment, so
//! a [`memdb::PartialAggState`] cached at `v` can be brought to `v'` by
//! executing the plan over only the delta rows and
//! [`merge`](memdb::PartialAggState::merge)-ing — byte-identical to a
//! cold recomputation at `v'` by the partitioned-execution contract
//! (associative aggregate states, partition-ordered merge). This module
//! decides when that incremental path applies:
//!
//! * the cached version must be in the table's **append lineage**
//!   ([`memdb::Table::append_delta_since`]) — a re-registered
//!   (replaced) table resets its lineage, so stale refreshes are
//!   structurally impossible;
//! * the delta must be small enough to be worth it
//!   ([`RefreshConfig::max_delta_fraction`]) — a huge delta approaches
//!   full-scan cost while paying merge overhead on top;
//! * sampled plans never reach this decision: the serving layer
//!   bypasses the cache for them entirely (samples do not compose
//!   across row ranges).

use memdb::Table;

/// When cached states are refreshed after appends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshMode {
    /// Refresh an append-descended stale entry when a probe finds it
    /// (pay the delta scan on the first request after an append).
    Lazy,
    /// Additionally refresh every affected entry as soon as
    /// [`crate::Service::append_rows`] publishes a new version, so the
    /// next probe is an exact hit.
    Eager,
    /// Never refresh incrementally; stale entries invalidate and
    /// recompute from scratch (the pre-live-ingest behavior).
    Off,
}

/// Policy knobs for incremental cache maintenance under live ingest.
#[derive(Debug, Clone, Copy)]
pub struct RefreshConfig {
    /// When refreshes happen (lazy on probe, eager on append, or off).
    pub mode: RefreshMode,
    /// Fall back to a full recompute when the delta exceeds this
    /// fraction of the *new* table's rows (in `[0, 1]`).
    pub max_delta_fraction: f64,
}

impl RefreshConfig {
    /// Recommended policy: lazy refresh, falling back to recompute when
    /// more than half the table is new.
    pub fn recommended() -> Self {
        RefreshConfig {
            mode: RefreshMode::Lazy,
            max_delta_fraction: 0.5,
        }
    }

    /// Builder: set the refresh mode.
    pub fn with_mode(mut self, mode: RefreshMode) -> Self {
        self.mode = mode;
        self
    }

    /// Builder: set the delta-size threshold.
    pub fn with_max_delta_fraction(mut self, fraction: f64) -> Self {
        self.max_delta_fraction = fraction;
        self
    }

    /// Decide how to bring a state cached at `cached_version` up to
    /// `table`'s current version.
    pub fn decide(&self, table: &Table, cached_version: u64) -> RefreshDecision {
        if self.mode == RefreshMode::Off {
            return RefreshDecision::Recompute(RecomputeReason::Disabled);
        }
        match table.append_delta_since(cached_version) {
            None => RefreshDecision::Recompute(RecomputeReason::NonAppendLineage),
            Some((lo, hi)) => {
                let delta = hi - lo;
                let fraction = delta as f64 / table.num_rows().max(1) as f64;
                if fraction > self.max_delta_fraction {
                    RefreshDecision::Recompute(RecomputeReason::DeltaTooLarge)
                } else {
                    RefreshDecision::Incremental { delta: (lo, hi) }
                }
            }
        }
    }
}

impl Default for RefreshConfig {
    fn default() -> Self {
        RefreshConfig::recommended()
    }
}

/// Outcome of a refresh decision for one cached entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshDecision {
    /// Execute the plan over the half-open delta row range of the new
    /// version and merge into the cached state.
    Incremental {
        /// Rows `[lo, hi)` appended since the cached version.
        delta: (usize, usize),
    },
    /// Drop the entry and recompute from scratch.
    Recompute(RecomputeReason),
}

/// Why an entry could not be refreshed incrementally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecomputeReason {
    /// The cached version is not an append ancestor of the current
    /// table (the name was re-registered/replaced, or the checkpoint
    /// aged out of the bounded lineage).
    NonAppendLineage,
    /// The delta exceeds [`RefreshConfig::max_delta_fraction`].
    DeltaTooLarge,
    /// Incremental refresh is switched off.
    Disabled,
}

#[cfg(test)]
mod tests {
    use super::*;
    use memdb::{ColumnDef, DataType, Database, Schema, Table, Value};

    fn seeded_db(rows: usize) -> Database {
        let schema = Schema::new(vec![
            ColumnDef::dimension("d", DataType::Str),
            ColumnDef::measure("m", DataType::Float64),
        ])
        .unwrap();
        let mut t = Table::new("t", schema);
        for i in 0..rows {
            t.push_row(vec![
                Value::from(format!("g{}", i % 3)),
                Value::Float(i as f64),
            ])
            .unwrap();
        }
        let db = Database::new();
        db.register(t);
        db
    }

    fn delta_rows(n: usize) -> Vec<Vec<Value>> {
        (0..n)
            .map(|i| vec![Value::from("g0"), Value::Float(i as f64)])
            .collect()
    }

    #[test]
    fn small_append_deltas_refresh_incrementally() {
        let db = seeded_db(100);
        let v1 = db.table("t").unwrap();
        db.append_rows("t", delta_rows(10)).unwrap();
        let now = db.table("t").unwrap();
        let cfg = RefreshConfig::recommended();
        assert_eq!(
            cfg.decide(&now, v1.version()),
            RefreshDecision::Incremental { delta: (100, 110) }
        );
        // The current version trivially has an empty delta.
        assert_eq!(
            cfg.decide(&now, now.version()),
            RefreshDecision::Incremental { delta: (110, 110) }
        );
    }

    #[test]
    fn oversized_deltas_and_replacements_fall_back() {
        let db = seeded_db(10);
        let v1 = db.table("t").unwrap();
        db.append_rows("t", delta_rows(90)).unwrap();
        let now = db.table("t").unwrap();
        // 90 of 100 rows are new: recompute beats merge.
        let cfg = RefreshConfig::recommended().with_max_delta_fraction(0.5);
        assert_eq!(
            cfg.decide(&now, v1.version()),
            RefreshDecision::Recompute(RecomputeReason::DeltaTooLarge)
        );
        // A permissive threshold accepts the same delta.
        let loose = cfg.with_max_delta_fraction(1.0);
        assert_eq!(
            loose.decide(&now, v1.version()),
            RefreshDecision::Incremental { delta: (10, 100) }
        );

        // Replacement breaks the lineage.
        let schema = Schema::new(vec![
            ColumnDef::dimension("d", DataType::Str),
            ColumnDef::measure("m", DataType::Float64),
        ])
        .unwrap();
        db.register(Table::new("t", schema));
        let replaced = db.table("t").unwrap();
        assert_eq!(
            cfg.decide(&replaced, now.version()),
            RefreshDecision::Recompute(RecomputeReason::NonAppendLineage)
        );
    }

    #[test]
    fn off_mode_always_recomputes() {
        let db = seeded_db(100);
        let v1 = db.table("t").unwrap();
        db.append_rows("t", delta_rows(1)).unwrap();
        let cfg = RefreshConfig::recommended().with_mode(RefreshMode::Off);
        assert_eq!(
            cfg.decide(&db.table("t").unwrap(), v1.version()),
            RefreshDecision::Recompute(RecomputeReason::Disabled)
        );
    }
}
