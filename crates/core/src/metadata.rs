//! The Metadata Collector (paper Fig. 4).
//!
//! "First, the Metadata Collector module queries metadata tables ... for
//! information such as table sizes, column types, data distribution, and
//! table access patterns." That information feeds view-space pruning:
//! per-column statistics drive variance pruning, the pairwise association
//! matrix drives correlated-attribute clustering, and the access tracker
//! drives access-frequency pruning.

use std::collections::HashMap;

use memdb::{cramers_v, DbResult, Table, TableStats};
use std::sync::RwLock;

/// Tracks which columns analyst queries touch, per table — the paper's
/// "table access patterns" metadata. SeeDB records every analyst query
/// it serves; pruning then drops rarely-accessed attributes.
#[derive(Debug, Default)]
pub struct AccessTracker {
    /// table -> column -> access count.
    counts: RwLock<HashMap<String, HashMap<String, u64>>>,
    /// table -> total queries recorded.
    queries: RwLock<HashMap<String, u64>>,
}

impl AccessTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        AccessTracker::default()
    }

    /// Record one query against `table` touching `columns`
    /// (duplicates within one query count once).
    pub fn record<I, S>(&self, table: &str, columns: I)
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut unique: Vec<String> = columns
            .into_iter()
            .map(|c| c.as_ref().to_string())
            .collect();
        unique.sort();
        unique.dedup();
        let mut counts = self.counts.write().expect("tracker lock poisoned");
        let per_table = counts.entry(table.to_string()).or_default();
        for c in unique {
            *per_table.entry(c).or_insert(0) += 1;
        }
        *self
            .queries
            .write()
            .expect("tracker lock poisoned")
            .entry(table.to_string())
            .or_insert(0) += 1;
    }

    /// Access count for one column.
    pub fn count(&self, table: &str, column: &str) -> u64 {
        self.counts
            .read()
            .expect("tracker lock poisoned")
            .get(table)
            .and_then(|m| m.get(column))
            .copied()
            .unwrap_or(0)
    }

    /// Total queries recorded against `table`.
    pub fn total_queries(&self, table: &str) -> u64 {
        self.queries
            .read()
            .expect("tracker lock poisoned")
            .get(table)
            .copied()
            .unwrap_or(0)
    }

    /// Snapshot of all column counts for `table`.
    pub fn snapshot(&self, table: &str) -> HashMap<String, u64> {
        self.counts
            .read()
            .expect("tracker lock poisoned")
            .get(table)
            .cloned()
            .unwrap_or_default()
    }
}

/// Everything the Query Generator needs to know about a table.
#[derive(Debug, Clone)]
pub struct Metadata {
    /// Table name.
    pub table: String,
    /// Row count and per-column statistics.
    pub stats: TableStats,
    /// Pairwise Cramér's V between dimension attributes,
    /// `(dim_i, dim_j, v)` with `i < j` in schema order. Empty when
    /// correlation collection was skipped.
    pub dim_correlations: Vec<(String, String, f64)>,
    /// Column access counts from the workload log (empty when no
    /// workload has been recorded).
    pub access_counts: HashMap<String, u64>,
    /// Number of workload queries behind `access_counts`.
    pub workload_queries: u64,
}

impl Metadata {
    /// Association between two dimensions (symmetric lookup), 0 if the
    /// pair was not computed.
    pub fn correlation(&self, a: &str, b: &str) -> f64 {
        self.dim_correlations
            .iter()
            .find(|(x, y, _)| (x == a && y == b) || (x == b && y == a))
            .map(|(_, _, v)| *v)
            .unwrap_or(0.0)
    }
}

/// Collects [`Metadata`] for tables, consulting a shared [`AccessTracker`].
#[derive(Debug, Default)]
pub struct MetadataCollector {
    tracker: AccessTracker,
}

impl MetadataCollector {
    /// A collector with a fresh access tracker.
    pub fn new() -> Self {
        MetadataCollector::default()
    }

    /// The shared access tracker (record analyst queries here).
    pub fn tracker(&self) -> &AccessTracker {
        &self.tracker
    }

    /// Collect full metadata (statistics + dimension correlations +
    /// access patterns) for `table`.
    ///
    /// Correlation collection is `O(|A|² · n)`; pass
    /// `compute_correlations = false` to skip it for very wide tables
    /// (correlation pruning then becomes a no-op).
    ///
    /// # Errors
    /// Propagates column-lookup failures (schema races are impossible for
    /// immutable tables, so in practice this is infallible).
    pub fn collect(&self, table: &Table, compute_correlations: bool) -> DbResult<Metadata> {
        let stats = TableStats::collect(table);
        let dims = table.schema().dimensions();
        let mut dim_correlations = Vec::new();
        if compute_correlations {
            for i in 0..dims.len() {
                for j in (i + 1)..dims.len() {
                    let v = cramers_v(table.column(dims[i])?, table.column(dims[j])?)?;
                    dim_correlations.push((dims[i].to_string(), dims[j].to_string(), v));
                }
            }
        }
        Ok(Metadata {
            table: table.name().to_string(),
            stats,
            dim_correlations,
            access_counts: self.tracker.snapshot(table.name()),
            workload_queries: self.tracker.total_queries(table.name()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memdb::{ColumnDef, DataType, Schema, Value};

    fn table() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::dimension("state", DataType::Str),
            ColumnDef::dimension("state_name", DataType::Str),
            ColumnDef::dimension("category", DataType::Str),
            ColumnDef::measure("amount", DataType::Float64),
        ])
        .unwrap();
        let mut t = Table::new("orders", schema);
        let states = [
            ("MA", "Massachusetts"),
            ("WA", "Washington"),
            ("NY", "New York"),
        ];
        for i in 0..90 {
            let (s, sn) = states[i % 3];
            let cat = ["tech", "office", "furniture"][(i / 2) % 3];
            t.push_row(vec![
                s.into(),
                sn.into(),
                cat.into(),
                Value::Float(i as f64),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn collects_stats_and_correlations() {
        let t = table();
        let mc = MetadataCollector::new();
        let md = mc.collect(&t, true).unwrap();
        assert_eq!(md.stats.row_count, 90);
        // 3 dims -> 3 pairs.
        assert_eq!(md.dim_correlations.len(), 3);
        // state and state_name are perfectly associated.
        assert!((md.correlation("state", "state_name") - 1.0).abs() < 1e-9);
        assert!((md.correlation("state_name", "state") - 1.0).abs() < 1e-9);
    }

    #[test]
    fn skipping_correlations() {
        let t = table();
        let mc = MetadataCollector::new();
        let md = mc.collect(&t, false).unwrap();
        assert!(md.dim_correlations.is_empty());
        assert_eq!(md.correlation("state", "state_name"), 0.0);
    }

    #[test]
    fn access_tracking_counts_unique_columns_per_query() {
        let tr = AccessTracker::new();
        tr.record("orders", ["state", "amount", "state"]);
        tr.record("orders", ["state"]);
        tr.record("other", ["x"]);
        assert_eq!(tr.count("orders", "state"), 2);
        assert_eq!(tr.count("orders", "amount"), 1);
        assert_eq!(tr.count("orders", "category"), 0);
        assert_eq!(tr.total_queries("orders"), 2);
        assert_eq!(tr.total_queries("other"), 1);
        assert_eq!(tr.total_queries("none"), 0);
    }

    #[test]
    fn collector_exposes_workload() {
        let t = table();
        let mc = MetadataCollector::new();
        mc.tracker().record("orders", ["state", "amount"]);
        let md = mc.collect(&t, false).unwrap();
        assert_eq!(md.workload_queries, 1);
        assert_eq!(md.access_counts.get("state"), Some(&1));
    }

    #[test]
    fn tracker_thread_safety() {
        let tr = std::sync::Arc::new(AccessTracker::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let tr = tr.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        tr.record("t", ["a", "b"]);
                    }
                });
            }
        });
        assert_eq!(tr.count("t", "a"), 400);
        assert_eq!(tr.total_queries("t"), 400);
    }
}
