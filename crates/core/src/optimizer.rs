//! The Optimizer (paper Fig. 4 / §3.3, "View Query Optimizations").
//!
//! "The Optimizer module determines the best way to combine view queries
//! intelligently so that the total execution time is minimized." The
//! rewrites, each independently toggleable for ablation:
//!
//! * **Combine target and comparison view query** — one scan computes both
//!   sides; the target aggregate carries the analyst's predicate as a
//!   per-aggregate filter. "This simple optimization halves the time
//!   required to compute the results for a single view."
//! * **Combine multiple aggregates** — view queries sharing a group-by
//!   attribute merge into one query. "Speed up linear in the number of
//!   aggregate attributes."
//! * **Combine multiple group-bys** — queries with different group-by
//!   attributes merge, either via native GROUPING SETS
//!   ([`GroupByCombining::GroupingSets`]) or via a single multi-attribute
//!   group-by whose result the backend rolls up
//!   ([`GroupByCombining::MultiGroupBy`]). Which attributes may share a
//!   query is a bin-packing problem over estimated group cardinalities
//!   under a working-memory budget ([`crate::packing`]).
//! * **Sampling** — run every view query against a sample
//!   ([`memdb::SampleSpec`]).
//! * **Parallel query execution** — issue the planned queries over a
//!   worker pool.

use std::collections::HashMap;

use memdb::{AggFunc, AggSpec, LogicalPlan, SampleSpec};

use crate::metadata::Metadata;
use crate::querygen::{direct_alias, view_agg, AnalystQuery, Side};
use crate::view::ViewSpec;

/// How (and whether) to combine queries with different group-by
/// attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupByCombining {
    /// One query (or target/comparison pair) per grouping attribute.
    Off,
    /// Merge attributes into shared-scan GROUPING SETS queries
    /// ("if the SQL GROUPING SETS functionality is available in the
    /// underlying DBMS, SEEDB can leverage that"). Memory cost of a
    /// combined query ≈ *sum* of the attributes' group cardinalities.
    GroupingSets,
    /// Merge attributes into a single multi-attribute group-by
    /// (`GROUP BY a1, a2, ...`) and post-process (roll up) at the
    /// backend. Memory cost ≈ *product* of cardinalities, so the packing
    /// is over log-weights.
    MultiGroupBy,
}

/// Optimizer configuration. [`OptimizerConfig::basic`] reproduces the
/// paper's Basic Framework; [`OptimizerConfig::all_optimizations`] turns
/// everything on.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Combine target and comparison into one query.
    pub combine_target_comparison: bool,
    /// Combine aggregates sharing a group-by attribute into one query.
    /// Implied by any group-by combining.
    pub combine_aggregates: bool,
    /// Group-by combining strategy.
    pub group_by_combining: GroupByCombining,
    /// Working-memory budget: maximum estimated groups resident per
    /// combined query (bin capacity for the packing problem).
    pub memory_budget_groups: u64,
    /// Optional sampling applied to every planned query.
    pub sample: Option<SampleSpec>,
    /// Suggested worker threads for callers executing the resulting
    /// [`ExecutionPlan`] directly via [`memdb::run_batch`]
    /// (1 = sequential). **Not consulted by the engine**: the worker
    /// count of [`crate::engine::SeeDb::recommend`] comes from
    /// [`crate::config::SeeDbConfig::execution`].
    pub parallelism: usize,
}

impl OptimizerConfig {
    /// The paper's Basic Framework: every view query runs independently,
    /// target and comparison separately, sequentially, unsampled.
    pub fn basic() -> Self {
        OptimizerConfig {
            combine_target_comparison: false,
            combine_aggregates: false,
            group_by_combining: GroupByCombining::Off,
            memory_budget_groups: u64::MAX,
            sample: None,
            parallelism: 1,
        }
    }

    /// All sharing optimizations on (no sampling — that trades accuracy
    /// and is opt-in), grouping-sets combining, parallel execution.
    pub fn all_optimizations() -> Self {
        OptimizerConfig {
            combine_target_comparison: true,
            combine_aggregates: true,
            group_by_combining: GroupByCombining::GroupingSets,
            memory_budget_groups: 100_000,
            sample: None,
            parallelism: num_workers(),
        }
    }

    /// Whether aggregate combining is effectively on (group-by combining
    /// implies it: a shared scan computes all its aggregates anyway).
    pub fn aggregates_combined(&self) -> bool {
        self.combine_aggregates || self.group_by_combining != GroupByCombining::Off
    }
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig::all_optimizations()
    }
}

/// A sensible default worker count.
pub fn num_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

/// How a view's aggregate value is recovered from a planned query's
/// result.
#[derive(Debug, Clone, PartialEq)]
pub enum ValueSource {
    /// Read this output column directly (result grouped exactly by the
    /// view's dimension).
    Column(String),
    /// The result is grouped by several attributes; marginalize rows over
    /// the view's dimension using these component columns.
    Rollup(RollupCols),
}

/// Component columns for backend roll-up. `AVG` marginalizes via
/// `SUM`/`COUNT`; other functions need only their own component.
#[derive(Debug, Clone, PartialEq)]
pub struct RollupCols {
    /// The view's aggregate function.
    pub func: AggFunc,
    /// Column holding per-fine-group `SUM(m)` (for `SUM`/`AVG`).
    pub sum: Option<String>,
    /// Column holding per-fine-group `COUNT` (for `COUNT`/`AVG`).
    pub count: Option<String>,
    /// Column holding per-fine-group `MIN(m)` (for `MIN`).
    pub min: Option<String>,
    /// Column holding per-fine-group `MAX(m)` (for `MAX`).
    pub max: Option<String>,
}

/// Instructions for recovering one side of one view from a planned
/// query's output.
#[derive(Debug, Clone, PartialEq)]
pub struct Extract {
    /// Index into the candidate view list.
    pub view_index: usize,
    /// Which result set of the query output (0 for single queries; the
    /// grouping-set index for [`memdb::SetsQuery`] outputs).
    pub result_index: usize,
    /// Target or comparison side.
    pub side: Side,
    /// Output column holding the view's dimension labels.
    pub dim_col: String,
    /// How to obtain the aggregate values.
    pub source: ValueSource,
}

/// One query the DBMS will run — a typed logical plan plus instructions
/// for recovering view distributions from its output.
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    /// The logical plan (lowered and executed by the DBMS layer).
    pub plan: LogicalPlan,
    /// How view distributions are recovered from its output.
    pub extracts: Vec<Extract>,
}

/// The optimizer's output: a set of queries covering every candidate
/// view's target and comparison distribution.
#[derive(Debug, Clone)]
pub struct ExecutionPlan {
    /// Queries to execute (order is free; they are independent).
    pub queries: Vec<PlannedQuery>,
    /// Number of candidate views covered.
    pub num_views: usize,
    /// Suggested worker threads for direct [`memdb::run_batch`] callers
    /// (the engine takes its worker count from
    /// [`crate::config::SeeDbConfig::execution`] instead).
    pub parallelism: usize,
}

impl ExecutionPlan {
    /// Number of DBMS queries in the plan.
    pub fn num_queries(&self) -> usize {
        self.queries.len()
    }
}

/// Build the execution plan for `views` under `config`.
///
/// Every view yields exactly one target and one comparison extract across
/// the plan. Cardinality estimates come from `metadata`; a dimension
/// missing from the stats is assumed to have cardinality 100.
pub fn plan(
    views: &[ViewSpec],
    analyst: &AnalystQuery,
    metadata: &Metadata,
    config: &OptimizerConfig,
) -> ExecutionPlan {
    // Group views by dimension, preserving first-seen dimension order.
    let mut dims: Vec<String> = Vec::new();
    let mut by_dim: HashMap<String, Vec<usize>> = HashMap::new();
    for (i, v) in views.iter().enumerate() {
        if !by_dim.contains_key(&v.dimension) {
            dims.push(v.dimension.clone());
        }
        by_dim.entry(v.dimension.clone()).or_default().push(i);
    }

    let cardinality = |d: &str| -> u64 {
        metadata
            .stats
            .column(d)
            .map(|s| s.distinct.max(1) as u64)
            .unwrap_or(100)
    };

    // Partition dimensions into query bins.
    let bins: Vec<Vec<String>> = match config.group_by_combining {
        GroupByCombining::Off => dims.iter().map(|d| vec![d.clone()]).collect(),
        GroupByCombining::GroupingSets => {
            let weights: Vec<u64> = dims.iter().map(|d| cardinality(d)).collect();
            crate::packing::pack(&weights, config.memory_budget_groups)
                .into_iter()
                .map(|bin| bin.into_iter().map(|i| dims[i].clone()).collect())
                .collect()
        }
        GroupByCombining::MultiGroupBy => {
            // Product ≤ budget ⇔ sum of logs ≤ log(budget). Scale logs to
            // integer milli-bits for the packer.
            const SCALE: f64 = 1000.0;
            let weights: Vec<u64> = dims
                .iter()
                .map(|d| ((cardinality(d) as f64).log2().max(0.0) * SCALE).ceil() as u64)
                .collect();
            let capacity = if config.memory_budget_groups == u64::MAX {
                u64::MAX
            } else {
                ((config.memory_budget_groups.max(1) as f64).log2() * SCALE).floor() as u64
            };
            crate::packing::pack(&weights, capacity)
                .into_iter()
                .map(|bin| bin.into_iter().map(|i| dims[i].clone()).collect())
                .collect()
        }
    };

    let mut queries: Vec<PlannedQuery> = Vec::new();
    for bin in bins {
        // Views in this bin.
        let view_indices: Vec<usize> = bin.iter().flat_map(|d| by_dim[d].iter().copied()).collect();

        // Aggregate-sharing units: all views at once, or one per view.
        let units: Vec<Vec<usize>> = if config.aggregates_combined() {
            vec![view_indices]
        } else {
            view_indices.into_iter().map(|i| vec![i]).collect()
        };

        for unit in units {
            if config.combine_target_comparison {
                queries.push(build_query(
                    &bin,
                    &unit,
                    views,
                    analyst,
                    &[Side::Target, Side::Comparison],
                    config,
                ));
            } else {
                queries.push(build_query(
                    &bin,
                    &unit,
                    views,
                    analyst,
                    &[Side::Target],
                    config,
                ));
                queries.push(build_query(
                    &bin,
                    &unit,
                    views,
                    analyst,
                    &[Side::Comparison],
                    config,
                ));
            }
        }
    }

    ExecutionPlan {
        queries,
        num_views: views.len(),
        parallelism: config.parallelism.max(1),
    }
}

/// Roll-up components a function needs.
fn components_of(func: AggFunc) -> &'static [AggFunc] {
    match func {
        AggFunc::Sum => &[AggFunc::Sum],
        AggFunc::Count => &[AggFunc::Count],
        AggFunc::Avg => &[AggFunc::Sum, AggFunc::Count],
        AggFunc::Min => &[AggFunc::Min],
        AggFunc::Max => &[AggFunc::Max],
    }
}

fn component_alias(side: Side, comp: AggFunc, measure: Option<&str>) -> String {
    match measure {
        Some(m) => format!("{}_r{}_{}", side.prefix(), comp.sql().to_lowercase(), m),
        None => format!("{}_rcount_star", side.prefix()),
    }
}

/// Build one planned query for `unit` (view indices) over the dimensions
/// in `bin`, computing the given `sides`.
fn build_query(
    bin: &[String],
    unit: &[usize],
    views: &[ViewSpec],
    analyst: &AnalystQuery,
    sides: &[Side],
    config: &OptimizerConfig,
) -> PlannedQuery {
    let multi = config.group_by_combining == GroupByCombining::MultiGroupBy && bin.len() > 1;
    // Standalone target queries put the analyst filter in WHERE; combined
    // (both-sides) queries carry it per-aggregate instead.
    let combined = sides.len() == 2;

    let mut aggs: Vec<AggSpec> = Vec::new();
    let mut have: HashMap<String, ()> = HashMap::new();
    let mut extracts: Vec<Extract> = Vec::new();

    for &vi in unit {
        let view = &views[vi];
        let result_index = if matches!(config.group_by_combining, GroupByCombining::GroupingSets) {
            bin.iter()
                .position(|d| *d == view.dimension)
                .expect("view's dimension is in its bin")
        } else {
            0
        };
        for &side in sides {
            let source = if multi {
                let mut cols = RollupCols {
                    func: view.func,
                    sum: None,
                    count: None,
                    min: None,
                    max: None,
                };
                for &comp in components_of(view.func) {
                    let alias = component_alias(side, comp, view.measure.as_deref());
                    if have.insert(alias.clone(), ()).is_none() {
                        let mut spec = match (&view.measure, comp) {
                            (Some(m), _) => AggSpec::new(comp, m),
                            (None, _) => AggSpec::count_star(),
                        };
                        spec = spec.with_alias(&alias);
                        if combined && side == Side::Target {
                            if let Some(f) = &analyst.filter {
                                spec = spec.with_filter(f.clone());
                            }
                        }
                        aggs.push(spec);
                    }
                    match comp {
                        AggFunc::Sum => cols.sum = Some(alias),
                        AggFunc::Count => cols.count = Some(alias),
                        AggFunc::Min => cols.min = Some(alias),
                        AggFunc::Max => cols.max = Some(alias),
                        AggFunc::Avg => unreachable!("avg is not a component"),
                    }
                }
                ValueSource::Rollup(cols)
            } else {
                let alias = direct_alias(side, view);
                if have.insert(alias.clone(), ()).is_none() {
                    aggs.push(view_agg(view, side, analyst, combined));
                }
                ValueSource::Column(alias)
            };
            extracts.push(Extract {
                view_index: vi,
                result_index,
                side,
                dim_col: view.dimension.clone(),
                source,
            });
        }
    }

    // Scan-level filter for standalone target queries.
    let filter = if !combined && sides == [Side::Target] {
        analyst.filter.clone()
    } else {
        None
    };

    let mut source = LogicalPlan::scan(&analyst.table);
    if let Some(f) = filter {
        source = source.filter(f);
    }
    let plan = match config.group_by_combining {
        // Single-set grouping sets lower to the plain single-grouping
        // operator in the plan layer, so the general shape is emitted
        // unconditionally here.
        GroupByCombining::GroupingSets => {
            source.grouping_sets(bin.iter().map(|d| vec![d.clone()]).collect(), aggs)
        }
        GroupByCombining::MultiGroupBy | GroupByCombining::Off => {
            source.aggregate(bin.to_vec(), aggs)
        }
    }
    .sampled(config.sample);

    PlannedQuery { plan, extracts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metadata::MetadataCollector;
    use crate::view::{enumerate_views, FunctionSet};
    use memdb::{ColumnDef, DataType, Expr, Schema, Table, Value};

    fn table(dims: usize, cards: &[usize]) -> Table {
        let mut cols = Vec::new();
        for i in 0..dims {
            cols.push(ColumnDef::dimension(&format!("d{i}"), DataType::Str));
        }
        cols.push(ColumnDef::measure("m0", DataType::Float64));
        cols.push(ColumnDef::measure("m1", DataType::Float64));
        let mut t = Table::new("t", Schema::new(cols).unwrap());
        for r in 0..300 {
            let mut row: Vec<Value> = (0..dims)
                .map(|i| Value::from(format!("v{}", r % cards[i])))
                .collect();
            row.push(Value::Float(r as f64));
            row.push(Value::Float((r % 10) as f64));
            t.push_row(row).unwrap();
        }
        t
    }

    fn setup(dims: usize, cards: &[usize]) -> (Table, Metadata, AnalystQuery, Vec<ViewSpec>) {
        let t = table(dims, cards);
        let md = MetadataCollector::new().collect(&t, false).unwrap();
        let analyst = AnalystQuery::new("t", Some(Expr::col("d0").eq("v0")));
        let views = enumerate_views(t.schema(), &FunctionSet::sum_only());
        (t, md, analyst, views)
    }

    fn count_extract_sides(plan: &ExecutionPlan) -> (usize, usize) {
        let mut t = 0;
        let mut c = 0;
        for q in &plan.queries {
            for e in &q.extracts {
                match e.side {
                    Side::Target => t += 1,
                    Side::Comparison => c += 1,
                }
            }
        }
        (t, c)
    }

    #[test]
    fn basic_plan_is_two_queries_per_view() {
        let (_t, md, analyst, views) = setup(3, &[5, 7, 9]);
        let plan = plan(&views, &analyst, &md, &OptimizerConfig::basic());
        // 3 dims × 2 measures = 6 views × 2 sides = 12 queries.
        assert_eq!(plan.num_queries(), 12);
        let (t, c) = count_extract_sides(&plan);
        assert_eq!((t, c), (6, 6));
    }

    #[test]
    fn combine_target_comparison_halves_queries() {
        let (_t, md, analyst, views) = setup(3, &[5, 7, 9]);
        let mut cfg = OptimizerConfig::basic();
        cfg.combine_target_comparison = true;
        let p = plan(&views, &analyst, &md, &cfg);
        assert_eq!(p.num_queries(), 6);
        // Every query covers both sides of one view.
        for q in &p.queries {
            assert_eq!(q.extracts.len(), 2);
        }
    }

    #[test]
    fn combine_aggregates_merges_same_dimension() {
        let (_t, md, analyst, views) = setup(3, &[5, 7, 9]);
        let mut cfg = OptimizerConfig::basic();
        cfg.combine_aggregates = true;
        let p = plan(&views, &analyst, &md, &cfg);
        // 3 dims × 2 sides = 6 queries (2 measures share each).
        assert_eq!(p.num_queries(), 6);
    }

    #[test]
    fn grouping_sets_respects_memory_budget() {
        let (_t, md, analyst, views) = setup(3, &[5, 7, 9]);
        let mut cfg = OptimizerConfig::basic();
        cfg.combine_target_comparison = true;
        cfg.group_by_combining = GroupByCombining::GroupingSets;
        cfg.memory_budget_groups = 12; // 5+7 fit, 9 alone
        let p = plan(&views, &analyst, &md, &cfg);
        assert_eq!(p.num_queries(), 2);
        // With a huge budget all 3 dims share one query.
        cfg.memory_budget_groups = u64::MAX;
        let p = plan(&views, &analyst, &md, &cfg);
        assert_eq!(p.num_queries(), 1);
        match p.queries[0].plan.lower().unwrap() {
            memdb::PhysicalPlan::GroupingSets { query, .. } => assert_eq!(query.sets.len(), 3),
            memdb::PhysicalPlan::Aggregate { .. } => panic!("expected grouping-sets plan"),
        }
    }

    #[test]
    fn multigroupby_produces_rollup_extracts() {
        let (_t, md, analyst, views) = setup(3, &[5, 7, 9]);
        let mut cfg = OptimizerConfig::basic();
        cfg.combine_target_comparison = true;
        cfg.group_by_combining = GroupByCombining::MultiGroupBy;
        cfg.memory_budget_groups = 1_000_000; // 5*7*9 = 315 fits
        let p = plan(&views, &analyst, &md, &cfg);
        assert_eq!(p.num_queries(), 1);
        match p.queries[0].plan.lower().unwrap() {
            memdb::PhysicalPlan::Aggregate { query, .. } => assert_eq!(query.group_by.len(), 3),
            _ => panic!("expected single-grouping plan"),
        }
        assert!(p.queries[0]
            .extracts
            .iter()
            .all(|e| matches!(e.source, ValueSource::Rollup(_))));
    }

    #[test]
    fn multigroupby_budget_splits_by_product() {
        let (_t, md, analyst, views) = setup(3, &[5, 7, 9]);
        let mut cfg = OptimizerConfig::basic();
        cfg.combine_target_comparison = true;
        cfg.group_by_combining = GroupByCombining::MultiGroupBy;
        cfg.memory_budget_groups = 40; // 5*7=35 <= 40, 9 alone
        let p = plan(&views, &analyst, &md, &cfg);
        assert_eq!(p.num_queries(), 2);
    }

    #[test]
    fn every_view_has_both_sides_exactly_once() {
        let (_t, md, analyst, views) = setup(4, &[3, 4, 5, 6]);
        for cfg in [
            OptimizerConfig::basic(),
            {
                let mut c = OptimizerConfig::basic();
                c.combine_target_comparison = true;
                c
            },
            OptimizerConfig::all_optimizations(),
            {
                let mut c = OptimizerConfig::all_optimizations();
                c.group_by_combining = GroupByCombining::MultiGroupBy;
                c.memory_budget_groups = 50;
                c
            },
        ] {
            let p = plan(&views, &analyst, &md, &cfg);
            let mut seen: HashMap<(usize, Side), usize> = HashMap::new();
            for q in &p.queries {
                for e in &q.extracts {
                    *seen.entry((e.view_index, e.side)).or_insert(0) += 1;
                }
            }
            for vi in 0..views.len() {
                assert_eq!(seen.get(&(vi, Side::Target)), Some(&1), "{cfg:?}");
                assert_eq!(seen.get(&(vi, Side::Comparison)), Some(&1));
            }
        }
    }

    #[test]
    fn avg_views_need_sum_and_count_components() {
        let (t, md, analyst, _) = setup(2, &[3, 4]);
        let views = enumerate_views(t.schema(), &FunctionSet::custom(vec![AggFunc::Avg], false));
        let mut cfg = OptimizerConfig::basic();
        cfg.combine_target_comparison = true;
        cfg.group_by_combining = GroupByCombining::MultiGroupBy;
        let p = plan(&views, &analyst, &md, &cfg);
        let q = match p.queries[0].plan.lower().unwrap() {
            memdb::PhysicalPlan::Aggregate { query, .. } => query,
            _ => panic!(),
        };
        let aliases: Vec<&str> = q
            .aggregates
            .iter()
            .filter_map(|a| a.alias.as_deref())
            .collect();
        assert!(aliases.contains(&"t_rsum_m0"));
        assert!(aliases.contains(&"t_rcount_m0"));
        assert!(aliases.contains(&"c_rsum_m0"));
    }

    #[test]
    fn sampling_attaches_to_every_query() {
        let (_t, md, analyst, views) = setup(2, &[3, 4]);
        let mut cfg = OptimizerConfig::basic();
        cfg.sample = Some(SampleSpec::Bernoulli {
            fraction: 0.1,
            seed: 7,
        });
        let p = plan(&views, &analyst, &md, &cfg);
        for q in &p.queries {
            match q.plan.lower().unwrap() {
                memdb::PhysicalPlan::Aggregate { query, .. } => assert!(query.sample.is_some()),
                memdb::PhysicalPlan::GroupingSets { query, .. } => assert!(query.sample.is_some()),
            }
        }
    }

    #[test]
    fn standalone_target_queries_use_where_clause() {
        let (_t, md, analyst, views) = setup(1, &[3]);
        let p = plan(&views, &analyst, &md, &OptimizerConfig::basic());
        let target_queries: Vec<memdb::Query> = p
            .queries
            .iter()
            .filter(|pq| pq.extracts[0].side == Side::Target)
            .map(|pq| match pq.plan.lower().unwrap() {
                memdb::PhysicalPlan::Aggregate { query, .. } => query,
                _ => panic!(),
            })
            .collect();
        assert!(!target_queries.is_empty());
        for q in target_queries {
            assert!(q.filter.is_some(), "standalone target carries WHERE");
            assert!(q.aggregates.iter().all(|a| a.filter.is_none()));
        }
    }

    #[test]
    fn combined_queries_use_per_aggregate_filters() {
        let (_t, md, analyst, views) = setup(1, &[3]);
        let mut cfg = OptimizerConfig::basic();
        cfg.combine_target_comparison = true;
        let p = plan(&views, &analyst, &md, &cfg);
        for pq in &p.queries {
            let q = match pq.plan.lower().unwrap() {
                memdb::PhysicalPlan::Aggregate { query, .. } => query,
                _ => panic!(),
            };
            assert!(q.filter.is_none());
            let t_agg = q
                .aggregates
                .iter()
                .find(|a| a.alias.as_deref().is_some_and(|al| al.starts_with("t_")))
                .unwrap();
            assert!(t_agg.filter.is_some());
        }
    }
}
