//! Bin packing for view-query combination.
//!
//! "Given a set of candidate views, we model the problem of finding the
//! optimal combinations of views as a variant of bin-packing and apply
//! ILP techniques to obtain the best solution." (paper §3.3)
//!
//! Items are grouping attributes, weights are their (estimated) group
//! cardinalities, and the bin capacity is the working-memory budget for
//! one combined query. Minimizing the number of bins minimizes the number
//! of table scans. We solve small instances *exactly* with a
//! branch-and-bound search (equivalent to the ILP optimum) and fall back
//! to first-fit-decreasing — whose solution is provably within
//! `11/9·OPT + 1` bins — for large ones.

/// Maximum item count for which the exact branch-and-bound runs; larger
/// instances use first-fit-decreasing only.
pub const EXACT_LIMIT: usize = 16;

/// Pack items with `weights` into the fewest bins of `capacity`.
///
/// Returns bins as lists of item indices. Items heavier than the capacity
/// get singleton bins (they must still execute — as a standalone query).
/// A `capacity` of 0 puts every item in its own bin.
pub fn pack(weights: &[u64], capacity: u64) -> Vec<Vec<usize>> {
    if weights.is_empty() {
        return Vec::new();
    }
    if capacity == 0 {
        return (0..weights.len()).map(|i| vec![i]).collect();
    }
    // Oversized items are forced into singleton bins and excluded from
    // the packing problem proper.
    let mut oversized: Vec<usize> = Vec::new();
    let mut normal: Vec<usize> = Vec::new();
    for (i, &w) in weights.iter().enumerate() {
        if w > capacity {
            oversized.push(i);
        } else {
            normal.push(i);
        }
    }
    let mut bins: Vec<Vec<usize>> = oversized.into_iter().map(|i| vec![i]).collect();

    if normal.is_empty() {
        return bins;
    }
    let sub_weights: Vec<u64> = normal.iter().map(|&i| weights[i]).collect();
    let packed = if normal.len() <= EXACT_LIMIT {
        pack_exact(&sub_weights, capacity)
    } else {
        pack_ffd(&sub_weights, capacity)
    };
    for bin in packed {
        bins.push(bin.into_iter().map(|j| normal[j]).collect());
    }
    bins
}

/// First-fit-decreasing heuristic. All weights must be `<= capacity`.
pub fn pack_ffd(weights: &[u64], capacity: u64) -> Vec<Vec<usize>> {
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| weights[b].cmp(&weights[a]).then(a.cmp(&b)));
    let mut bins: Vec<(u64, Vec<usize>)> = Vec::new();
    for i in order {
        let w = weights[i];
        match bins.iter_mut().find(|(load, _)| *load + w <= capacity) {
            Some((load, items)) => {
                *load += w;
                items.push(i);
            }
            None => bins.push((w, vec![i])),
        }
    }
    bins.into_iter()
        .map(|(_, mut items)| {
            items.sort_unstable();
            items
        })
        .collect()
}

/// Exact minimum-bin packing via depth-first branch-and-bound.
/// All weights must be `<= capacity`. Exponential worst case — callers
/// gate on [`EXACT_LIMIT`].
pub fn pack_exact(weights: &[u64], capacity: u64) -> Vec<Vec<usize>> {
    let n = weights.len();
    if n == 0 {
        return Vec::new();
    }
    // Start from the FFD solution as the incumbent upper bound.
    let mut best = pack_ffd(weights, capacity);
    let total: u64 = weights.iter().sum();
    let lower_bound = total.div_ceil(capacity).max(1) as usize;
    if best.len() == lower_bound {
        return best; // FFD already optimal
    }

    // Sort indices by decreasing weight for stronger pruning.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| weights[b].cmp(&weights[a]).then(a.cmp(&b)));

    struct Search<'a> {
        weights: &'a [u64],
        order: &'a [usize],
        capacity: u64,
        best_len: usize,
        best: Vec<Vec<usize>>,
        loads: Vec<u64>,
        assignment: Vec<usize>, // position-in-order -> bin
        nodes: u64,
    }

    impl Search<'_> {
        fn dfs(&mut self, pos: usize) {
            const NODE_BUDGET: u64 = 2_000_000;
            self.nodes += 1;
            if self.nodes > NODE_BUDGET {
                return; // keep the incumbent (FFD-quality or better)
            }
            if self.loads.len() >= self.best_len {
                return; // cannot beat the incumbent
            }
            if pos == self.order.len() {
                self.best_len = self.loads.len();
                let mut bins: Vec<Vec<usize>> = vec![Vec::new(); self.loads.len()];
                for (p, &b) in self.assignment.iter().enumerate() {
                    bins[b].push(self.order[p]);
                }
                for b in &mut bins {
                    b.sort_unstable();
                }
                self.best = bins;
                return;
            }
            let w = self.weights[self.order[pos]];
            // Try existing bins; skip symmetric equal-load bins.
            let mut tried: Vec<u64> = Vec::new();
            for b in 0..self.loads.len() {
                let load = self.loads[b];
                if load + w > self.capacity || tried.contains(&load) {
                    continue;
                }
                tried.push(load);
                self.loads[b] += w;
                self.assignment[pos] = b;
                self.dfs(pos + 1);
                self.loads[b] -= w;
            }
            // Open a new bin (only if that could still beat the incumbent).
            if self.loads.len() + 1 < self.best_len {
                self.loads.push(w);
                self.assignment[pos] = self.loads.len() - 1;
                self.dfs(pos + 1);
                self.loads.pop();
            }
        }
    }

    let mut search = Search {
        weights,
        order: &order,
        capacity,
        best_len: best.len(),
        best: Vec::new(),
        loads: Vec::new(),
        assignment: vec![0; n],
        nodes: 0,
    };
    search.dfs(0);
    if !search.best.is_empty() {
        best = search.best;
    }
    best
}

/// Validate that `bins` is a partition of `0..n` respecting `capacity`
/// (oversized singletons allowed). Used by tests and debug assertions.
pub fn is_valid_packing(bins: &[Vec<usize>], weights: &[u64], capacity: u64) -> bool {
    let mut seen = vec![false; weights.len()];
    for bin in bins {
        if bin.is_empty() {
            return false;
        }
        let load: u64 = bin.iter().map(|&i| weights[i]).sum();
        if load > capacity && bin.len() > 1 {
            return false;
        }
        for &i in bin {
            if i >= weights.len() || seen[i] {
                return false;
            }
            seen[i] = true;
        }
    }
    seen.into_iter().all(|s| s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input() {
        assert!(pack(&[], 10).is_empty());
    }

    #[test]
    fn everything_fits_in_one_bin() {
        let bins = pack(&[1, 2, 3], 10);
        assert_eq!(bins.len(), 1);
        assert!(is_valid_packing(&bins, &[1, 2, 3], 10));
    }

    #[test]
    fn zero_capacity_gives_singletons() {
        let bins = pack(&[5, 5, 5], 0);
        assert_eq!(bins.len(), 3);
    }

    #[test]
    fn oversized_items_get_singleton_bins() {
        let weights = [100, 2, 3];
        let bins = pack(&weights, 10);
        assert!(is_valid_packing(&bins, &weights, 10));
        assert_eq!(bins.len(), 2); // [100] alone, [2,3] together
        assert!(bins.contains(&vec![0]));
    }

    #[test]
    fn exact_beats_greedy_on_known_instance() {
        // FFD packs [6,5,4,3,2] cap 10 as [6,4] [5,3,2] = 2 bins — already
        // optimal. A harder case: [7,6,5,4,3,2,2,1] cap 10:
        // FFD: [7,3] [6,4] [5,2,2,1] = 3 bins; optimal is 3 too
        // (sum 30 / 10). Construct a case where FFD is suboptimal:
        // weights [4,4,4,3,3,3,3] cap 10 -> sum 24, LB 3.
        // FFD: [4,4] [4,3,3] [3,3] = 3 bins (fine). Classic FFD-failure:
        // [6,5,5,4,4,3,3] cap 12 -> FFD: [6,5] [5,4,3] [4,3] = 3;
        // optimum 3 (sum 30/12=2.5 -> 3). Use the standard example:
        // [3,3,2,2,2] cap 6: FFD [3,3] [2,2,2] = 2 (optimal).
        // Known FFD-suboptimal: [5,4,4,3,2,2] cap 10:
        //   FFD: [5,4] -> 9, [4,3,2] -> 9, [2] => 3 bins
        //   OPT: [5,3,2] [4,4,2] => 2 bins.
        let weights = [5, 4, 4, 3, 2, 2];
        let ffd = pack_ffd(&weights, 10);
        let exact = pack_exact(&weights, 10);
        assert!(is_valid_packing(&ffd, &weights, 10));
        assert!(is_valid_packing(&exact, &weights, 10));
        assert_eq!(ffd.len(), 3);
        assert_eq!(exact.len(), 2);
    }

    #[test]
    fn pack_uses_exact_for_small_instances() {
        let weights = [5, 4, 4, 3, 2, 2];
        assert_eq!(pack(&weights, 10).len(), 2);
    }

    #[test]
    fn exact_matches_lower_bound_when_tight() {
        let weights = [5, 5, 5, 5];
        let bins = pack_exact(&weights, 10);
        assert_eq!(bins.len(), 2);
    }

    #[test]
    fn ffd_on_large_instance_is_valid() {
        let weights: Vec<u64> = (0..200).map(|i| (i % 17) + 1).collect();
        let bins = pack(&weights, 20);
        assert!(is_valid_packing(&bins, &weights, 20));
        let lb = weights.iter().sum::<u64>().div_ceil(20) as usize;
        assert!(bins.len() >= lb);
        assert!(bins.len() <= lb * 2 + 1);
    }

    #[test]
    fn singleton_weights_equal_capacity() {
        let weights = [10, 10, 10];
        let bins = pack(&weights, 10);
        assert_eq!(bins.len(), 3);
        assert!(is_valid_packing(&bins, &weights, 10));
    }

    #[test]
    fn valid_packing_rejects_bad_partitions() {
        // Missing item.
        assert!(!is_valid_packing(&[vec![0]], &[1, 2], 10));
        // Duplicate item.
        assert!(!is_valid_packing(&[vec![0], vec![0, 1]], &[1, 2], 10));
        // Over capacity with multiple items.
        assert!(!is_valid_packing(&[vec![0, 1]], &[6, 6], 10));
        // Empty bin.
        assert!(!is_valid_packing(&[vec![], vec![0, 1]], &[1, 2], 10));
    }
}
