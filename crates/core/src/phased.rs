//! **Extension**: phased execution with confidence-interval pruning,
//! optionally partition-parallel.
//!
//! The demo paper's challenge (d) reads: "Since analysis must happen in
//! real-time, we must trade-off accuracy of visualizations or estimation
//! of 'interestingness' for reduced latency." Beyond sampling (§3.3),
//! the companion vision paper and the authors' follow-up work realize
//! this as *phase-wise execution*: partition the table into `P` slices,
//! update every surviving view's running utility estimate after each
//! slice, and discard views whose utility confidence interval falls
//! entirely below the current top-k's — so hopeless views stop consuming
//! work early, while surviving views end with *exact* utilities over the
//! full table.
//!
//! The confidence interval is Hoeffding-style: after seeing `n` target
//! rows, the deviation of an empirical distribution (and hence of any of
//! our Lipschitz-in-TV metrics) is bounded with probability `1 − δ` by
//! `ε(n) = sqrt((K + ln(2/δ)) / (2n))` where `K` is the number of
//! groups the view can take **over the full table** (its dimension's
//! distinct count from column statistics — using only the groups seen
//! so far would under-widen early-phase intervals and prune views whose
//! groups arrive late). This is a practical bound, not a per-metric
//! minimax result — see DESIGN.md.
//!
//! # Parallelism × early termination
//!
//! Each phase executes one shared grouping-sets plan over its row
//! slice. With [`PhasedConfig::workers`] > 1 the slice itself is split
//! into contiguous partitions executed on `std::thread::scope` workers
//! via [`memdb::run_partitioned_partial`], and the per-partition
//! [`memdb::PartialAggState`]s merge in deterministic partition order.
//! The per-view accumulators below then fold the *unfinalized*
//! [`memdb::AggState`]s straight out of the partial state — the same
//! merge machinery the partitioned executor uses — so worker count
//! never changes a single bit of the outcome: utilities, pruning
//! decisions, and phase counts are identical for any `workers`.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use memdb::{
    run_partitioned_partial, AggFunc, AggSpec, AggState, ColumnStats, DbError, DbResult,
    LogicalPlan, Table,
};

use crate::distance::Metric;
use crate::distribution::{AlignedPair, Distribution};
use crate::processor::ViewResult;
use crate::querygen::AnalystQuery;
use crate::view::ViewSpec;

/// Configuration for phased execution.
#[derive(Debug, Clone)]
pub struct PhasedConfig {
    /// Number of table slices to process (≥ 1).
    pub phases: usize,
    /// Views to return. `0` disables pruning entirely (nothing can be
    /// in a top-0, so no view is ever hopeless).
    pub k: usize,
    /// Confidence parameter δ: pruning is wrong for a view with
    /// probability at most δ (per view, per phase, under the bound's
    /// assumptions).
    pub delta: f64,
    /// Never prune before this many phases have completed.
    pub min_phases: usize,
    /// Distance metric.
    pub metric: Metric,
    /// Row-partition workers per phase slice (≥ 1). Results are
    /// byte-identical for every value; see the module docs.
    pub workers: usize,
}

impl Default for PhasedConfig {
    fn default() -> Self {
        PhasedConfig {
            phases: 10,
            k: 5,
            delta: 0.05,
            min_phases: 2,
            metric: Metric::EarthMovers,
            workers: 1,
        }
    }
}

/// A view eliminated before the final phase.
#[derive(Debug, Clone)]
pub struct EarlyPrune {
    /// The view.
    pub spec: ViewSpec,
    /// Phase (1-based) after which it was discarded.
    pub at_phase: usize,
    /// Its utility estimate at that point.
    pub estimate: f64,
}

/// Outcome of a phased run.
#[derive(Debug)]
pub struct PhasedOutcome {
    /// Top-k views by (exact, full-table) utility among survivors.
    pub views: Vec<ViewResult>,
    /// All surviving views, scored exactly.
    pub survivors: Vec<ViewResult>,
    /// Views discarded early, with the phase and estimate.
    pub pruned: Vec<EarlyPrune>,
    /// Surviving view count after each phase (index 0 = after phase 1),
    /// recorded *after* that phase's pruning step — entry `p` already
    /// excludes views discarded at `at_phase == p + 1`.
    pub survivors_per_phase: Vec<usize>,
    /// Σ over phases of (views still evaluated that phase) — the work
    /// measure that early termination reduces. Without pruning this is
    /// `phases × num_views`.
    pub view_phases: u64,
    /// Shared-scan plans executed (one per non-empty phase).
    pub plans_executed: usize,
    /// Wall time.
    pub elapsed: Duration,
}

impl PhasedOutcome {
    /// Fraction of view-phase work saved vs. no pruning.
    pub fn work_saved(&self, num_views: usize, phases: usize) -> f64 {
        let full = (num_views * phases) as f64;
        if full == 0.0 {
            0.0
        } else {
            1.0 - self.view_phases as f64 / full
        }
    }
}

/// Per-(view, side) accumulator: one mergeable [`AggState`] per group
/// label, folded phase-by-phase from the partial aggregate states the
/// partitioned executor produces. This *is* the executor's merge
/// machinery — `AggState::merge` is associative and exact, so the
/// fold order (phases, partitions, workers) never shows in the result.
#[derive(Debug, Default, Clone)]
struct SideAcc {
    groups: HashMap<String, AggState>,
}

impl SideAcc {
    fn absorb(&mut self, label: &str, state: &AggState) {
        match self.groups.get_mut(label) {
            Some(acc) => acc.merge(state),
            None => {
                let mut acc = AggState::EMPTY;
                acc.merge(state);
                self.groups.insert(label.to_string(), acc);
            }
        }
    }

    fn distribution(&self, func: AggFunc) -> Distribution {
        let pairs = self
            .groups
            .iter()
            .map(|(label, state)| (label.clone(), state.finalize(func).as_f64()))
            .collect();
        Distribution::from_pairs(pairs)
    }

    fn total_count(&self) -> f64 {
        self.groups.values().map(|s| s.count() as f64).sum()
    }
}

/// Hoeffding-style half-width of the utility confidence interval after
/// observing `n` rows on the weaker (target) side of a `k_groups`-group
/// view.
pub fn confidence_halfwidth(n: f64, k_groups: usize, delta: f64) -> f64 {
    if n <= 0.0 {
        return f64::INFINITY;
    }
    ((k_groups as f64 + (2.0 / delta).ln()) / (2.0 * n)).sqrt()
}

/// Run phased execution for `views` over the analyst's table.
///
/// Semantics: the table is split into `config.phases` contiguous slices;
/// every view still alive is updated from each slice via one shared
/// grouping-sets plan per slice (a row-sliced [`LogicalPlan`] lowered
/// onto the same shared-scan operator the optimizer's rewrites use,
/// executed across [`PhasedConfig::workers`] row partitions). After
/// each slice (past `min_phases`), views whose utility upper bound
/// falls below the k-th best lower bound are discarded. Survivors end
/// with exact full-table utilities — identical to what
/// [`crate::engine::SeeDb::recommend`] computes.
///
/// # Errors
/// Unknown columns or type errors from the underlying scans.
pub fn run_phased(
    table: &Arc<Table>,
    analyst: &AnalystQuery,
    views: &[ViewSpec],
    config: &PhasedConfig,
) -> DbResult<PhasedOutcome> {
    // Full-table group count per dimension, for the confidence bound's
    // `K`. Using the groups *seen so far* instead would shrink the
    // early-phase interval and over-eagerly prune views whose groups
    // (and deviation) only appear in later slices. The counts are only
    // consulted by the pruning block, so when pruning can never fire
    // (`k == 0`, or no phase satisfies `min_phases <= p < phases`) the
    // stats pass is skipped entirely. Callers that already hold column
    // statistics (the engine's Phase-1 metadata) should use
    // [`run_phased_with_group_counts`] instead of paying this rescan.
    let pruning_possible = config.k > 0 && config.min_phases < config.phases.max(1);
    let mut dim_group_counts: HashMap<String, usize> = HashMap::new();
    if pruning_possible {
        for v in views {
            if !dim_group_counts.contains_key(&v.dimension) {
                let stats = ColumnStats::collect(&v.dimension, table.column(&v.dimension)?);
                dim_group_counts.insert(v.dimension.clone(), stats.group_count());
            }
        }
    }
    run_phased_with_group_counts(table, analyst, views, config, &dim_group_counts)
}

/// [`run_phased`] with precomputed full-table group counts per
/// dimension (`distinct + 1` if the column has nulls) — the engine
/// passes counts derived from its Phase-1 [`crate::metadata::Metadata`]
/// so the table is not rescanned. Dimensions missing from the map fall
/// back to the groups seen so far (never narrower than observed).
///
/// # Errors
/// Unknown columns or type errors from the underlying scans.
pub fn run_phased_with_group_counts(
    table: &Arc<Table>,
    analyst: &AnalystQuery,
    views: &[ViewSpec],
    config: &PhasedConfig,
    dim_group_counts: &HashMap<String, usize>,
) -> DbResult<PhasedOutcome> {
    let start = Instant::now();
    let phases = config.phases.max(1);
    let workers = config.workers.max(1);
    let n_rows = table.num_rows();
    if analyst.table != table.name() {
        return Err(DbError::Internal(format!(
            "analyst query targets {} but table is {}",
            analyst.table,
            table.name()
        )));
    }

    // Alive set + accumulators.
    let mut alive: Vec<bool> = vec![true; views.len()];
    let mut target_acc: Vec<SideAcc> = vec![SideAcc::default(); views.len()];
    let mut comp_acc: Vec<SideAcc> = vec![SideAcc::default(); views.len()];
    let mut pruned: Vec<EarlyPrune> = Vec::new();
    let mut survivors_per_phase = Vec::with_capacity(phases);
    let mut view_phases: u64 = 0;
    let mut plans_executed = 0usize;

    for phase in 0..phases {
        let lo = n_rows * phase / phases;
        let hi = n_rows * (phase + 1) / phases;
        if lo == hi {
            survivors_per_phase.push(alive.iter().filter(|a| **a).count());
            continue;
        }

        // Group alive views by dimension; plan one shared scan.
        let mut dims: Vec<&str> = Vec::new();
        for (i, v) in views.iter().enumerate() {
            if alive[i] && !dims.contains(&v.dimension.as_str()) {
                dims.push(&v.dimension);
            }
        }
        if dims.is_empty() {
            break;
        }
        let sets: Vec<Vec<String>> = dims.iter().map(|d| vec![d.to_string()]).collect();

        // Component aggregates: one per (measure, side) needed by an
        // alive view — a single mergeable AggState carries sum, count,
        // min, and max simultaneously, so no per-function fan-out is
        // needed. Deduplicated; the target side carries the analyst
        // filter as a per-aggregate predicate.
        #[derive(PartialEq, Eq, Hash, Clone)]
        struct CompKey {
            measure: Option<String>,
            target: bool,
        }
        let mut comp_index: HashMap<CompKey, usize> = HashMap::new(); // -> agg idx
        let mut aggs: Vec<AggSpec> = Vec::new();
        for (i, v) in views.iter().enumerate() {
            if !alive[i] {
                continue;
            }
            for target in [true, false] {
                let key = CompKey {
                    measure: v.measure.clone(),
                    target,
                };
                if comp_index.contains_key(&key) {
                    continue;
                }
                let predicate = if target { analyst.filter.clone() } else { None };
                let prefix = if target { "t" } else { "c" };
                let mut spec = match &v.measure {
                    Some(m) => {
                        AggSpec::new(AggFunc::Sum, m).with_alias(&format!("ph_{prefix}_{m}"))
                    }
                    None => AggSpec::count_star().with_alias(&format!("ph_{prefix}_count_star")),
                };
                if let Some(f) = &predicate {
                    spec = spec.with_filter(f.clone());
                }
                comp_index.insert(key, aggs.len());
                aggs.push(spec);
            }
        }

        // One row-sliced shared-scan plan per phase, through the same
        // lowering path the engine's optimizer output takes, executed
        // across row partitions and merged — unfinalized — in
        // deterministic partition order.
        let plan = LogicalPlan::scan(table.name())
            .grouping_sets(sets, aggs)
            .sliced(lo, hi);
        let partial = run_partitioned_partial(table, &plan.lower()?, workers)?;
        plans_executed += 1;

        // Per-set group labels, materialized once.
        let set_labels: Vec<Vec<String>> = (0..partial.num_sets())
            .map(|s| {
                (0..partial.num_groups(s))
                    .map(|g| partial.group_label(s, g, table)[0].render())
                    .collect()
            })
            .collect();

        // Fold the phase's partial aggregate states into the per-view
        // accumulators via the executor's own merge machinery.
        for (i, v) in views.iter().enumerate() {
            if !alive[i] {
                continue;
            }
            view_phases += 1;
            let set_idx = dims
                .iter()
                .position(|d| *d == v.dimension)
                .expect("alive view's dimension is planned");
            for (target, acc) in [(true, &mut target_acc[i]), (false, &mut comp_acc[i])] {
                let agg_idx = comp_index[&CompKey {
                    measure: v.measure.clone(),
                    target,
                }];
                for (g, label) in set_labels[set_idx].iter().enumerate() {
                    acc.absorb(label, &partial.group_states(set_idx, g)[agg_idx]);
                }
            }
        }

        // Confidence-interval pruning. `k == 0` keeps everything: no
        // view can be hopeless relative to an empty top-k (and the k-th
        // lower bound would not exist).
        if config.k > 0 && phase + 1 >= config.min_phases && phase + 1 < phases {
            // (view, estimate, lower, upper)
            let mut bounds: Vec<(usize, f64, f64, f64)> = Vec::new();
            for (i, v) in views.iter().enumerate() {
                if !alive[i] {
                    continue;
                }
                let t = target_acc[i].distribution(v.func);
                let c = comp_acc[i].distribution(v.func);
                let aligned = AlignedPair::align(&t, &c);
                let estimate = config.metric.distance(&aligned);
                let n_t = target_acc[i].total_count();
                let k_groups = dim_group_counts
                    .get(&v.dimension)
                    .copied()
                    .unwrap_or(0)
                    .max(aligned.len())
                    .max(1);
                let eps = confidence_halfwidth(n_t, k_groups, config.delta);
                bounds.push((i, estimate, estimate - eps, estimate + eps));
            }
            if bounds.len() > config.k {
                let mut lowers: Vec<f64> = bounds.iter().map(|(_, _, l, _)| *l).collect();
                lowers.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
                let kth_lower = lowers[config.k - 1];
                for (i, estimate, _, upper) in bounds {
                    if upper < kth_lower {
                        alive[i] = false;
                        pruned.push(EarlyPrune {
                            spec: views[i].clone(),
                            at_phase: phase + 1,
                            estimate,
                        });
                    }
                }
            }
        }

        // Recorded after pruning so entry `p` reflects the survivor set
        // the *next* phase will actually evaluate.
        survivors_per_phase.push(alive.iter().filter(|a| **a).count());
    }

    // Finalize survivors with exact full-table utilities.
    let mut survivors: Vec<ViewResult> = Vec::new();
    for (i, v) in views.iter().enumerate() {
        if !alive[i] {
            continue;
        }
        let target = target_acc[i].distribution(v.func);
        let comparison = comp_acc[i].distribution(v.func);
        let aligned = AlignedPair::align(&target, &comparison);
        let utility = config.metric.distance(&aligned);
        survivors.push(ViewResult {
            spec: v.clone(),
            utility,
            target,
            comparison,
            aligned,
        });
    }
    let views_out = crate::processor::top_k(survivors.clone(), config.k);

    Ok(PhasedOutcome {
        views: views_out,
        survivors,
        pruned,
        survivors_per_phase,
        view_phases,
        plans_executed,
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SeeDbConfig;
    use crate::engine::SeeDb;
    use crate::pruning::PruningConfig;
    use crate::view::{enumerate_views, FunctionSet};
    use memdb::{ColumnDef, DataType, Database, Expr, Schema, Value};

    /// Table with one strongly deviating dimension (d1) and several
    /// boring ones.
    fn demo(rows: usize) -> (Arc<Database>, AnalystQuery) {
        let mut cols = vec![ColumnDef::dimension("d0", DataType::Str)];
        for i in 1..6 {
            cols.push(ColumnDef::dimension(&format!("d{i}"), DataType::Str));
        }
        cols.push(ColumnDef::measure("m", DataType::Float64));
        let schema = Schema::new(cols).unwrap();
        let mut t = memdb::Table::new("t", schema);
        for r in 0..rows {
            let subset = r % 5 == 0;
            let mut row: Vec<Value> = vec![Value::from(if subset { "in" } else { "out" })];
            // d1 deviates inside the subset (concentrated on v0);
            // d2..d5 are independent of the subset.
            row.push(Value::from(if subset && r % 10 != 5 {
                "v0".to_string()
            } else {
                format!("v{}", r % 3)
            }));
            for i in 2..6 {
                row.push(Value::from(format!("v{}", (r / i) % 4)));
            }
            row.push(Value::Float((r % 11) as f64));
            t.push_row(row).unwrap();
        }
        let db = Arc::new(Database::new());
        db.register(t);
        (db, AnalystQuery::new("t", Some(Expr::col("d0").eq("in"))))
    }

    fn candidate_views(db: &Database) -> Vec<ViewSpec> {
        let t = db.table("t").unwrap();
        enumerate_views(t.schema(), &FunctionSet::standard())
            .into_iter()
            .filter(|v| v.dimension != "d0")
            .collect()
    }

    fn cfg(phases: usize, k: usize, min_phases: usize) -> PhasedConfig {
        PhasedConfig {
            phases,
            k,
            delta: 0.05,
            min_phases,
            metric: Metric::EarthMovers,
            workers: 1,
        }
    }

    #[test]
    fn phased_matches_exact_when_pruning_disabled() {
        let (db, analyst) = demo(5_000);
        let views = candidate_views(&db);
        let table = db.table("t").unwrap();

        let cfg = cfg(7, views.len(), 7); // pruning can never fire
        let phased = run_phased(&table, &analyst, &views, &cfg).unwrap();
        assert!(phased.pruned.is_empty());
        assert_eq!(phased.plans_executed, 7);

        let mut exact_cfg = SeeDbConfig::recommended().with_k(views.len());
        exact_cfg.pruning = PruningConfig::disabled();
        exact_cfg.exclude_filter_attributes = true;
        let exact = SeeDb::new(db, exact_cfg).recommend(&analyst).unwrap();

        let exact_by_label: HashMap<String, f64> = exact
            .all
            .iter()
            .map(|v| (v.spec.label(), v.utility))
            .collect();
        assert_eq!(phased.survivors.len(), views.len());
        for s in &phased.survivors {
            let e = exact_by_label
                .get(&s.spec.label())
                .unwrap_or_else(|| panic!("missing {}", s.spec));
            assert!(
                (s.utility - e).abs() < 1e-9,
                "{}: phased {} vs exact {}",
                s.spec,
                s.utility,
                e
            );
        }
    }

    #[test]
    fn phased_prunes_boring_views_and_keeps_the_winner() {
        let (db, analyst) = demo(40_000);
        let views = candidate_views(&db);
        let table = db.table("t").unwrap();
        let cfg = cfg(10, 2, 2);
        let out = run_phased(&table, &analyst, &views, &cfg).unwrap();
        assert!(
            !out.pruned.is_empty(),
            "boring views should be pruned early"
        );
        // The deviating dimension survives to the end and tops the list.
        assert_eq!(out.views[0].spec.dimension, "d1");
        // Work saved vs full evaluation.
        let saved = out.work_saved(views.len(), cfg.phases);
        assert!(saved > 0.2, "saved only {saved:.2}");
        // Survivor count is non-increasing.
        assert!(out.survivors_per_phase.windows(2).all(|w| w[0] >= w[1]));
    }

    /// Regression (survivor accounting): `survivors_per_phase[p]` must
    /// already exclude views pruned at `at_phase == p + 1` — the count
    /// is recorded *after* that phase's pruning step.
    #[test]
    fn survivors_per_phase_reflects_that_phases_pruning() {
        let (db, analyst) = demo(40_000);
        let views = candidate_views(&db);
        let table = db.table("t").unwrap();
        let out = run_phased(&table, &analyst, &views, &cfg(10, 2, 2)).unwrap();
        assert!(!out.pruned.is_empty());
        let first_prune_phase = out.pruned.iter().map(|p| p.at_phase).min().unwrap();
        let pruned_then = out
            .pruned
            .iter()
            .filter(|p| p.at_phase == first_prune_phase)
            .count();
        // Pin the first post-prune entry: it must drop by exactly the
        // number of views discarded at that phase (pre-fix code pushed
        // the count before pruning, so the entry still said `len()`).
        assert_eq!(
            out.survivors_per_phase[first_prune_phase - 1],
            views.len() - pruned_then,
            "survivors_per_phase = {:?}, pruned at {:?}",
            out.survivors_per_phase,
            out.pruned
                .iter()
                .map(|p| (p.spec.label(), p.at_phase))
                .collect::<Vec<_>>()
        );
        // And every entry agrees with the cumulative prune log.
        for (p, &count) in out.survivors_per_phase.iter().enumerate() {
            let pruned_by_then = out.pruned.iter().filter(|e| e.at_phase <= p + 1).count();
            assert_eq!(count, views.len() - pruned_by_then, "phase {}", p + 1);
        }
    }

    /// Regression (k = 0): used to panic with an index underflow at
    /// `lowers[config.k - 1]`; now it means "prune nothing".
    #[test]
    fn k_zero_prunes_nothing_and_does_not_panic() {
        let (db, analyst) = demo(3_000);
        let views = candidate_views(&db);
        let table = db.table("t").unwrap();
        let out = run_phased(&table, &analyst, &views, &cfg(6, 0, 1)).unwrap();
        assert!(out.pruned.is_empty());
        assert_eq!(out.survivors.len(), views.len());
        assert!(out.views.is_empty(), "top-0 is empty");
    }

    /// Regression (confidence width): the bound's `K` is the dimension's
    /// full-table group count, not the groups seen so far. A view whose
    /// groups (and deviation) only appear in late slices must keep a
    /// wide enough interval to survive the early phases.
    #[test]
    fn late_arriving_groups_are_not_over_eagerly_pruned() {
        // 4 000 rows, every other row in the subset. `d_mild` deviates
        // mildly throughout (estimate ≈ 0.1). `d_late` is constant
        // ("g0") for the first 80% of rows — estimate 0, 1 group seen —
        // but its full-table distinct count is 9, and in the last 20%
        // its subset rows spread over h1..h8 while non-subset rows stay
        // g0: a genuinely deviating view whose signal arrives late.
        let rows = 4_000;
        let schema = Schema::new(vec![
            ColumnDef::dimension("d0", DataType::Str),
            ColumnDef::dimension("d_mild", DataType::Str),
            ColumnDef::dimension("d_late", DataType::Str),
        ])
        .unwrap();
        let mut t = memdb::Table::new("t", schema);
        for r in 0..rows {
            let subset = r % 2 == 0;
            // Mild skew: subset is 60/40 over {A, B}, complement 40/60.
            let mild = if (r / 2) % 10 < if subset { 6 } else { 4 } {
                "A"
            } else {
                "B"
            };
            let late = if r >= rows * 8 / 10 && subset {
                format!("h{}", 1 + (r / 2) % 8)
            } else {
                "g0".to_string()
            };
            t.push_row(vec![
                Value::from(if subset { "in" } else { "out" }),
                Value::from(mild),
                Value::from(late),
            ])
            .unwrap();
        }
        let db = Arc::new(Database::new());
        db.register(t);
        let table = db.table("t").unwrap();
        let analyst = AnalystQuery::new("t", Some(Expr::col("d0").eq("in")));
        let views = vec![ViewSpec::count("d_mild"), ViewSpec::count("d_late")];

        let out = run_phased(&table, &analyst, &views, &cfg(10, 1, 2)).unwrap();
        assert!(
            !out.pruned.iter().any(|p| p.spec.dimension == "d_late"),
            "d_late pruned at phase {:?} although its groups arrive late",
            out.pruned.iter().map(|p| p.at_phase).collect::<Vec<_>>()
        );
        // Its late deviation makes it the genuine winner.
        assert_eq!(out.views[0].spec.dimension, "d_late");
    }

    /// Worker count is invisible in the outcome: utilities (to the
    /// bit), pruning decisions, and phase counts all match.
    #[test]
    fn parallel_phased_is_bit_identical_to_sequential() {
        let (db, analyst) = demo(30_000);
        let views = candidate_views(&db);
        let table = db.table("t").unwrap();
        let mut sequential_cfg = cfg(8, 2, 2);
        let mut parallel_cfg = sequential_cfg.clone();
        sequential_cfg.workers = 1;
        parallel_cfg.workers = 4;
        let seq = run_phased(&table, &analyst, &views, &sequential_cfg).unwrap();
        let par = run_phased(&table, &analyst, &views, &parallel_cfg).unwrap();

        assert_eq!(seq.survivors_per_phase, par.survivors_per_phase);
        assert_eq!(seq.view_phases, par.view_phases);
        assert_eq!(seq.plans_executed, par.plans_executed);
        assert_eq!(seq.pruned.len(), par.pruned.len());
        for (a, b) in seq.pruned.iter().zip(&par.pruned) {
            assert_eq!(a.spec, b.spec);
            assert_eq!(a.at_phase, b.at_phase);
            assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
        }
        assert_eq!(seq.survivors.len(), par.survivors.len());
        for (a, b) in seq.survivors.iter().zip(&par.survivors) {
            assert_eq!(a.spec, b.spec);
            assert_eq!(a.utility.to_bits(), b.utility.to_bits());
        }
        let labels = |o: &PhasedOutcome| {
            o.views
                .iter()
                .map(|v| v.spec.label())
                .collect::<Vec<String>>()
        };
        assert_eq!(labels(&seq), labels(&par));
    }

    #[test]
    fn phased_top_k_matches_exact_top_k() {
        let (db, analyst) = demo(30_000);
        let views = candidate_views(&db);
        let table = db.table("t").unwrap();
        let phased = run_phased(&table, &analyst, &views, &cfg(8, 3, 2)).unwrap();

        let mut exact_cfg = SeeDbConfig::recommended().with_k(3);
        exact_cfg.pruning = PruningConfig::disabled();
        let exact = SeeDb::new(db, exact_cfg).recommend(&analyst).unwrap();

        let p: Vec<String> = phased.views.iter().map(|v| v.spec.label()).collect();
        let e: Vec<String> = exact.views.iter().map(|v| v.spec.label()).collect();
        assert_eq!(p, e, "phased top-k must match exact top-k");
        for (a, b) in phased.views.iter().zip(&exact.views) {
            assert!((a.utility - b.utility).abs() < 1e-9);
        }
    }

    #[test]
    fn confidence_halfwidth_shrinks_with_n() {
        let e1 = confidence_halfwidth(100.0, 10, 0.05);
        let e2 = confidence_halfwidth(10_000.0, 10, 0.05);
        assert!(e1 > e2);
        assert!((e1 / e2 - 10.0).abs() < 1e-9, "sqrt(n) scaling");
        assert_eq!(confidence_halfwidth(0.0, 10, 0.05), f64::INFINITY);
        // Wider for more groups: the full-table count matters.
        assert!(confidence_halfwidth(100.0, 50, 0.05) > confidence_halfwidth(100.0, 2, 0.05));
    }

    #[test]
    fn single_phase_degenerates_to_exact() {
        let (db, analyst) = demo(2_000);
        let views = candidate_views(&db);
        let table = db.table("t").unwrap();
        let out = run_phased(&table, &analyst, &views, &cfg(1, 3, 1)).unwrap();
        assert!(out.pruned.is_empty());
        assert_eq!(out.survivors.len(), views.len());
    }

    #[test]
    fn empty_table_yields_empty_distributions() {
        let schema = Schema::new(vec![
            ColumnDef::dimension("d0", DataType::Str),
            ColumnDef::dimension("d1", DataType::Str),
            ColumnDef::measure("m", DataType::Float64),
        ])
        .unwrap();
        let t = memdb::Table::new("t", schema);
        let db = Arc::new(Database::new());
        db.register(t);
        let table = db.table("t").unwrap();
        let analyst = AnalystQuery::new("t", Some(Expr::col("d0").eq("in")));
        let views = vec![
            ViewSpec::count("d1"),
            ViewSpec::new("d1", "m", AggFunc::Sum),
        ];
        let out = run_phased(&table, &analyst, &views, &cfg(5, 1, 2)).unwrap();
        assert!(out.pruned.is_empty());
        assert_eq!(out.survivors.len(), 2);
        assert!(out.survivors.iter().all(|s| s.utility == 0.0));
        assert_eq!(out.plans_executed, 0, "no rows, no plans");
        assert_eq!(out.survivors_per_phase, vec![2; 5]);
    }

    #[test]
    fn more_phases_than_rows_skips_empty_slices() {
        let (db, analyst) = demo(7);
        let views = candidate_views(&db);
        let table = db.table("t").unwrap();
        let out = run_phased(&table, &analyst, &views, &cfg(50, 3, 2)).unwrap();
        // Only 7 of the 50 slices are non-empty.
        assert_eq!(out.plans_executed, 7);
        assert_eq!(out.survivors_per_phase.len(), 50);
        assert_eq!(out.survivors.len(), views.len());
    }

    /// When every view but the top-k is prunable, the alive set shrinks
    /// to k and the run still finalizes survivors exactly.
    #[test]
    fn aggressive_pruning_down_to_k_still_finalizes() {
        let (db, analyst) = demo(40_000);
        let views = candidate_views(&db);
        let table = db.table("t").unwrap();
        let out = run_phased(&table, &analyst, &views, &cfg(20, 1, 2)).unwrap();
        assert!(!out.survivors.is_empty());
        assert_eq!(out.survivors.len() + out.pruned.len(), views.len());
        assert_eq!(out.views[0].spec.dimension, "d1");
        // Survivors carry exact full-table utilities.
        let mut exact_cfg = SeeDbConfig::recommended().with_k(views.len());
        exact_cfg.pruning = PruningConfig::disabled();
        let exact = SeeDb::new(db, exact_cfg).recommend(&analyst).unwrap();
        let exact_by_label: HashMap<String, f64> = exact
            .all
            .iter()
            .map(|v| (v.spec.label(), v.utility))
            .collect();
        for s in &out.survivors {
            assert!((s.utility - exact_by_label[&s.spec.label()]).abs() < 1e-9);
        }
    }

    #[test]
    fn mismatched_table_rejected() {
        let (db, _) = demo(100);
        let views = candidate_views(&db);
        let table = db.table("t").unwrap();
        let bad = AnalystQuery::new("other", None);
        assert!(run_phased(&table, &bad, &views, &PhasedConfig::default()).is_err());
    }
}
