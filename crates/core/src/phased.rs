//! **Extension**: phased execution with confidence-interval pruning.
//!
//! The demo paper's challenge (d) reads: "Since analysis must happen in
//! real-time, we must trade-off accuracy of visualizations or estimation
//! of 'interestingness' for reduced latency." Beyond sampling (§3.3),
//! the companion vision paper and the authors' follow-up work realize
//! this as *phase-wise execution*: partition the table into `P` slices,
//! update every surviving view's running utility estimate after each
//! slice, and discard views whose utility confidence interval falls
//! entirely below the current top-k's — so hopeless views stop consuming
//! work early, while surviving views end with *exact* utilities over the
//! full table.
//!
//! The confidence interval is Hoeffding-style: after seeing `n` target
//! rows, the deviation of an empirical distribution (and hence of any of
//! our Lipschitz-in-TV metrics) is bounded with probability `1 − δ` by
//! `ε(n) = sqrt((K + ln(2/δ)) / (2n))` where `K` is the number of
//! groups. This is a practical bound, not a per-metric minimax result —
//! see DESIGN.md.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use memdb::{AggFunc, AggSpec, DbError, DbResult, LogicalPlan, Table, Value};

use crate::distance::Metric;
use crate::distribution::{AlignedPair, Distribution};
use crate::processor::ViewResult;
use crate::querygen::AnalystQuery;
use crate::view::ViewSpec;

/// Configuration for phased execution.
#[derive(Debug, Clone)]
pub struct PhasedConfig {
    /// Number of table slices to process (≥ 1).
    pub phases: usize,
    /// Views to return.
    pub k: usize,
    /// Confidence parameter δ: pruning is wrong for a view with
    /// probability at most δ (per view, per phase, under the bound's
    /// assumptions).
    pub delta: f64,
    /// Never prune before this many phases have completed.
    pub min_phases: usize,
    /// Distance metric.
    pub metric: Metric,
}

impl Default for PhasedConfig {
    fn default() -> Self {
        PhasedConfig {
            phases: 10,
            k: 5,
            delta: 0.05,
            min_phases: 2,
            metric: Metric::EarthMovers,
        }
    }
}

/// A view eliminated before the final phase.
#[derive(Debug, Clone)]
pub struct EarlyPrune {
    /// The view.
    pub spec: ViewSpec,
    /// Phase (1-based) after which it was discarded.
    pub at_phase: usize,
    /// Its utility estimate at that point.
    pub estimate: f64,
}

/// Outcome of a phased run.
#[derive(Debug)]
pub struct PhasedOutcome {
    /// Top-k views by (exact, full-table) utility among survivors.
    pub views: Vec<ViewResult>,
    /// All surviving views, scored exactly.
    pub survivors: Vec<ViewResult>,
    /// Views discarded early, with the phase and estimate.
    pub pruned: Vec<EarlyPrune>,
    /// Surviving view count after each phase (index 0 = after phase 1).
    pub survivors_per_phase: Vec<usize>,
    /// Σ over phases of (views still evaluated that phase) — the work
    /// measure that early termination reduces. Without pruning this is
    /// `phases × num_views`.
    pub view_phases: u64,
    /// Wall time.
    pub elapsed: Duration,
}

impl PhasedOutcome {
    /// Fraction of view-phase work saved vs. no pruning.
    pub fn work_saved(&self, num_views: usize, phases: usize) -> f64 {
        let full = (num_views * phases) as f64;
        if full == 0.0 {
            0.0
        } else {
            1.0 - self.view_phases as f64 / full
        }
    }
}

/// Per-(view, side) accumulator: mergeable aggregate components per
/// group label.
#[derive(Debug, Default, Clone)]
struct SideAcc {
    groups: HashMap<String, Comp>,
}

#[derive(Debug, Clone, Copy)]
struct Comp {
    sum: f64,
    count: f64,
    min: f64,
    max: f64,
}

impl Default for Comp {
    fn default() -> Self {
        Comp {
            sum: 0.0,
            count: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl SideAcc {
    fn merge(
        &mut self,
        label: String,
        sum: Option<f64>,
        count: Option<f64>,
        min: Option<f64>,
        max: Option<f64>,
    ) {
        let c = self.groups.entry(label).or_default();
        if let Some(v) = sum {
            c.sum += v;
        }
        if let Some(v) = count {
            c.count += v;
        }
        if let Some(v) = min {
            c.min = c.min.min(v);
        }
        if let Some(v) = max {
            c.max = c.max.max(v);
        }
    }

    fn distribution(&self, func: AggFunc) -> Distribution {
        let pairs = self
            .groups
            .iter()
            .map(|(label, c)| {
                let value = match func {
                    AggFunc::Sum => (c.count > 0.0).then_some(c.sum),
                    AggFunc::Count => Some(c.count),
                    AggFunc::Avg => (c.count > 0.0).then(|| c.sum / c.count),
                    AggFunc::Min => c.min.is_finite().then_some(c.min),
                    AggFunc::Max => c.max.is_finite().then_some(c.max),
                };
                (label.clone(), value)
            })
            .collect();
        Distribution::from_pairs(pairs)
    }

    fn total_count(&self) -> f64 {
        self.groups.values().map(|c| c.count).sum()
    }
}

/// Hoeffding-style half-width of the utility confidence interval after
/// observing `n` rows on the weaker (target) side of a `k_groups`-group
/// view.
pub fn confidence_halfwidth(n: f64, k_groups: usize, delta: f64) -> f64 {
    if n <= 0.0 {
        return f64::INFINITY;
    }
    ((k_groups as f64 + (2.0 / delta).ln()) / (2.0 * n)).sqrt()
}

/// Run phased execution for `views` over the analyst's table.
///
/// Semantics: the table is split into `config.phases` contiguous slices;
/// every view still alive is updated from each slice via one shared
/// grouping-sets plan per slice (a row-sliced [`LogicalPlan`] lowered
/// onto the same shared-scan operator the optimizer's rewrites use).
/// After each slice (past `min_phases`), views whose utility upper bound
/// falls below the k-th best lower bound are discarded. Survivors end
/// with exact full-table utilities — identical to what
/// [`crate::engine::SeeDb::recommend`] computes.
///
/// # Errors
/// Unknown columns or type errors from the underlying scans.
pub fn run_phased(
    table: &Arc<Table>,
    analyst: &AnalystQuery,
    views: &[ViewSpec],
    config: &PhasedConfig,
) -> DbResult<PhasedOutcome> {
    let start = Instant::now();
    let phases = config.phases.max(1);
    let n_rows = table.num_rows();
    if analyst.table != table.name() {
        return Err(DbError::Internal(format!(
            "analyst query targets {} but table is {}",
            analyst.table,
            table.name()
        )));
    }
    // Alive set + accumulators.
    let mut alive: Vec<bool> = vec![true; views.len()];
    let mut target_acc: Vec<SideAcc> = vec![SideAcc::default(); views.len()];
    let mut comp_acc: Vec<SideAcc> = vec![SideAcc::default(); views.len()];
    let mut pruned: Vec<EarlyPrune> = Vec::new();
    let mut survivors_per_phase = Vec::with_capacity(phases);
    let mut view_phases: u64 = 0;

    for phase in 0..phases {
        let lo = n_rows * phase / phases;
        let hi = n_rows * (phase + 1) / phases;
        if lo == hi {
            survivors_per_phase.push(alive.iter().filter(|a| **a).count());
            continue;
        }

        // Group alive views by dimension; plan one shared scan.
        let mut dims: Vec<&str> = Vec::new();
        for (i, v) in views.iter().enumerate() {
            if alive[i] && !dims.contains(&v.dimension.as_str()) {
                dims.push(&v.dimension);
            }
        }
        if dims.is_empty() {
            break;
        }
        let sets: Vec<Vec<String>> = dims.iter().map(|d| vec![d.to_string()]).collect();

        // Component aggregates: for every (measure, side) needed by an
        // alive view: SUM/COUNT/MIN/MAX (+ COUNT(*) for measureless
        // views). Deduplicated; target side carries the analyst filter
        // as a per-aggregate predicate.
        #[derive(PartialEq, Eq, Hash, Clone)]
        struct CompKey {
            measure: Option<String>,
            target: bool,
        }
        let mut comp_index: HashMap<CompKey, usize> = HashMap::new(); // -> base agg idx
        let mut aggs: Vec<AggSpec> = Vec::new();
        for (i, v) in views.iter().enumerate() {
            if !alive[i] {
                continue;
            }
            for target in [true, false] {
                let key = CompKey {
                    measure: v.measure.clone(),
                    target,
                };
                if comp_index.contains_key(&key) {
                    continue;
                }
                let predicate = if target { analyst.filter.clone() } else { None };
                let prefix = if target { "t" } else { "c" };
                let base = aggs.len();
                match &v.measure {
                    Some(m) => {
                        for func in [AggFunc::Sum, AggFunc::Count, AggFunc::Min, AggFunc::Max] {
                            let mut spec = AggSpec::new(func, m).with_alias(&format!(
                                "ph_{prefix}_{}_{m}",
                                func.sql().to_lowercase()
                            ));
                            if let Some(f) = &predicate {
                                spec = spec.with_filter(f.clone());
                            }
                            aggs.push(spec);
                        }
                    }
                    None => {
                        let mut spec =
                            AggSpec::count_star().with_alias(&format!("ph_{prefix}_count_star"));
                        if let Some(f) = &predicate {
                            spec = spec.with_filter(f.clone());
                        }
                        aggs.push(spec);
                    }
                }
                comp_index.insert(key, base);
            }
        }

        // One row-sliced shared-scan plan per phase, through the same
        // lowering path the engine's optimizer output takes.
        let plan = LogicalPlan::scan(table.name())
            .grouping_sets(sets, aggs)
            .sliced(lo, hi);
        let output = plan.lower()?.execute(table)?;

        // Fold the phase results into per-view accumulators. Each
        // per-set result is `[dimension, agg0, agg1, ...]`, so component
        // `base + j` lives in row column `1 + base + j`.
        for (i, v) in views.iter().enumerate() {
            if !alive[i] {
                continue;
            }
            view_phases += 1;
            let set_idx = dims
                .iter()
                .position(|d| *d == v.dimension)
                .expect("alive view's dimension is planned");
            let result = output.result_set(set_idx)?;
            for (target, acc) in [(true, &mut target_acc[i]), (false, &mut comp_acc[i])] {
                let base = 1 + comp_index[&CompKey {
                    measure: v.measure.clone(),
                    target,
                }];
                for row in &result.rows {
                    let label = row[0].render();
                    match &v.measure {
                        Some(_) => {
                            let as_f = |val: &Value| val.as_f64();
                            let count = match &row[base + 1] {
                                Value::Int(n) => Some(*n as f64),
                                other => other.as_f64(),
                            };
                            acc.merge(
                                label,
                                as_f(&row[base]),
                                count,
                                as_f(&row[base + 2]),
                                as_f(&row[base + 3]),
                            );
                        }
                        None => {
                            let count = match &row[base] {
                                Value::Int(n) => Some(*n as f64),
                                other => other.as_f64(),
                            };
                            acc.merge(label, None, count, None, None);
                        }
                    }
                }
            }
        }

        survivors_per_phase.push(alive.iter().filter(|a| **a).count());

        // Confidence-interval pruning.
        if phase + 1 >= config.min_phases && phase + 1 < phases {
            let mut bounds: Vec<(usize, f64, f64)> = Vec::new(); // (view, lower, upper)
            for (i, v) in views.iter().enumerate() {
                if !alive[i] {
                    continue;
                }
                let t = target_acc[i].distribution(v.func);
                let c = comp_acc[i].distribution(v.func);
                let aligned = AlignedPair::align(&t, &c);
                let estimate = config.metric.distance(&aligned);
                let n_t = target_acc[i].total_count();
                let eps = confidence_halfwidth(n_t, aligned.len().max(1), config.delta);
                bounds.push((i, estimate - eps, estimate + eps));
            }
            if bounds.len() > config.k {
                let mut lowers: Vec<f64> = bounds.iter().map(|(_, l, _)| *l).collect();
                lowers.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
                let kth_lower = lowers[config.k - 1];
                for (i, _, upper) in bounds {
                    if upper < kth_lower {
                        alive[i] = false;
                        let v = &views[i];
                        let t = target_acc[i].distribution(v.func);
                        let c = comp_acc[i].distribution(v.func);
                        let estimate = config.metric.distance(&AlignedPair::align(&t, &c));
                        pruned.push(EarlyPrune {
                            spec: v.clone(),
                            at_phase: phase + 1,
                            estimate,
                        });
                    }
                }
            }
        }
    }

    // Finalize survivors with exact full-table utilities.
    let mut survivors: Vec<ViewResult> = Vec::new();
    for (i, v) in views.iter().enumerate() {
        if !alive[i] {
            continue;
        }
        let target = target_acc[i].distribution(v.func);
        let comparison = comp_acc[i].distribution(v.func);
        let aligned = AlignedPair::align(&target, &comparison);
        let utility = config.metric.distance(&aligned);
        survivors.push(ViewResult {
            spec: v.clone(),
            utility,
            target,
            comparison,
            aligned,
        });
    }
    let views_out = crate::processor::top_k(survivors.clone(), config.k);

    Ok(PhasedOutcome {
        views: views_out,
        survivors,
        pruned,
        survivors_per_phase,
        view_phases,
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SeeDbConfig;
    use crate::engine::SeeDb;
    use crate::pruning::PruningConfig;
    use crate::view::{enumerate_views, FunctionSet};
    use memdb::{ColumnDef, DataType, Database, Expr, Schema};

    /// Table with one strongly deviating dimension (d1) and several
    /// boring ones.
    fn demo(rows: usize) -> (Arc<Database>, AnalystQuery) {
        let mut cols = vec![ColumnDef::dimension("d0", DataType::Str)];
        for i in 1..6 {
            cols.push(ColumnDef::dimension(&format!("d{i}"), DataType::Str));
        }
        cols.push(ColumnDef::measure("m", DataType::Float64));
        let schema = Schema::new(cols).unwrap();
        let mut t = memdb::Table::new("t", schema);
        for r in 0..rows {
            let subset = r % 5 == 0;
            let mut row: Vec<Value> = vec![Value::from(if subset { "in" } else { "out" })];
            // d1 deviates inside the subset (concentrated on v0);
            // d2..d5 are independent of the subset.
            row.push(Value::from(if subset && r % 10 != 5 {
                "v0".to_string()
            } else {
                format!("v{}", r % 3)
            }));
            for i in 2..6 {
                row.push(Value::from(format!("v{}", (r / i) % 4)));
            }
            row.push(Value::Float((r % 11) as f64));
            t.push_row(row).unwrap();
        }
        let db = Arc::new(Database::new());
        db.register(t);
        (db, AnalystQuery::new("t", Some(Expr::col("d0").eq("in"))))
    }

    fn candidate_views(db: &Database) -> Vec<ViewSpec> {
        let t = db.table("t").unwrap();
        enumerate_views(t.schema(), &FunctionSet::standard())
            .into_iter()
            .filter(|v| v.dimension != "d0")
            .collect()
    }

    #[test]
    fn phased_matches_exact_when_pruning_disabled() {
        let (db, analyst) = demo(5_000);
        let views = candidate_views(&db);
        let table = db.table("t").unwrap();

        let cfg = PhasedConfig {
            phases: 7,
            k: views.len(), // keep everything
            delta: 0.05,
            min_phases: 7, // pruning can never fire
            metric: Metric::EarthMovers,
        };
        let phased = run_phased(&table, &analyst, &views, &cfg).unwrap();
        assert!(phased.pruned.is_empty());

        let mut exact_cfg = SeeDbConfig::recommended().with_k(views.len());
        exact_cfg.pruning = PruningConfig::disabled();
        exact_cfg.exclude_filter_attributes = true;
        let exact = SeeDb::new(db, exact_cfg).recommend(&analyst).unwrap();

        let exact_by_label: HashMap<String, f64> = exact
            .all
            .iter()
            .map(|v| (v.spec.label(), v.utility))
            .collect();
        assert_eq!(phased.survivors.len(), views.len());
        for s in &phased.survivors {
            let e = exact_by_label
                .get(&s.spec.label())
                .unwrap_or_else(|| panic!("missing {}", s.spec));
            assert!(
                (s.utility - e).abs() < 1e-9,
                "{}: phased {} vs exact {}",
                s.spec,
                s.utility,
                e
            );
        }
    }

    #[test]
    fn phased_prunes_boring_views_and_keeps_the_winner() {
        let (db, analyst) = demo(40_000);
        let views = candidate_views(&db);
        let table = db.table("t").unwrap();
        let cfg = PhasedConfig {
            phases: 10,
            k: 2,
            delta: 0.05,
            min_phases: 2,
            metric: Metric::EarthMovers,
        };
        let out = run_phased(&table, &analyst, &views, &cfg).unwrap();
        assert!(
            !out.pruned.is_empty(),
            "boring views should be pruned early"
        );
        // The deviating dimension survives to the end and tops the list.
        assert_eq!(out.views[0].spec.dimension, "d1");
        // Work saved vs full evaluation.
        let saved = out.work_saved(views.len(), cfg.phases);
        assert!(saved > 0.2, "saved only {saved:.2}");
        // Survivor count is non-increasing.
        assert!(out.survivors_per_phase.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn phased_top_k_matches_exact_top_k() {
        let (db, analyst) = demo(30_000);
        let views = candidate_views(&db);
        let table = db.table("t").unwrap();
        let cfg = PhasedConfig {
            phases: 8,
            k: 3,
            delta: 0.05,
            min_phases: 2,
            metric: Metric::EarthMovers,
        };
        let phased = run_phased(&table, &analyst, &views, &cfg).unwrap();

        let mut exact_cfg = SeeDbConfig::recommended().with_k(3);
        exact_cfg.pruning = PruningConfig::disabled();
        let exact = SeeDb::new(db, exact_cfg).recommend(&analyst).unwrap();

        let p: Vec<String> = phased.views.iter().map(|v| v.spec.label()).collect();
        let e: Vec<String> = exact.views.iter().map(|v| v.spec.label()).collect();
        assert_eq!(p, e, "phased top-k must match exact top-k");
        for (a, b) in phased.views.iter().zip(&exact.views) {
            assert!((a.utility - b.utility).abs() < 1e-9);
        }
    }

    #[test]
    fn confidence_halfwidth_shrinks_with_n() {
        let e1 = confidence_halfwidth(100.0, 10, 0.05);
        let e2 = confidence_halfwidth(10_000.0, 10, 0.05);
        assert!(e1 > e2);
        assert!((e1 / e2 - 10.0).abs() < 1e-9, "sqrt(n) scaling");
        assert_eq!(confidence_halfwidth(0.0, 10, 0.05), f64::INFINITY);
    }

    #[test]
    fn single_phase_degenerates_to_exact() {
        let (db, analyst) = demo(2_000);
        let views = candidate_views(&db);
        let table = db.table("t").unwrap();
        let cfg = PhasedConfig {
            phases: 1,
            k: 3,
            delta: 0.05,
            min_phases: 1,
            metric: Metric::EarthMovers,
        };
        let out = run_phased(&table, &analyst, &views, &cfg).unwrap();
        assert!(out.pruned.is_empty());
        assert_eq!(out.survivors.len(), views.len());
    }

    #[test]
    fn mismatched_table_rejected() {
        let (db, _) = demo(100);
        let views = candidate_views(&db);
        let table = db.table("t").unwrap();
        let bad = AnalystQuery::new("other", None);
        assert!(run_phased(&table, &bad, &views, &PhasedConfig::default()).is_err());
    }
}
