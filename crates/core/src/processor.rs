//! The View Processor (paper Fig. 4).
//!
//! "Results of the optimized queries are processed by the View Processor
//! in a streaming fashion to produce results for individual views.
//! Individual view results are then normalized and the utility of each
//! view is computed. Finally SEEDB selects the top k views with the
//! highest utility."
//!
//! [`Processor::consume`] accepts each planned query's output as it
//! completes (any order), recovers per-view target/comparison value
//! vectors via the plan's [`Extract`]s — including backend roll-up of
//! multi-attribute group-by results — and [`Processor::finish`] scores
//! every view.

use std::collections::HashMap;

use memdb::{DbResult, PlanOutput, ResultSet, Value};

use crate::distance::Metric;
use crate::distribution::{label_of, AlignedPair, Distribution};
use crate::optimizer::{Extract, PlannedQuery, RollupCols, ValueSource};
use crate::querygen::Side;
use crate::view::ViewSpec;

/// A fully scored view.
#[derive(Debug, Clone)]
pub struct ViewResult {
    /// The view.
    pub spec: ViewSpec,
    /// Deviation-based utility `U(V) = S(P[V(D_Q)], P[V(D)])`.
    pub utility: f64,
    /// Target-view distribution (over the analyst's subset).
    pub target: Distribution,
    /// Comparison-view distribution (over the whole table).
    pub comparison: Distribution,
    /// The two distributions aligned on their group-label union.
    pub aligned: AlignedPair,
}

impl ViewResult {
    /// The group with the largest probability change (frontend metadata).
    pub fn max_change(&self) -> Option<(String, f64)> {
        self.aligned.max_change().map(|(l, d)| (l.to_string(), d))
    }
}

/// Streaming accumulator for view distributions.
#[derive(Debug)]
pub struct Processor {
    views: Vec<ViewSpec>,
    metric: Metric,
    target: Vec<Option<Distribution>>,
    comparison: Vec<Option<Distribution>>,
}

impl Processor {
    /// A processor expecting distributions for `views`.
    pub fn new(views: Vec<ViewSpec>, metric: Metric) -> Self {
        let n = views.len();
        Processor {
            views,
            metric,
            target: vec![None; n],
            comparison: vec![None; n],
        }
    }

    /// Consume one planned query's output, extracting every view
    /// distribution it carries.
    ///
    /// # Errors
    /// `UnknownColumn`/`Internal` if the output does not match the plan
    /// (a plan/executor mismatch is a bug, surfaced as an error rather
    /// than a panic).
    pub fn consume(&mut self, planned: &PlannedQuery, output: &PlanOutput) -> DbResult<()> {
        for extract in &planned.extracts {
            let result = output.result_set(extract.result_index)?;
            let dist = extract_distribution(result, extract)?;
            let slot = match extract.side {
                Side::Target => &mut self.target[extract.view_index],
                Side::Comparison => &mut self.comparison[extract.view_index],
            };
            *slot = Some(dist);
        }
        Ok(())
    }

    /// Number of views whose both sides have arrived.
    pub fn complete_views(&self) -> usize {
        self.target
            .iter()
            .zip(&self.comparison)
            .filter(|(t, c)| t.is_some() && c.is_some())
            .count()
    }

    /// Score every view. Views missing a side (a failed query) score with
    /// an empty distribution on that side.
    pub fn finish(self) -> Vec<ViewResult> {
        let empty = Distribution::from_pairs(vec![]);
        self.views
            .into_iter()
            .zip(self.target)
            .zip(self.comparison)
            .map(|((spec, t), c)| {
                let target = t.unwrap_or_else(|| empty.clone());
                let comparison = c.unwrap_or_else(|| empty.clone());
                let aligned = AlignedPair::align(&target, &comparison);
                let utility = self.metric.distance(&aligned);
                ViewResult {
                    spec,
                    utility,
                    target,
                    comparison,
                    aligned,
                }
            })
            .collect()
    }
}

/// Build one view-side distribution from a result set per `extract`.
fn extract_distribution(result: &ResultSet, extract: &Extract) -> DbResult<Distribution> {
    let dim_idx = result.column_index(&extract.dim_col)?;
    match &extract.source {
        ValueSource::Column(col) => {
            let val_idx = result.column_index(col)?;
            let pairs = result
                .rows
                .iter()
                .map(|row| (label_of(&row[dim_idx]), row[val_idx].as_f64()))
                .collect();
            Ok(Distribution::from_pairs(pairs))
        }
        ValueSource::Rollup(cols) => rollup(result, dim_idx, cols),
    }
}

/// Marginalize a multi-attribute group-by result over one dimension.
fn rollup(result: &ResultSet, dim_idx: usize, cols: &RollupCols) -> DbResult<Distribution> {
    use memdb::AggFunc;

    #[derive(Default, Clone, Copy)]
    struct Acc {
        sum: f64,
        count: f64,
        min: f64,
        max: f64,
        any: bool,
    }

    let col_idx = |name: &Option<String>| -> DbResult<Option<usize>> {
        match name {
            Some(n) => Ok(Some(result.column_index(n)?)),
            None => Ok(None),
        }
    };
    let sum_idx = col_idx(&cols.sum)?;
    let count_idx = col_idx(&cols.count)?;
    let min_idx = col_idx(&cols.min)?;
    let max_idx = col_idx(&cols.max)?;

    let mut groups: HashMap<String, Acc> = HashMap::new();
    for row in &result.rows {
        let label = label_of(&row[dim_idx]);
        let acc = groups.entry(label).or_insert(Acc {
            sum: 0.0,
            count: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            any: false,
        });
        // A fine group contributes only if its components are non-null
        // (an all-null fine group had no qualifying rows on this side).
        let mut contributed = false;
        if let Some(i) = sum_idx {
            if let Some(v) = row[i].as_f64() {
                acc.sum += v;
                contributed = true;
            }
        }
        if let Some(i) = count_idx {
            match &row[i] {
                Value::Int(n) => {
                    acc.count += *n as f64;
                    if *n > 0 {
                        contributed = true;
                    }
                }
                Value::Null => {}
                other => {
                    if let Some(v) = other.as_f64() {
                        acc.count += v;
                        if v > 0.0 {
                            contributed = true;
                        }
                    }
                }
            }
        }
        if let Some(i) = min_idx {
            if let Some(v) = row[i].as_f64() {
                acc.min = acc.min.min(v);
                contributed = true;
            }
        }
        if let Some(i) = max_idx {
            if let Some(v) = row[i].as_f64() {
                acc.max = acc.max.max(v);
                contributed = true;
            }
        }
        acc.any |= contributed;
    }

    let pairs = groups
        .into_iter()
        .map(|(label, acc)| {
            let value = if !acc.any {
                None
            } else {
                match cols.func {
                    AggFunc::Sum => Some(acc.sum),
                    AggFunc::Count => Some(acc.count),
                    AggFunc::Avg => {
                        if acc.count > 0.0 {
                            Some(acc.sum / acc.count)
                        } else {
                            None
                        }
                    }
                    AggFunc::Min => acc.min.is_finite().then_some(acc.min),
                    AggFunc::Max => acc.max.is_finite().then_some(acc.max),
                }
            };
            (label, value)
        })
        .collect();
    Ok(Distribution::from_pairs(pairs))
}

/// The `k` highest-utility views, sorted by descending utility
/// (ties broken by view label for determinism).
pub fn top_k(mut results: Vec<ViewResult>, k: usize) -> Vec<ViewResult> {
    results.sort_by(|a, b| {
        b.utility
            .partial_cmp(&a.utility)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.spec.label().cmp(&b.spec.label()))
    });
    results.truncate(k);
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metadata::MetadataCollector;
    use crate::optimizer::{plan, GroupByCombining, OptimizerConfig};
    use crate::querygen::AnalystQuery;
    use crate::view::{enumerate_views, FunctionSet};
    use memdb::{run_batch, AggFunc, ColumnDef, DataType, Database, Expr, Schema, Table, Value};

    /// Sales table where Laserwave rows skew heavily to MA while overall
    /// sales skew to WA — so SUM(amount) BY store deviates strongly, and
    /// SUM(steady) BY store does not.
    fn demo_table() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::dimension("store", DataType::Str),
            ColumnDef::dimension("product", DataType::Str),
            ColumnDef::measure("amount", DataType::Float64),
            ColumnDef::measure("steady", DataType::Float64),
        ])
        .unwrap();
        let mut t = Table::new("sales", schema);
        // 100 Laserwave rows: 80 in MA, 20 in WA.
        for i in 0..100 {
            let store = if i < 80 { "MA" } else { "WA" };
            t.push_row(vec![
                store.into(),
                "Laserwave".into(),
                Value::Float(10.0),
                Value::Float(5.0),
            ])
            .unwrap();
        }
        // 400 other rows: 80 in MA, 320 in WA.
        for i in 0..400 {
            let store = if i < 80 { "MA" } else { "WA" };
            t.push_row(vec![
                store.into(),
                "Other".into(),
                Value::Float(10.0),
                Value::Float(5.0),
            ])
            .unwrap();
        }
        t
    }

    fn run_plan(db: &Database, views: Vec<ViewSpec>, cfg: &OptimizerConfig) -> Vec<ViewResult> {
        let t = db.table("sales").unwrap();
        let md = MetadataCollector::new().collect(&t, false).unwrap();
        let analyst = AnalystQuery::new("sales", Some(Expr::col("product").eq("Laserwave")));
        let p = plan(&views, &analyst, &md, cfg);
        let plans: Vec<memdb::LogicalPlan> = p.queries.iter().map(|q| q.plan.clone()).collect();
        let batch = run_batch(db, &plans, 1);
        let mut proc = Processor::new(views, Metric::EarthMovers);
        for (pq, out) in p.queries.iter().zip(batch.outputs) {
            proc.consume(pq, &out.unwrap()).unwrap();
        }
        assert_eq!(proc.complete_views(), proc.target.len());
        proc.finish()
    }

    #[test]
    fn deviating_view_scores_higher_than_steady_view() {
        let db = Database::new();
        db.register(demo_table());
        let views = vec![
            ViewSpec::new("store", "amount", AggFunc::Sum),
            ViewSpec::new("store", "steady", AggFunc::Avg),
        ];
        let results = run_plan(&db, views, &OptimizerConfig::basic());
        // amount BY store: target 80/20 vs comparison 32/68 — deviates.
        // AVG(steady) BY store: 5.0 everywhere — identical distributions.
        assert!(results[0].utility > 0.3, "got {}", results[0].utility);
        assert!(results[1].utility < 1e-9, "got {}", results[1].utility);
    }

    #[test]
    fn all_optimizer_configs_agree_on_utilities() {
        let db = Database::new();
        db.register(demo_table());
        let t = db.table("sales").unwrap();
        let views = enumerate_views(t.schema(), &FunctionSet::full());
        let baseline = run_plan(&db, views.clone(), &OptimizerConfig::basic());
        let configs = [
            {
                let mut c = OptimizerConfig::basic();
                c.combine_target_comparison = true;
                c
            },
            {
                let mut c = OptimizerConfig::basic();
                c.combine_aggregates = true;
                c
            },
            {
                let mut c = OptimizerConfig::all_optimizations();
                c.parallelism = 1;
                c
            },
            {
                let mut c = OptimizerConfig::all_optimizations();
                c.group_by_combining = GroupByCombining::MultiGroupBy;
                c.parallelism = 1;
                c
            },
        ];
        for cfg in configs {
            let results = run_plan(&db, views.clone(), &cfg);
            for (a, b) in baseline.iter().zip(&results) {
                assert_eq!(a.spec, b.spec);
                assert!(
                    (a.utility - b.utility).abs() < 1e-9,
                    "{}: {} vs {} under {cfg:?}",
                    a.spec,
                    a.utility,
                    b.utility
                );
            }
        }
    }

    #[test]
    fn top_k_sorts_and_truncates() {
        let db = Database::new();
        db.register(demo_table());
        let t = db.table("sales").unwrap();
        let views = enumerate_views(t.schema(), &FunctionSet::full());
        let results = run_plan(&db, views, &OptimizerConfig::basic());
        let k = top_k(results, 3);
        assert_eq!(k.len(), 3);
        assert!(k[0].utility >= k[1].utility);
        assert!(k[1].utility >= k[2].utility);
        // A genuinely deviating view wins (store skew or the filter
        // attribute itself), with clearly positive utility.
        assert!(k[0].utility > 0.3);
    }

    #[test]
    fn max_change_metadata() {
        let db = Database::new();
        db.register(demo_table());
        let views = vec![ViewSpec::new("store", "amount", AggFunc::Sum)];
        let results = run_plan(&db, views, &OptimizerConfig::basic());
        let (label, delta) = results[0].max_change().unwrap();
        assert!(label == "MA" || label == "WA");
        assert!(delta > 0.3);
    }

    #[test]
    fn missing_side_scores_against_empty() {
        let views = vec![ViewSpec::count("d")];
        let proc = Processor::new(views, Metric::L1);
        let results = proc.finish();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].utility, 0.0);
        assert!(results[0].aligned.is_empty());
    }

    #[test]
    fn consume_rejects_mismatched_plan() {
        let views = vec![ViewSpec::count("d")];
        let mut proc = Processor::new(views.clone(), Metric::L1);
        let planned = PlannedQuery {
            plan: memdb::LogicalPlan::scan("t")
                .aggregate(vec!["d".into()], vec![memdb::AggSpec::count_star()]),
            extracts: vec![Extract {
                view_index: 0,
                result_index: 3, // out of range for a single-grouping plan
                side: Side::Target,
                dim_col: "d".into(),
                source: ValueSource::Column("x".into()),
            }],
        };
        let output = PlanOutput::Aggregate(memdb::QueryOutput {
            result: ResultSet {
                columns: vec!["d".into(), "x".into()],
                rows: vec![],
            },
            stats: Default::default(),
        });
        assert!(proc.consume(&planned, &output).is_err());
    }
}
