//! View-space pruning (paper §3.3, "View Space Pruning").
//!
//! "In practice, most views for any query Q have low utility ... SEEDB
//! uses this property to aggressively prune view queries that are
//! unlikely to have high utility." Three rules, all driven by
//! [`Metadata`] rather than by executing
//! queries:
//!
//! 1. **Variance-based**: dimension attributes whose value distribution is
//!    (near-)constant cannot produce deviating views.
//! 2. **Correlated attributes**: dimensions with near-perfect pairwise
//!    association (Cramér's V) produce near-identical views; only one
//!    representative per correlation cluster is evaluated.
//! 3. **Access frequency**: attributes rarely touched by the recorded
//!    analyst workload are unlikely to matter.

use std::collections::HashMap;

use crate::metadata::Metadata;
use crate::view::ViewSpec;

/// Configuration for the three pruning rules.
#[derive(Debug, Clone)]
pub struct PruningConfig {
    /// Enable variance-based pruning of low-variance dimensions.
    pub variance: bool,
    /// Dimensions with frequency-distribution entropy (nats) below this
    /// are pruned (0.05 ≈ "one value holds ~99% of rows"). Dimensions
    /// with fewer than 2 distinct values are always pruned when
    /// `variance` is on.
    pub min_entropy: f64,
    /// Dimensions with more distinct values than this are pruned
    /// (unvisualizable as a bar chart and expensive to group).
    /// `None` disables the cap.
    pub max_distinct: Option<usize>,
    /// Enable correlated-attribute clustering.
    pub correlation: bool,
    /// Cramér's V at or above which two dimensions are clustered.
    pub correlation_threshold: f64,
    /// Enable access-frequency pruning.
    pub access_frequency: bool,
    /// Access pruning only activates once the workload log holds at least
    /// this many queries (otherwise there is no signal).
    pub min_workload_queries: u64,
    /// Attributes accessed by fewer than this fraction of workload
    /// queries are pruned.
    pub min_access_fraction: f64,
}

impl PruningConfig {
    /// All rules on, paper-ish defaults.
    pub fn aggressive() -> Self {
        PruningConfig {
            variance: true,
            min_entropy: 0.05,
            max_distinct: Some(1000),
            correlation: true,
            correlation_threshold: 0.95,
            access_frequency: true,
            min_workload_queries: 10,
            min_access_fraction: 0.01,
        }
    }

    /// Everything off — the paper's Basic Framework.
    pub fn disabled() -> Self {
        PruningConfig {
            variance: false,
            min_entropy: 0.0,
            max_distinct: None,
            correlation: false,
            correlation_threshold: 1.1,
            access_frequency: false,
            min_workload_queries: u64::MAX,
            min_access_fraction: 0.0,
        }
    }
}

impl Default for PruningConfig {
    fn default() -> Self {
        PruningConfig::aggressive()
    }
}

/// Why a view was pruned.
#[derive(Debug, Clone, PartialEq)]
pub enum PruneReason {
    /// Grouping dimension is (near-)constant.
    LowVariance {
        /// Entropy of the dimension's value distribution (nats).
        entropy: f64,
        /// Distinct value count.
        distinct: usize,
    },
    /// Grouping dimension has too many groups to visualize.
    TooManyGroups {
        /// Distinct value count.
        distinct: usize,
    },
    /// Grouping dimension is strongly associated with a cluster
    /// representative that is being evaluated instead.
    CorrelatedWith {
        /// The representative dimension.
        representative: String,
        /// Cramér's V linking this dimension into the cluster.
        v: f64,
    },
    /// Attribute is rarely accessed by the recorded workload.
    RarelyAccessed {
        /// The rarely-accessed attribute (dimension or measure).
        attribute: String,
        /// Its access count.
        count: u64,
    },
    /// The grouping dimension appears in the analyst's own selection
    /// predicate: its target view trivially concentrates on the selected
    /// value(s) and conveys nothing beyond the query itself.
    FilterAttribute,
}

impl std::fmt::Display for PruneReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PruneReason::LowVariance { entropy, distinct } => {
                write!(
                    f,
                    "low variance (entropy {entropy:.3}, {distinct} distinct)"
                )
            }
            PruneReason::TooManyGroups { distinct } => {
                write!(f, "too many groups ({distinct})")
            }
            PruneReason::CorrelatedWith { representative, v } => {
                write!(f, "correlated with {representative} (V = {v:.2})")
            }
            PruneReason::RarelyAccessed { attribute, count } => {
                write!(f, "{attribute} rarely accessed ({count} workload hits)")
            }
            PruneReason::FilterAttribute => {
                write!(f, "dimension appears in the query's own predicate")
            }
        }
    }
}

/// A pruned view with its reason.
#[derive(Debug, Clone, PartialEq)]
pub struct PrunedView {
    /// The view that will not be executed.
    pub spec: ViewSpec,
    /// Why.
    pub reason: PruneReason,
}

/// Result of pruning a candidate list.
#[derive(Debug, Clone)]
pub struct PruneOutcome {
    /// Views that survive and will be executed.
    pub kept: Vec<ViewSpec>,
    /// Views dropped, with reasons (surfaced in the demo UI).
    pub pruned: Vec<PrunedView>,
    /// Correlation clusters found (each sorted, representative first).
    pub clusters: Vec<Vec<String>>,
}

impl PruneOutcome {
    /// Fraction of candidates pruned.
    pub fn pruned_fraction(&self) -> f64 {
        let total = self.kept.len() + self.pruned.len();
        if total == 0 {
            0.0
        } else {
            self.pruned.len() as f64 / total as f64
        }
    }
}

/// Union-find over dimension indices.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }
    /// Iterative find with full path compression. Deliberately not
    /// recursive: a pathologically wide schema whose dimensions form
    /// one long correlation chain would otherwise recurse once per
    /// chain link and overflow the stack.
    fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb] = ra;
        }
    }
}

/// Apply the configured pruning rules to `candidates`.
///
/// Rule order matters for attribution (a view is reported with the first
/// rule that kills it): variance → group cap → correlation → access
/// frequency. Correlation clustering runs over the dimensions that
/// *survive* the variance rules so a constant column cannot become a
/// cluster representative.
pub fn prune(
    candidates: Vec<ViewSpec>,
    metadata: &Metadata,
    config: &PruningConfig,
) -> PruneOutcome {
    // --- Per-dimension verdicts from variance rules -----------------
    let mut dim_kill: HashMap<String, PruneReason> = HashMap::new();
    let mut dims: Vec<&str> = Vec::new();
    for spec in &candidates {
        if !dims.contains(&spec.dimension.as_str()) {
            dims.push(&spec.dimension);
        }
    }
    for &d in &dims {
        let Ok(stats) = metadata.stats.column(d) else {
            continue;
        };
        if config.variance && (stats.distinct < 2 || stats.entropy < config.min_entropy) {
            dim_kill.insert(
                d.to_string(),
                PruneReason::LowVariance {
                    entropy: stats.entropy,
                    distinct: stats.distinct,
                },
            );
            continue;
        }
        if let Some(cap) = config.max_distinct {
            if stats.distinct > cap {
                dim_kill.insert(
                    d.to_string(),
                    PruneReason::TooManyGroups {
                        distinct: stats.distinct,
                    },
                );
            }
        }
    }

    // --- Correlation clustering over surviving dimensions -----------
    let mut clusters: Vec<Vec<String>> = Vec::new();
    if config.correlation && !metadata.dim_correlations.is_empty() {
        let alive: Vec<&str> = dims
            .iter()
            .copied()
            .filter(|d| !dim_kill.contains_key(*d))
            .collect();
        let index: HashMap<&str, usize> = alive.iter().enumerate().map(|(i, &d)| (d, i)).collect();
        let mut uf = UnionFind::new(alive.len());
        for (a, b, v) in &metadata.dim_correlations {
            if *v >= config.correlation_threshold {
                if let (Some(&i), Some(&j)) = (index.get(a.as_str()), index.get(b.as_str())) {
                    uf.union(i, j);
                }
            }
        }
        let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
        for i in 0..alive.len() {
            groups.entry(uf.find(i)).or_default().push(i);
        }
        for members in groups.into_values() {
            if members.len() < 2 {
                continue;
            }
            // Representative: most-accessed, then highest entropy, then
            // schema order (first in `alive`).
            let rep = *members
                .iter()
                .max_by(|&&a, &&b| {
                    let acc = |i: usize| metadata.access_counts.get(alive[i]).copied().unwrap_or(0);
                    let ent = |i: usize| {
                        metadata
                            .stats
                            .column(alive[i])
                            .map(|s| s.entropy)
                            .unwrap_or(0.0)
                    };
                    acc(a)
                        .cmp(&acc(b))
                        .then(
                            ent(a)
                                .partial_cmp(&ent(b))
                                .unwrap_or(std::cmp::Ordering::Equal),
                        )
                        .then(b.cmp(&a)) // earlier schema position wins ties
                })
                .expect("non-empty cluster");
            let mut cluster: Vec<String> = vec![alive[rep].to_string()];
            for &m in &members {
                if m != rep {
                    let v = metadata.correlation(alive[rep], alive[m]);
                    dim_kill.insert(
                        alive[m].to_string(),
                        PruneReason::CorrelatedWith {
                            representative: alive[rep].to_string(),
                            v,
                        },
                    );
                    cluster.push(alive[m].to_string());
                }
            }
            cluster[1..].sort();
            clusters.push(cluster);
        }
        clusters.sort();
    }

    // --- Access-frequency rule (dimensions AND measures) ------------
    let mut attr_kill: HashMap<String, PruneReason> = HashMap::new();
    if config.access_frequency && metadata.workload_queries >= config.min_workload_queries {
        let total = metadata.workload_queries as f64;
        let mut attrs: Vec<&str> = dims.clone();
        for spec in &candidates {
            if let Some(m) = &spec.measure {
                if !attrs.contains(&m.as_str()) {
                    attrs.push(m);
                }
            }
        }
        for a in attrs {
            let count = metadata.access_counts.get(a).copied().unwrap_or(0);
            if (count as f64) < config.min_access_fraction * total {
                attr_kill.insert(
                    a.to_string(),
                    PruneReason::RarelyAccessed {
                        attribute: a.to_string(),
                        count,
                    },
                );
            }
        }
    }

    // --- Apply verdicts to views ------------------------------------
    let mut kept = Vec::new();
    let mut pruned = Vec::new();
    for spec in candidates {
        if let Some(reason) = dim_kill.get(&spec.dimension) {
            pruned.push(PrunedView {
                spec,
                reason: reason.clone(),
            });
            continue;
        }
        if let Some(reason) = attr_kill.get(&spec.dimension) {
            pruned.push(PrunedView {
                spec,
                reason: reason.clone(),
            });
            continue;
        }
        if let Some(m) = &spec.measure {
            if let Some(reason) = attr_kill.get(m) {
                pruned.push(PrunedView {
                    spec,
                    reason: reason.clone(),
                });
                continue;
            }
        }
        kept.push(spec);
    }

    PruneOutcome {
        kept,
        pruned,
        clusters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metadata::MetadataCollector;
    use crate::view::{enumerate_views, FunctionSet};
    use memdb::{AggFunc, ColumnDef, DataType, Schema, Table, Value};

    /// Table with: a constant dim, a good dim, two perfectly-correlated
    /// dims, and two measures.
    fn table() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::dimension("constant", DataType::Str),
            ColumnDef::dimension("region", DataType::Str),
            ColumnDef::dimension("state", DataType::Str),
            ColumnDef::dimension("state_name", DataType::Str),
            ColumnDef::measure("amount", DataType::Float64),
            ColumnDef::measure("qty", DataType::Float64),
        ])
        .unwrap();
        let mut t = Table::new("orders", schema);
        let states = [
            ("MA", "Massachusetts"),
            ("WA", "Washington"),
            ("NY", "New York"),
            ("CA", "California"),
        ];
        for i in 0..200 {
            let (s, sn) = states[i % 4];
            // region varies independently of state so Cramér's V between
            // them is ~0 and only {state, state_name} cluster.
            let r = ["east", "west"][(i / 4) % 2];
            t.push_row(vec![
                "only".into(),
                r.into(),
                s.into(),
                sn.into(),
                Value::Float((i % 13) as f64),
                Value::Float((i % 7) as f64),
            ])
            .unwrap();
        }
        t
    }

    fn metadata(t: &Table, mc: &MetadataCollector) -> Metadata {
        mc.collect(t, true).unwrap()
    }

    /// Regression: `UnionFind::find` must walk iteratively. A 300k-link
    /// parent chain (worst-case correlation clustering input) overflows
    /// the test thread's stack under the old recursive path compression.
    #[test]
    fn union_find_survives_a_very_deep_chain() {
        let n = 300_000;
        let mut uf = UnionFind::new(n);
        // Union in descending order builds a single parent chain
        // 0 ← 1 ← 2 ← … ← n−1 (each union links two fresh roots).
        for i in (0..n - 1).rev() {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.find(n - 1), 0);
        // Path compression happened: the deepest node now points at the
        // root directly, and every element agrees on the root.
        assert_eq!(uf.parent[n - 1], 0);
        for i in [0, 1, n / 2, n - 2, n - 1] {
            assert_eq!(uf.find(i), 0);
        }
    }

    #[test]
    fn variance_rule_kills_constant_dimension() {
        let t = table();
        let mc = MetadataCollector::new();
        let md = metadata(&t, &mc);
        let views = enumerate_views(t.schema(), &FunctionSet::sum_only());
        let mut cfg = PruningConfig::aggressive();
        cfg.correlation = false;
        cfg.access_frequency = false;
        let out = prune(views, &md, &cfg);
        assert!(out.pruned.iter().all(|p| p.spec.dimension == "constant"));
        assert!(out
            .pruned
            .iter()
            .all(|p| matches!(p.reason, PruneReason::LowVariance { .. })));
        assert!(!out.kept.iter().any(|v| v.dimension == "constant"));
        // 3 surviving dims × 2 measures.
        assert_eq!(out.kept.len(), 6);
    }

    #[test]
    fn correlation_rule_keeps_one_representative() {
        let t = table();
        let mc = MetadataCollector::new();
        let md = metadata(&t, &mc);
        let views = enumerate_views(t.schema(), &FunctionSet::sum_only());
        let mut cfg = PruningConfig::aggressive();
        cfg.access_frequency = false;
        let out = prune(views, &md, &cfg);
        // state/state_name cluster: only one survives.
        let state_kept = out.kept.iter().any(|v| v.dimension == "state");
        let name_kept = out.kept.iter().any(|v| v.dimension == "state_name");
        assert!(state_kept ^ name_kept, "exactly one of the pair survives");
        assert_eq!(out.clusters.len(), 1);
        assert_eq!(out.clusters[0].len(), 2);
        assert!(out
            .pruned
            .iter()
            .any(|p| matches!(&p.reason, PruneReason::CorrelatedWith { v, .. } if *v > 0.99)));
    }

    #[test]
    fn access_frequency_rule_requires_workload() {
        let t = table();
        let mc = MetadataCollector::new();
        // Workload touching region + amount only, 20 queries.
        for _ in 0..20 {
            mc.tracker().record("orders", ["region", "amount"]);
        }
        let md = metadata(&t, &mc);
        let views = enumerate_views(t.schema(), &FunctionSet::sum_only());
        let mut cfg = PruningConfig::aggressive();
        cfg.variance = false;
        cfg.correlation = false;
        cfg.min_access_fraction = 0.1;
        let out = prune(views, &md, &cfg);
        // Only region × amount survives.
        assert_eq!(out.kept.len(), 1);
        assert_eq!(out.kept[0], ViewSpec::new("region", "amount", AggFunc::Sum));
        assert!(out
            .pruned
            .iter()
            .all(|p| matches!(p.reason, PruneReason::RarelyAccessed { .. })));
    }

    #[test]
    fn access_rule_inactive_below_min_workload() {
        let t = table();
        let mc = MetadataCollector::new();
        mc.tracker().record("orders", ["region"]); // just one query
        let md = metadata(&t, &mc);
        let views = enumerate_views(t.schema(), &FunctionSet::sum_only());
        let mut cfg = PruningConfig::aggressive();
        cfg.variance = false;
        cfg.correlation = false;
        let out = prune(views.clone(), &md, &cfg);
        assert_eq!(out.kept.len(), views.len());
    }

    #[test]
    fn disabled_config_prunes_nothing() {
        let t = table();
        let mc = MetadataCollector::new();
        let md = metadata(&t, &mc);
        let views = enumerate_views(t.schema(), &FunctionSet::sum_only());
        let out = prune(views.clone(), &md, &PruningConfig::disabled());
        assert_eq!(out.kept.len(), views.len());
        assert!(out.pruned.is_empty());
        assert_eq!(out.pruned_fraction(), 0.0);
    }

    #[test]
    fn max_distinct_caps_group_count() {
        let schema = Schema::new(vec![
            ColumnDef::dimension("id_like", DataType::Int64),
            ColumnDef::measure("m", DataType::Float64),
        ])
        .unwrap();
        let mut t = Table::new("t", schema);
        for i in 0..500 {
            t.push_row(vec![Value::Int(i), Value::Float(1.0)]).unwrap();
        }
        let mc = MetadataCollector::new();
        let md = mc.collect(&t, false).unwrap();
        let views = enumerate_views(t.schema(), &FunctionSet::sum_only());
        let mut cfg = PruningConfig::aggressive();
        cfg.max_distinct = Some(100);
        cfg.correlation = false;
        cfg.access_frequency = false;
        let out = prune(views, &md, &cfg);
        assert!(out.kept.is_empty());
        assert!(matches!(
            out.pruned[0].reason,
            PruneReason::TooManyGroups { distinct: 500 }
        ));
    }

    #[test]
    fn representative_prefers_accessed_dimension() {
        let t = table();
        let mc = MetadataCollector::new();
        // Analysts use state_name, never state.
        for _ in 0..5 {
            mc.tracker().record("orders", ["state_name"]);
        }
        let md = metadata(&t, &mc);
        let views = enumerate_views(t.schema(), &FunctionSet::sum_only());
        let mut cfg = PruningConfig::aggressive();
        cfg.access_frequency = false; // only test rep choice
        let out = prune(views, &md, &cfg);
        assert!(out.kept.iter().any(|v| v.dimension == "state_name"));
        assert!(!out.kept.iter().any(|v| v.dimension == "state"));
        assert_eq!(out.clusters[0][0], "state_name");
    }

    #[test]
    fn pruned_fraction_math() {
        let out = PruneOutcome {
            kept: vec![ViewSpec::count("a")],
            pruned: vec![
                PrunedView {
                    spec: ViewSpec::count("b"),
                    reason: PruneReason::TooManyGroups { distinct: 5 },
                },
                PrunedView {
                    spec: ViewSpec::count("c"),
                    reason: PruneReason::TooManyGroups { distinct: 5 },
                },
            ],
            clusters: vec![],
        };
        assert!((out.pruned_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn reasons_render() {
        let r = PruneReason::CorrelatedWith {
            representative: "state".into(),
            v: 0.97,
        };
        assert!(r.to_string().contains("state"));
        let r = PruneReason::LowVariance {
            entropy: 0.01,
            distinct: 1,
        };
        assert!(r.to_string().contains("low variance"));
    }
}
