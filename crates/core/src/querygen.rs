//! The Query Generator (paper Fig. 4).
//!
//! Turns the analyst's subset-selection query `Q` and a candidate view
//! `(a, m, f)` into the *target view* query over `D_Q` and the
//! *comparison view* query over all of `D` (§2):
//!
//! ```sql
//! -- target:      SELECT a, f(m) FROM D_Q GROUP BY a
//! -- comparison:  SELECT a, f(m) FROM D   GROUP BY a
//! ```
//!
//! These unoptimized forms are what the Basic Framework executes; the
//! [`optimizer`](crate::optimizer) rewrites them into combined queries.

use memdb::{AggSpec, DbResult, Expr, Query};

use crate::view::ViewSpec;

/// The analyst's input: the subset of data to explore
/// (`Q = SELECT * FROM table WHERE filter`).
#[derive(Debug, Clone, PartialEq)]
pub struct AnalystQuery {
    /// Fact table name.
    pub table: String,
    /// Subset predicate; `None` selects the whole table (target and
    /// comparison views then coincide and every utility is ~0).
    pub filter: Option<Expr>,
}

impl AnalystQuery {
    /// Build from parts.
    pub fn new(table: &str, filter: Option<Expr>) -> Self {
        AnalystQuery {
            table: table.to_string(),
            filter,
        }
    }

    /// Parse from SQL text (`SELECT * FROM t WHERE ...`) — frontend
    /// mechanism (a) in §3.2.
    ///
    /// # Errors
    /// SQL parse errors.
    pub fn from_sql(sql: &str) -> DbResult<Self> {
        let sel = memdb::parse_selection(sql)?;
        Ok(AnalystQuery {
            table: sel.table,
            filter: sel.filter,
        })
    }

    /// Columns referenced by the filter (for access tracking).
    pub fn referenced_columns(&self) -> Vec<String> {
        self.filter
            .as_ref()
            .map(|f| {
                f.referenced_columns()
                    .into_iter()
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Render as SQL (`SELECT * FROM t [WHERE ...]`).
    pub fn to_sql(&self) -> String {
        match &self.filter {
            Some(f) => format!("SELECT * FROM {} WHERE {}", self.table, f.to_sql()),
            None => format!("SELECT * FROM {}", self.table),
        }
    }
}

/// Which side of the deviation comparison a query/aggregate feeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The view over the analyst's subset `D_Q`.
    Target,
    /// The view over the whole table `D`.
    Comparison,
}

impl Side {
    /// Alias prefix used in generated queries.
    pub fn prefix(self) -> &'static str {
        match self {
            Side::Target => "t",
            Side::Comparison => "c",
        }
    }
}

/// Canonical output alias for a view's aggregate on one side,
/// e.g. `t_sum_amount`, `c_count_star`.
pub fn direct_alias(side: Side, view: &ViewSpec) -> String {
    match &view.measure {
        Some(m) => format!("{}_{}_{}", side.prefix(), view.func.sql().to_lowercase(), m),
        None => format!("{}_count_star", side.prefix()),
    }
}

/// The aggregate spec computing `f(m)` for `view` on `side`.
/// When `side` is `Target` and the analyst has a filter, the spec carries
/// it as a per-aggregate predicate (usable in combined queries); in a
/// standalone target query the same filter sits in the `WHERE` clause
/// instead and `carry_filter` should be `false`.
pub fn view_agg(
    view: &ViewSpec,
    side: Side,
    analyst: &AnalystQuery,
    carry_filter: bool,
) -> AggSpec {
    let mut spec = match &view.measure {
        Some(m) => AggSpec::new(view.func, m),
        None => AggSpec::count_star(),
    };
    spec = spec.with_alias(&direct_alias(side, view));
    if carry_filter && side == Side::Target {
        if let Some(f) = &analyst.filter {
            spec = spec.with_filter(f.clone());
        }
    }
    spec
}

/// The unoptimized *target view* query: `SELECT a, f(m) FROM D_Q GROUP BY a`.
pub fn target_query(view: &ViewSpec, analyst: &AnalystQuery) -> Query {
    let mut q = Query::aggregate(
        &analyst.table,
        vec![&view.dimension],
        vec![view_agg(view, Side::Target, analyst, false)],
    );
    if let Some(f) = &analyst.filter {
        q = q.with_filter(f.clone());
    }
    q
}

/// The unoptimized *comparison view* query: `SELECT a, f(m) FROM D GROUP BY a`.
pub fn comparison_query(view: &ViewSpec, analyst: &AnalystQuery) -> Query {
    Query::aggregate(
        &analyst.table,
        vec![&view.dimension],
        vec![view_agg(view, Side::Comparison, analyst, false)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use memdb::AggFunc;

    fn analyst() -> AnalystQuery {
        AnalystQuery::new("Sales", Some(Expr::col("Product").eq("Laserwave")))
    }

    #[test]
    fn paper_target_and_comparison_sql() {
        let v = ViewSpec::new("store", "amount", AggFunc::Sum);
        let t = target_query(&v, &analyst());
        assert_eq!(
            t.to_sql(),
            "SELECT store, SUM(amount) AS t_sum_amount FROM Sales WHERE Product = 'Laserwave' GROUP BY store"
        );
        let c = comparison_query(&v, &analyst());
        assert_eq!(
            c.to_sql(),
            "SELECT store, SUM(amount) AS c_sum_amount FROM Sales GROUP BY store"
        );
    }

    #[test]
    fn from_sql_roundtrip() {
        let aq = AnalystQuery::from_sql("SELECT * FROM Sales WHERE Product = 'Laserwave'").unwrap();
        assert_eq!(aq.table, "Sales");
        assert_eq!(aq.referenced_columns(), vec!["Product"]);
        assert_eq!(
            aq.to_sql(),
            "SELECT * FROM Sales WHERE Product = 'Laserwave'"
        );
    }

    #[test]
    fn no_filter_analyst_query() {
        let aq = AnalystQuery::new("t", None);
        assert_eq!(aq.to_sql(), "SELECT * FROM t");
        assert!(aq.referenced_columns().is_empty());
        let v = ViewSpec::count("d");
        let t = target_query(&v, &aq);
        assert!(t.filter.is_none());
    }

    #[test]
    fn carried_filter_becomes_per_aggregate_predicate() {
        let v = ViewSpec::new("store", "amount", AggFunc::Avg);
        let spec = view_agg(&v, Side::Target, &analyst(), true);
        assert!(spec.filter.is_some());
        assert_eq!(spec.alias.as_deref(), Some("t_avg_amount"));
        let spec = view_agg(&v, Side::Comparison, &analyst(), true);
        assert!(spec.filter.is_none());
        assert_eq!(spec.alias.as_deref(), Some("c_avg_amount"));
    }

    #[test]
    fn count_star_aliases() {
        let v = ViewSpec::count("region");
        assert_eq!(direct_alias(Side::Target, &v), "t_count_star");
        assert_eq!(direct_alias(Side::Comparison, &v), "c_count_star");
    }
}
