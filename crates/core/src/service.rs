//! The serving layer: a long-lived, thread-safe recommendation service.
//!
//! [`SeeDb::recommend`] is a single-shot call — every request recomputes
//! every view from scratch, and concurrent analysts exploring the same
//! table redo identical scans. [`Service`] turns the engine into
//! something that can sit behind traffic:
//!
//! * **Concurrent sessions.** A `Service` is cheaply cloneable and
//!   `&self`-threadsafe; [`Service::session`] hands out [`Session`]
//!   handles so many analysts can issue [`Session::recommend`] calls
//!   over one shared [`memdb::Database`] simultaneously.
//! * **Shared partial-aggregate cache.** Every planned shared-scan query
//!   is keyed by a canonical fingerprint of its output-determining parts
//!   — table, predicate, grouping set(s), measures, aggregates
//!   ([`memdb::PhysicalPlan::fingerprint`]) — and its *unfinalized*
//!   [`PartialAggState`] is cached under `(fingerprint, table version)`.
//!   Overlapping view sets across requests hit the cache instead of the
//!   scan: a warm repeat of an analyst query performs **zero** table
//!   scans. Entries are LRU-evicted beyond
//!   [`ServiceConfig::cache_capacity`] and invalidated by the
//!   [`memdb::Table::version`] stamp — re-registering a table bumps the
//!   version, so stale states are never served.
//! * **Cross-request scan batching.** Cache misses that arrive within
//!   [`ServiceConfig::batch_window`] of each other on the same table are
//!   merged — grouping sets unioned, aggregates deduplicated by
//!   (function, column, predicate) — into one shared-scan
//!   [`memdb::LogicalPlan`], bin-packed under
//!   [`ServiceConfig::max_batch_sets`] via the optimizer's packing
//!   ([`crate::packing`]). N concurrent analysts on one table cost ~1
//!   scan, not N; each plan's state is recovered bit-for-bit from the
//!   combined scan by [`PartialAggState::project_for`].
//! * **Incremental maintenance under live ingest.** When
//!   [`Service::append_rows`] (or [`memdb::Database::append_rows`])
//!   publishes version `v+1` of a table, cached states stamped at an
//!   append ancestor `v` are not thrown away: the plan is executed over
//!   only the delta rows `[rows_at_v, rows_now)` and
//!   [`merge`](PartialAggState::merge)d into the cached state —
//!   byte-identical to a cold recomputation at `v+1` because aggregate
//!   states are associative and merged in partition (row) order. The
//!   [`crate::live::RefreshConfig`] policy picks lazy (on probe) or
//!   eager (on append) refresh and falls back to a full recompute for
//!   oversized deltas or non-append lineage (replaced tables).
//!
//! The correctness bar matches partitioned execution: a cached,
//! batched, or incrementally refreshed recommendation is
//! **byte-identical** to a cold sequential one (`tests/service.rs`
//! holds it there under concurrency and concurrent appends).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use memdb::{
    run_partitioned_partial_obs, AggSpec, CacheOutcome, Database, DbError, DbResult, ExecMetrics,
    ExecStats, Expr, LogicalPlan, MutexExt, PartialAggState, PhysicalPlan, PlanOutput, Table,
    Value,
};
use seedb_obs::{
    Counter, FlightRecorder, HealthStatus, Histogram, MetricsSnapshot, Obs, Registry, Rule,
    RuleKind, Sampler, SamplerConfig, Span, TraceData, Watchdog, Window,
};

use crate::config::{SeeDbConfig, ServiceConfig};
use crate::engine::{Recommendation, SeeDb};
use crate::explain::{cache_only_stats, ExplainOp, ExplainReport};
use crate::live::{RefreshDecision, RefreshMode};
use crate::metadata::AccessTracker;
use crate::querygen::AnalystQuery;

/// Trace spans attached to one flight-recorder dump.
const DUMP_TRACES: usize = 16;

/// Point-in-time cache/batch counters of a [`Service`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Plans served from the cache without a scan (exact-fingerprint
    /// hits plus `projection_hits`).
    pub hits: u64,
    /// Subset of `hits` served by projecting a *covering* cached state
    /// — an entry with the same scan source whose grouping sets and
    /// aggregate states include everything the plan needs (e.g. plans
    /// differing only in output aliases, or a sub-shape of a cached
    /// merged superplan).
    pub projection_hits: u64,
    /// Plans that had to scan (includes invalidated entries).
    pub misses: u64,
    /// States inserted into the cache.
    pub inserts: u64,
    /// States evicted by the LRU policy.
    pub evictions: u64,
    /// Stale states dropped because the table version moved.
    pub invalidations: u64,
    /// Shared scans executed on behalf of batched misses.
    pub batch_scans: u64,
    /// Distinct plans served by those shared scans.
    pub batched_plans: u64,
    /// Sampled plans that bypassed the cache entirely.
    pub bypasses: u64,
    /// Cached states incrementally refreshed after appends (delta scan
    /// + merge instead of a full recompute).
    pub refreshes: u64,
    /// Delta rows scanned by those refreshes — the *entire* scan work
    /// the refreshed plans paid (a full recompute would have rescanned
    /// the whole table per plan).
    pub refresh_rows: u64,
    /// Outdated entries that could not be refreshed incrementally
    /// (non-append lineage, oversized delta, refresh disabled, or a
    /// refresh failure) and fell back to invalidate + recompute.
    pub refresh_fallbacks: u64,
}

impl CacheStats {
    /// Fraction of cacheable plan executions served from the cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The service's counters, registered under `service.cache.*` in the
/// database's metrics registry — [`CacheStats`] is a thin view over the
/// registry cells (one number, one cell: the legacy snapshot and
/// `Service::metrics` can never diverge).
#[derive(Debug)]
struct StatCounters {
    hits: Counter,
    projection_hits: Counter,
    misses: Counter,
    inserts: Counter,
    evictions: Counter,
    invalidations: Counter,
    batch_scans: Counter,
    batched_plans: Counter,
    bypasses: Counter,
    refreshes: Counter,
    refresh_rows: Counter,
    refresh_fallbacks: Counter,
}

impl StatCounters {
    fn registered(registry: &Registry) -> StatCounters {
        StatCounters {
            hits: registry.register_counter("service.cache.hits"),
            projection_hits: registry.register_counter("service.cache.projection_hits"),
            misses: registry.register_counter("service.cache.misses"),
            inserts: registry.register_counter("service.cache.inserts"),
            evictions: registry.register_counter("service.cache.evictions"),
            invalidations: registry.register_counter("service.cache.invalidations"),
            batch_scans: registry.register_counter("service.cache.batch_scans"),
            batched_plans: registry.register_counter("service.cache.batched_plans"),
            bypasses: registry.register_counter("service.cache.bypasses"),
            refreshes: registry.register_counter("service.cache.refreshes"),
            refresh_rows: registry.register_counter("service.cache.refresh_rows"),
            refresh_fallbacks: registry.register_counter("service.cache.refresh_fallbacks"),
        }
    }

    fn add(counter: &Counter, n: u64) {
        counter.add(n);
    }

    fn snapshot(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            projection_hits: self.projection_hits.get(),
            misses: self.misses.get(),
            inserts: self.inserts.get(),
            evictions: self.evictions.get(),
            invalidations: self.invalidations.get(),
            batch_scans: self.batch_scans.get(),
            batched_plans: self.batched_plans.get(),
            bypasses: self.bypasses.get(),
            refreshes: self.refreshes.get(),
            refresh_rows: self.refresh_rows.get(),
            refresh_fallbacks: self.refresh_fallbacks.get(),
        }
    }
}

/// One cached execution: the *unfinalized* mergeable state — served to
/// sub-shape plans via [`PartialAggState::project_for`]
/// (`LruCache::lookup_covering`) — plus its finalized output, memoized
/// once at insert so an exact hit costs one result copy instead of a
/// state deep-clone and re-sort.
#[derive(Debug, Clone)]
struct CachedState {
    partial: Arc<PartialAggState>,
    output: Arc<PlanOutput>,
}

/// Outcome of a cache probe.
enum Lookup {
    /// Fresh state for the current table version.
    Hit(CachedState),
    /// An entry exists but was computed at a different table version.
    /// It is left in place: the caller either refreshes it
    /// incrementally (append lineage) or removes it and recomputes.
    Outdated {
        /// The outdated cached state.
        state: CachedState,
        /// The [`Table::version`] it was computed against.
        version: u64,
    },
    /// No entry.
    Miss,
}

/// Fingerprint-keyed LRU cache of unfinalized partial-aggregate states.
#[derive(Debug, Default)]
struct LruCache {
    capacity: usize,
    /// Monotonic access clock; larger = more recently used.
    tick: u64,
    entries: HashMap<String, CacheEntry>,
}

#[derive(Debug)]
struct CacheEntry {
    state: CachedState,
    /// Scan-source identity ([`source_key`]) — projection may only
    /// serve plans with the identical scan domain.
    source: String,
    /// The plan that produced this state — what incremental refresh
    /// executes over the delta rows after an append.
    phys: PhysicalPlan,
    /// [`Table::version`] the state was computed against.
    version: u64,
    last_used: u64,
}

impl LruCache {
    fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            tick: 0,
            entries: HashMap::new(),
        }
    }

    fn lookup(&mut self, key: &str, version: u64) -> Lookup {
        match self.entries.get_mut(key) {
            None => Lookup::Miss,
            Some(e) if e.version != version => Lookup::Outdated {
                state: e.state.clone(),
                version: e.version,
            },
            Some(e) => {
                self.tick += 1;
                e.last_used = self.tick;
                Lookup::Hit(e.state.clone())
            }
        }
    }

    /// Drop `key` only if it is still stamped at `version` (so a racing
    /// refresh that already re-stamped the entry is not discarded).
    fn remove_if_version(&mut self, key: &str, version: u64) {
        if self.entries.get(key).is_some_and(|e| e.version == version) {
            self.entries.remove(key);
        }
    }

    /// Every entry for `table` stamped at a version other than
    /// `current_version` — the eager-refresh work list after an append.
    fn stale_entries_for(
        &self,
        table: &str,
        current_version: u64,
    ) -> Vec<(String, u64, PhysicalPlan, CachedState)> {
        self.entries
            .iter()
            .filter(|(_, e)| e.phys.table() == table && e.version != current_version)
            .map(|(k, e)| (k.clone(), e.version, e.phys.clone(), e.state.clone()))
            .collect()
    }

    /// Serve a cache miss from a *covering* entry: same scan source and
    /// table version, with every grouping set and aggregate state `phys`
    /// needs ([`PartialAggState::project_for`]). Covers plans whose
    /// fingerprints differ only in output shape (aliases) and sub-shapes
    /// of cached merged superplans. Any covering entry serves — all
    /// projections are bit-identical to a standalone execution by the
    /// plan-layer contract.
    fn lookup_covering(
        &mut self,
        source: &str,
        version: u64,
        phys: &PhysicalPlan,
    ) -> Option<PartialAggState> {
        let (key, projected) = self.entries.iter().find_map(|(k, e)| {
            if e.version != version || e.source != source {
                return None;
            }
            e.state
                .partial
                .project_for(phys)
                .ok()
                .map(|p| (k.clone(), p))
        })?;
        self.tick += 1;
        if let Some(entry) = self.entries.get_mut(&key) {
            entry.last_used = self.tick;
        }
        Some(projected)
    }

    /// Insert, evicting least-recently-used entries beyond capacity.
    /// Returns the number of evictions.
    fn insert(
        &mut self,
        key: String,
        source: String,
        version: u64,
        phys: PhysicalPlan,
        state: CachedState,
    ) -> u64 {
        if self.capacity == 0 {
            return 0;
        }
        // The cache keeps the newest version per fingerprint: a request
        // pinned to an older snapshot (racing an append) must not stomp
        // state another path already brought forward. Versions are
        // globally monotonic, so a larger stamp is always newer.
        if self
            .entries
            .get(&key)
            .is_some_and(|existing| existing.version > version)
        {
            return 0;
        }
        self.tick += 1;
        self.entries.insert(
            key,
            CacheEntry {
                state,
                source,
                phys,
                version,
                last_used: self.tick,
            },
        );
        let mut evicted = 0;
        while self.entries.len() > self.capacity {
            let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            self.entries.remove(&victim);
            evicted += 1;
        }
        evicted
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn clear(&mut self) {
        self.entries.clear();
    }

    /// The plans behind every cached state — what [`Service::persist`]
    /// spills so a restarted service can warm itself back up.
    fn plans(&self) -> Vec<PhysicalPlan> {
        self.entries.values().map(|e| e.phys.clone()).collect()
    }
}

/// One cache-missing plan registered with a batch.
#[derive(Debug, Clone)]
struct BatchPlan {
    fingerprint: String,
    phys: PhysicalPlan,
}

/// A per-table batch: the first miss opens it (leader), concurrent
/// misses join while it is open, the leader closes it after the batch
/// window, executes the merged scans, and publishes per-fingerprint
/// results.
#[derive(Debug, Default)]
struct Batch {
    state: Mutex<BatchState>,
    cv: Condvar,
}

#[derive(Debug)]
struct BatchState {
    /// Still accepting joiners.
    open: bool,
    plans: Vec<BatchPlan>,
    results: HashMap<String, DbResult<Arc<PlanOutput>>>,
    done: bool,
}

impl Default for BatchState {
    fn default() -> Self {
        BatchState {
            open: true,
            plans: Vec::new(),
            results: HashMap::new(),
            done: false,
        }
    }
}

/// Lock a batch's state, recovering from poisoning: the state is plain
/// flags and maps whose invariants hold at every await point, and a
/// joiner must be able to observe `done` even after a panic elsewhere.
fn lock_state(batch: &Batch) -> MutexGuard<'_, BatchState> {
    batch.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Unwinding safety for batch joiners: if the leader panics while
/// executing (e.g. a partition worker dies), this guard still closes
/// the batch and publishes `done` from its `Drop`, so joiners fail with
/// a clean error instead of waiting on the condvar forever.
struct LeaderGuard<'a> {
    batch: &'a Batch,
    armed: bool,
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let mut st = lock_state(self.batch);
            st.open = false;
            st.done = true;
            self.batch.cv.notify_all();
        }
    }
}

#[derive(Debug, Default)]
struct Batcher {
    /// (table name, table version) -> currently open batch. The version
    /// is part of the key so a request holding a *newer* registration
    /// of a table never joins a batch whose leader is scanning the old
    /// one — batch-mates always merge, scan, and finalize against the
    /// same registration.
    pending: Mutex<HashMap<(String, u64), Arc<Batch>>>,
}

impl Batcher {
    /// Register `misses` for `table` with the open batch (joining it)
    /// or a new one (becoming its leader). Blocks until results for all
    /// registered fingerprints are published.
    fn submit(
        &self,
        inner: &ServiceInner,
        table: &Arc<Table>,
        misses: &[BatchPlan],
        span: &Span,
    ) -> HashMap<String, DbResult<Arc<PlanOutput>>> {
        let register = |state: &mut BatchState| {
            for m in misses {
                if !state.plans.iter().any(|p| p.fingerprint == m.fingerprint) {
                    state.plans.push(m.clone());
                }
            }
        };
        let key = (table.name().to_string(), table.version());
        let (batch, leader) = {
            let mut pending = self.pending.lock_recovered();
            let joined = pending.get(&key).and_then(|b| {
                // Joining and closing both hold the batch's state lock,
                // so a join observed open is guaranteed execution.
                let mut st = lock_state(b);
                if st.open {
                    register(&mut st);
                    Some(b.clone())
                } else {
                    None
                }
            });
            match joined {
                Some(b) => (b, false),
                None => {
                    let b = Arc::new(Batch::default());
                    register(&mut lock_state(&b));
                    pending.insert(key.clone(), b.clone());
                    (b, true)
                }
            }
        };

        if leader {
            if !inner.config.batch_window.is_zero() {
                std::thread::sleep(inner.config.batch_window);
            }
            // Stop routing new joiners here, then close the batch.
            {
                let mut pending = self.pending.lock_recovered();
                if let Some(b) = pending.get(&key) {
                    if Arc::ptr_eq(b, &batch) {
                        pending.remove(&key);
                    }
                }
            }
            // From here to publication, an unwind must still release
            // the joiners (they would otherwise wait forever).
            let mut guard = LeaderGuard {
                batch: &batch,
                armed: true,
            };
            let plans = {
                let mut st = lock_state(&batch);
                st.open = false;
                st.plans.clone()
            };
            // Only the leader's request records the batch scan in its
            // trace; joiners just wait and therefore show nothing —
            // which is exactly what they cost.
            let results = inner.execute_batch(table, &plans, span);
            {
                let mut st = lock_state(&batch);
                st.results = results;
                st.done = true;
            }
            guard.armed = false;
            batch.cv.notify_all();
        }

        let st = lock_state(&batch);
        let st = batch
            .cv
            .wait_while(st, |s| !s.done)
            .unwrap_or_else(PoisonError::into_inner);
        misses
            .iter()
            .map(|m| {
                (
                    m.fingerprint.clone(),
                    st.results.get(&m.fingerprint).cloned().unwrap_or_else(|| {
                        Err(DbError::Internal(
                            "batch leader failed before publishing results".to_string(),
                        ))
                    }),
                )
            })
            .collect()
    }
}

/// The serving layer's telemetry pipeline: registry sampler, watchdog,
/// and (optionally) the flight recorder breaches dump into. Built from
/// [`crate::config::TelemetryConfig`]; absent entirely when disabled.
#[derive(Debug)]
struct Telemetry {
    sampler: Sampler,
    watchdog: Watchdog,
    recorder: Option<FlightRecorder>,
    /// [`ServiceConfig::fingerprint`], stamped into every dump.
    fingerprint: String,
    /// `telemetry.windows`: sampler windows closed.
    windows: Counter,
    /// `telemetry.breaches`: watchdog breaches observed.
    breaches: Counter,
    /// `telemetry.dumps`: flight-recorder dumps written.
    dumps: Counter,
}

impl Telemetry {
    /// Build the pipeline from `config` (`None` when disabled): the
    /// sampler runs on the service's injected clock, and the watchdog
    /// rule catalog watches the latency histogram, cache hit rate, WAL
    /// backlog, and refresh fallbacks.
    fn from_config(config: &ServiceConfig, obs: &Obs) -> Option<Telemetry> {
        let t = &config.telemetry;
        if !t.enabled {
            return None;
        }
        let sampler = obs.sampler(SamplerConfig {
            interval_ns: t.interval_ns,
            capacity: t.window_capacity,
        });
        let watchdog = Watchdog::new(vec![
            Rule::new(
                "latency-p99",
                RuleKind::P99Above {
                    histogram: "service.recommend_ns".into(),
                    bound_ns: t.p99_bound_ns,
                },
            ),
            Rule::new(
                "cache-hit-rate",
                RuleKind::HitRateBelow {
                    hits: "service.cache.hits".into(),
                    misses: "service.cache.misses".into(),
                    floor: t.hit_rate_floor,
                    min_events: t.hit_rate_min_events,
                },
            ),
            Rule::new(
                "wal-backlog-growth",
                RuleKind::MonotonicGrowth {
                    gauge: "store.wal.bytes_pending".into(),
                    windows: t.wal_growth_windows,
                },
            ),
            Rule::new(
                "refresh-fallback-spike",
                RuleKind::CounterSpike {
                    counter: "service.cache.refresh_fallbacks".into(),
                    max_per_window: t.refresh_fallback_max,
                },
            ),
        ]);
        let registry = obs.registry();
        Some(Telemetry {
            sampler,
            watchdog,
            recorder: t.dump_dir.as_ref().map(FlightRecorder::new),
            fingerprint: config.fingerprint(),
            windows: registry.register_counter("telemetry.windows"),
            breaches: registry.register_counter("telemetry.breaches"),
            dumps: registry.register_counter("telemetry.dumps"),
        })
    }
}

#[derive(Debug)]
struct ServiceInner {
    engine: SeeDb,
    config: ServiceConfig,
    cache: Mutex<LruCache>,
    batcher: Batcher,
    stats: StatCounters,
    next_session: AtomicU64,
    /// The database's observability bundle, adopted at construction so
    /// `service.*`, `exec.*`, and `store.*` metrics share one registry
    /// and all spans share one tracer and clock.
    obs: Obs,
    /// `service.recommend_ns`: end-to-end recommend latency, measured
    /// on the bundle's injected clock (virtual under the soak harness).
    recommend_ns: Histogram,
    /// Partitioned-execution handles passed into every shared scan.
    exec_metrics: ExecMetrics,
    /// Telemetry pipeline (sampler + watchdog + flight recorder), or
    /// `None` when disabled by configuration.
    telemetry: Option<Telemetry>,
    /// EXPLAIN ANALYZE: operator recording is active (flipped around
    /// one request by [`Service::recommend_explained`]).
    explain_on: AtomicBool,
    /// Operators recorded by the explained request in execution order.
    explain_ops: Mutex<Vec<ExplainOp>>,
    /// The most recent rendered explain report, attached to dumps.
    last_explain: Mutex<Option<String>>,
}

/// A long-lived, thread-safe recommendation service over one shared
/// database. See the [module docs](self) for the architecture; clone
/// handles freely (`Arc` inside) and call [`Service::recommend`] from as
/// many threads as you like.
#[derive(Debug, Clone)]
pub struct Service {
    inner: Arc<ServiceInner>,
}

impl Service {
    /// Wrap `db` with the given serving configuration. The service
    /// adopts the database's [`Obs`] bundle ([`Database::obs`]), so its
    /// `service.*` counters land in the same registry as the `exec.*`
    /// and `store.*` ones and [`Service::metrics`] reports all three
    /// layers at once.
    pub fn new(db: Arc<Database>, config: ServiceConfig) -> Self {
        let obs = db.obs().clone();
        let cache = Mutex::new(LruCache::new(config.cache_capacity));
        let stats = StatCounters::registered(obs.registry());
        let recommend_ns = obs.registry().register_histogram("service.recommend_ns");
        let exec_metrics = ExecMetrics::new(&obs);
        let telemetry = Telemetry::from_config(&config, &obs);
        Service {
            inner: Arc::new(ServiceInner {
                engine: SeeDb::new(db, config.seedb.clone()),
                config,
                cache,
                batcher: Batcher::default(),
                stats,
                next_session: AtomicU64::new(1),
                obs,
                recommend_ns,
                exec_metrics,
                telemetry,
                explain_on: AtomicBool::new(false),
                explain_ops: Mutex::new(Vec::new()),
                last_explain: Mutex::new(None),
            }),
        }
    }

    /// Wrap `db` with [`ServiceConfig::recommended`].
    pub fn with_defaults(db: Arc<Database>) -> Self {
        Service::new(db, ServiceConfig::recommended())
    }

    /// The wrapped database.
    pub fn database(&self) -> &Arc<Database> {
        self.inner.engine.database()
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.inner.config
    }

    /// The pipeline configuration shared by every session.
    pub fn seedb_config(&self) -> &SeeDbConfig {
        &self.inner.config.seedb
    }

    /// The workload access tracker shared by every session.
    pub fn tracker(&self) -> &AccessTracker {
        self.inner.engine.tracker()
    }

    /// Open a new analyst session. Sessions are cheap handles sharing
    /// this service's engine, cache, and batcher.
    pub fn session(&self) -> Session {
        Session {
            service: self.clone(),
            id: self.inner.next_session.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Recommend views for an analyst query, serving repeated work from
    /// the shared cache and batching concurrent cache misses.
    ///
    /// Byte-identical to [`SeeDb::recommend`] under the same
    /// configuration, for every cache/batch state. The phased execution
    /// strategies bypass the cache (they scan the table in slices and
    /// prune mid-flight); the batch strategies are the serving path.
    ///
    /// # Errors
    /// Same as [`SeeDb::recommend`].
    pub fn recommend(&self, analyst: &AnalystQuery) -> DbResult<Recommendation> {
        self.recommend_for_session(analyst, None)
    }

    /// [`Service::recommend`] optionally tagged with a session id: the
    /// request's root trace span carries `session=<id>`, which is what
    /// [`Session::last_trace`] filters the trace ring by.
    fn recommend_for_session(
        &self,
        analyst: &AnalystQuery,
        session: Option<u64>,
    ) -> DbResult<Recommendation> {
        let inner = &self.inner;
        let root = inner.obs.tracer().root_span("recommend");
        root.attr("table", &analyst.table);
        if let Some(id) = session {
            root.attr("session", id);
        }
        let start_ns = inner.obs.now_ns();
        let result = inner.engine.recommend_via(analyst, &root, |plans, span| {
            inner.execute_plans(plans, span)
        });
        inner
            .recommend_ns
            .record(inner.obs.now_ns().saturating_sub(start_ns));
        // Opportunistic telemetry: the serve path doubles as the
        // sampler's scheduler, so no background thread exists and the
        // whole pipeline stays deterministic under an injected clock.
        inner.telemetry_tick();
        result
    }

    /// [`Service::recommend`] with EXPLAIN ANALYZE: run the request with
    /// operator recording on and return the per-operator stats report
    /// alongside the recommendation. On a quiescent service the
    /// report's scan totals equal the `exec.*` registry counter deltas
    /// exactly ([`ExplainReport::reconciles`]); the rendered report is
    /// also attached to subsequent flight-recorder dumps.
    ///
    /// # Errors
    /// Same as [`Service::recommend`].
    pub fn recommend_explained(
        &self,
        analyst: &AnalystQuery,
    ) -> DbResult<(Recommendation, ExplainReport)> {
        let inner = &self.inner;
        let before = inner.engine.database().cost();
        inner.explain_ops.lock_recovered().clear();
        inner.explain_on.store(true, Ordering::SeqCst);
        let result = self.recommend_for_session(analyst, None);
        inner.explain_on.store(false, Ordering::SeqCst);
        let ops = std::mem::take(&mut *inner.explain_ops.lock_recovered());
        let cost_delta = inner.engine.database().cost().since(&before);
        let recommendation = result?;
        let report = ExplainReport { ops, cost_delta };
        *inner.last_explain.lock_recovered() = Some(report.render());
        Ok((recommendation, report))
    }

    /// Current watchdog verdict: healthy until any rule has tripped,
    /// plus the retained breach log. Trivially healthy (zero windows)
    /// when telemetry is disabled.
    pub fn health(&self) -> HealthStatus {
        match &self.inner.telemetry {
            Some(t) => t.watchdog.status(),
            None => HealthStatus {
                healthy: true,
                windows_evaluated: 0,
                breaches: Vec::new(),
            },
        }
    }

    /// Force-close a sampler window *now*, run the watchdog over it
    /// (breaches dump like any other), and return it. `None` when
    /// telemetry is disabled. The demo CLI's `:watch` drives this.
    pub fn sample_window(&self) -> Option<Window> {
        let t = self.inner.telemetry.as_ref()?;
        let window = t.sampler.sample_now();
        self.inner.telemetry_observe(&window);
        Some(window)
    }

    /// The sampler's windows, oldest first (empty when telemetry is
    /// disabled or nothing was sampled yet).
    pub fn telemetry_windows(&self) -> Vec<Window> {
        self.inner
            .telemetry
            .as_ref()
            .map(|t| t.sampler.windows())
            .unwrap_or_default()
    }

    /// The configured sampling interval, or `None` when telemetry is
    /// disabled.
    pub fn telemetry_interval(&self) -> Option<std::time::Duration> {
        self.inner
            .telemetry
            .as_ref()
            .map(|t| std::time::Duration::from_nanos(t.sampler.interval_ns()))
    }

    /// One [`Rule::describe`] line per configured watchdog rule (empty
    /// when telemetry is disabled) — the `:health` rule catalog.
    pub fn watchdog_rules(&self) -> Vec<String> {
        self.inner
            .telemetry
            .as_ref()
            .map(|t| t.watchdog.rules().iter().map(Rule::describe).collect())
            .unwrap_or_default()
    }

    /// Recommend views for an analyst query given as SQL.
    ///
    /// # Errors
    /// Parse errors (with token positions) plus everything
    /// [`Service::recommend`] can return.
    pub fn recommend_sql(&self, sql: &str) -> DbResult<Recommendation> {
        let analyst = AnalystQuery::from_sql(sql)?;
        self.recommend(&analyst)
    }

    /// Append rows to a registered table (live ingest) and maintain the
    /// cache per the configured [`crate::live::RefreshConfig`]:
    ///
    /// * **eager** mode immediately refreshes every cached state of the
    ///   table by scanning only the appended delta rows, so the next
    ///   probe is an exact hit;
    /// * **lazy** mode (the default) leaves refreshing to the next
    ///   probe of each entry;
    /// * **off** lets outdated entries invalidate and recompute.
    ///
    /// Concurrent queries are safe throughout: requests already holding
    /// the old version's snapshot keep scanning it untouched (appends
    /// never mutate shared segments), and every cache entry is
    /// version-stamped.
    ///
    /// # Errors
    /// Same as [`memdb::Database::append_rows`]; on error nothing is
    /// published and the cache is untouched.
    pub fn append_rows(&self, table: &str, rows: Vec<Vec<Value>>) -> DbResult<Arc<Table>> {
        let table = self.inner.engine.database().append_rows(table, rows)?;
        if self.inner.config.refresh.mode == RefreshMode::Eager {
            self.inner.refresh_table_entries(&table);
        }
        Ok(table)
    }

    /// Open a durable database directory ([`memdb::Database::open`])
    /// and serve from it, **warm-started**: if a previous
    /// [`Service::persist`] spilled its cached plan set, every spilled
    /// plan is re-executed once at open (against the recovered tables)
    /// so the first post-restart round is served from the cache like
    /// the process had never died. Warm-up is best-effort — a missing
    /// or corrupted spill reads as an empty set (a cold start), and
    /// plans whose tables vanished or fail to execute are skipped
    /// silently.
    ///
    /// # Errors
    /// Same as [`memdb::Database::open`] (`Io` for a missing/unreadable
    /// directory, `Corrupt` for failed checksums or invariants).
    pub fn open(dir: impl AsRef<std::path::Path>, config: ServiceConfig) -> DbResult<Service> {
        Service::open_with(dir, config, memdb::DurabilityConfig::recommended())
    }

    /// [`Service::open`] with explicit durability knobs.
    ///
    /// # Errors
    /// Same as [`Service::open`].
    pub fn open_with(
        dir: impl AsRef<std::path::Path>,
        config: ServiceConfig,
        durability: memdb::DurabilityConfig,
    ) -> DbResult<Service> {
        Service::open_with_obs(dir, config, durability, Obs::default())
    }

    /// [`Service::open_with`] rooted on an injected observability
    /// bundle (see [`Database::open_with_obs`]) — the soak harness
    /// passes its virtual-clock bundle here so recovery and serving
    /// telemetry is deterministic per seed.
    ///
    /// # Errors
    /// Same as [`Service::open`].
    pub fn open_with_obs(
        dir: impl AsRef<std::path::Path>,
        config: ServiceConfig,
        durability: memdb::DurabilityConfig,
        obs: Obs,
    ) -> DbResult<Service> {
        let dir = dir.as_ref();
        let db = Arc::new(Database::open_with_obs(dir, durability, obs)?);
        let service = Service::new(db, config);
        // The spill holds cache hints, not authoritative data: an
        // unreadable/corrupted file degrades to a cold start, it never
        // fails the open.
        let warm =
            memdb::store::read_plans(&dir.join(memdb::store::WARM_PLANS_FILE)).unwrap_or_default();
        for phys in warm {
            let Ok(table) = service.inner.engine.database().table(phys.table()) else {
                continue;
            };
            let _ = service.inner.execute_single(&table, &phys, &Span::none());
        }
        Ok(service)
    }

    /// Persist this service's database into `dir`
    /// ([`memdb::Database::save`] — the catalog stays durable there
    /// afterwards) and spill the cached plan set alongside it, so
    /// [`Service::open`] can warm-start: the spill holds plan
    /// *fingerprint material* (the plans themselves), not result data —
    /// a reopened service recomputes against the recovered tables and
    /// serves byte-identical results from then on.
    ///
    /// # Errors
    /// `Io` on filesystem failures.
    pub fn persist(&self, dir: impl AsRef<std::path::Path>) -> DbResult<()> {
        let dir = dir.as_ref();
        let db = self.inner.engine.database();
        // Already durable in this directory → an incremental checkpoint
        // (seal the WAL tail, keep unchanged tables' chunk files)
        // instead of rewriting every table from scratch.
        let same_dir = db.durability_summary().is_some_and(|s| {
            match (std::fs::canonicalize(&s.dir), std::fs::canonicalize(dir)) {
                (Ok(a), Ok(b)) => a == b,
                _ => false,
            }
        });
        if same_dir {
            db.checkpoint()?;
        } else {
            db.save(dir)?;
        }
        let plans = self.inner.cache.lock_recovered().plans();
        memdb::store::write_plans(&dir.join(memdb::store::WARM_PLANS_FILE), &plans)
    }

    /// Snapshot the cache/batch counters.
    ///
    /// A thin view over the metrics registry's `service.cache.*`
    /// counters — by construction identical to the matching entries of
    /// [`Service::metrics`].
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.stats.snapshot()
    }

    /// Snapshot every metric of every layer (serve → execute → store)
    /// from the shared registry. [`MetricsSnapshot::to_json`] renders
    /// it as deterministic sorted JSON.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.obs.registry().snapshot()
    }

    /// The observability bundle this service shares with its database.
    pub fn obs(&self) -> &Obs {
        &self.inner.obs
    }

    /// Enable or disable per-request trace recording. Disabled (the
    /// default), span creation is a no-op returning [`Span::none`] —
    /// the recommend path pays one atomic load.
    pub fn set_trace_enabled(&self, enabled: bool) {
        self.inner.obs.tracer().set_enabled(enabled);
    }

    /// Is per-request trace recording enabled?
    pub fn trace_enabled(&self) -> bool {
        self.inner.obs.tracer().is_enabled()
    }

    /// The most recently completed request trace, if tracing is enabled
    /// and any request finished since.
    pub fn last_trace(&self) -> Option<TraceData> {
        self.inner.obs.tracer().last()
    }

    /// Number of states currently cached.
    pub fn cache_len(&self) -> usize {
        self.inner.cache.lock_recovered().len()
    }

    /// Drop every cached state (counters are kept).
    pub fn clear_cache(&self) {
        self.inner.cache.lock_recovered().clear();
    }
}

/// One analyst's handle on a [`Service`]. Sessions exist so the demo
/// and tests can tell concurrent request streams apart; all heavy state
/// (cache, batcher, workload tracker) is shared through the service.
#[derive(Debug, Clone)]
pub struct Session {
    service: Service,
    id: u64,
}

impl Session {
    /// This session's id (unique within its service).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The service this session belongs to.
    pub fn service(&self) -> &Service {
        &self.service
    }

    /// Recommend views for an analyst query (see [`Service::recommend`]).
    ///
    /// # Errors
    /// Same as [`Service::recommend`].
    pub fn recommend(&self, analyst: &AnalystQuery) -> DbResult<Recommendation> {
        self.service.recommend_for_session(analyst, Some(self.id))
    }

    /// Recommend views for a SQL analyst query.
    ///
    /// # Errors
    /// Same as [`Service::recommend_sql`].
    pub fn recommend_sql(&self, sql: &str) -> DbResult<Recommendation> {
        let analyst = AnalystQuery::from_sql(sql)?;
        self.recommend(&analyst)
    }

    /// The most recent completed trace of a request made *through this
    /// session* (tracing must be enabled on the service; other
    /// sessions' requests are skipped).
    pub fn last_trace(&self) -> Option<TraceData> {
        self.service
            .inner
            .obs
            .tracer()
            .last_with_root_attr("session", &self.id.to_string())
    }

    /// Append rows to a registered table through this session's
    /// service (see [`Service::append_rows`]). Safe to call while other
    /// sessions are mid-recommendation: they keep their snapshots.
    ///
    /// # Errors
    /// Same as [`Service::append_rows`].
    pub fn append_rows(&self, table: &str, rows: Vec<Vec<Value>>) -> DbResult<Arc<Table>> {
        self.service.append_rows(table, rows)
    }
}

/// The scan-source identity of a physical plan: plans may merge into one
/// shared scan iff these match (same scan domain, same row order).
fn source_key(phys: &PhysicalPlan) -> String {
    let (filter, row_range) = match phys {
        PhysicalPlan::Aggregate { query, row_range } => (&query.filter, row_range),
        PhysicalPlan::GroupingSets { query, row_range } => (&query.filter, row_range),
    };
    // The table name is included for clarity even though version stamps
    // are already globally unique per registration (the cache's version
    // check alone rules cross-table reuse out).
    format!(
        "{}|{:?}|{}",
        phys.table(),
        row_range,
        filter.as_ref().map(Expr::to_sql).unwrap_or_default()
    )
}

/// The source parts a combined plan must reproduce.
fn source_parts(phys: &PhysicalPlan) -> (Option<Expr>, Option<(usize, usize)>) {
    match phys {
        PhysicalPlan::Aggregate { query, row_range } => (query.filter.clone(), *row_range),
        PhysicalPlan::GroupingSets { query, row_range } => (query.filter.clone(), *row_range),
    }
}

/// Grouping set(s) and aggregates of a physical plan.
fn shape_parts(phys: &PhysicalPlan) -> (Vec<Vec<String>>, &[AggSpec]) {
    match phys {
        PhysicalPlan::Aggregate { query, .. } => (vec![query.group_by.clone()], &query.aggregates),
        PhysicalPlan::GroupingSets { query, .. } => (query.sets.clone(), &query.aggregates),
    }
}

/// The one scan these partitions jointly performed, for cost recording.
fn scan_stats(partial: &PartialAggState) -> ExecStats {
    let mut stats = *partial.stats();
    stats.table_scans = 1;
    stats
}

impl ServiceInner {
    fn workers(&self) -> usize {
        self.config.seedb.execution.workers()
    }

    /// One sampler step on the serve path: if the interval elapsed (per
    /// the injected clock), close a window and run the watchdog on it.
    /// One atomic load when not due; nothing when telemetry is off.
    fn telemetry_tick(&self) {
        let Some(t) = &self.telemetry else { return };
        if let Some(window) = t.sampler.maybe_tick() {
            self.telemetry_observe(&window);
        }
    }

    /// Watchdog a freshly closed window; every breach lands in the
    /// breach log and — when a dump directory is configured — produces
    /// a flight-recorder dump: the breach, all retained windows, the
    /// recent traces, the config fingerprint, and the last explain
    /// report. Dump writes are best-effort (a full disk must not fail
    /// the serve path); successes count into `telemetry.dumps`.
    fn telemetry_observe(&self, window: &Window) {
        let Some(t) = &self.telemetry else { return };
        t.windows.inc();
        let breaches = t.watchdog.evaluate(window);
        if breaches.is_empty() {
            return;
        }
        t.breaches.add(breaches.len() as u64);
        if let Some(recorder) = &t.recorder {
            let windows = t.sampler.windows();
            let traces = self.obs.tracer().recent(DUMP_TRACES);
            let explain = self.last_explain.lock_recovered().clone();
            for breach in &breaches {
                if recorder
                    .record(
                        breach,
                        &windows,
                        &traces,
                        &t.fingerprint,
                        explain.as_deref(),
                    )
                    .is_ok()
                {
                    t.dumps.inc();
                }
            }
        }
    }

    /// Record one EXPLAIN ANALYZE operator (no-op unless a
    /// [`Service::recommend_explained`] request is in flight).
    fn record_op(&self, label: impl Into<String>, stats: ExecStats) {
        if !self.explain_on.load(Ordering::Relaxed) {
            return;
        }
        self.explain_ops.lock_recovered().push(ExplainOp {
            label: label.into(),
            stats,
        });
    }

    /// The cache/batch-aware executor handed to the engine: one outcome
    /// per plan, in input order, byte-identical to a cold
    /// [`memdb::run_batch`].
    fn execute_plans(&self, plans: &[LogicalPlan], span: &Span) -> Vec<DbResult<PlanOutput>> {
        let mut out: Vec<Option<DbResult<PlanOutput>>> = Vec::with_capacity(plans.len());
        out.resize_with(plans.len(), || None);
        // Slot indices come straight from `enumerate` over `plans`, so
        // they are always in range; routing them through `get_mut`
        // keeps this module free of panicking index expressions.
        fn fill(out: &mut [Option<DbResult<PlanOutput>>], i: usize, r: DbResult<PlanOutput>) {
            if let Some(slot) = out.get_mut(i) {
                *slot = Some(r);
            }
        }

        struct Miss {
            index: usize,
            plan: BatchPlan,
        }
        // All plans of one request target one table, but group by
        // (name, version) anyway so the executor stays correct for
        // arbitrary plan sets — and so plans that straddle a concurrent
        // re-registration never share one table snapshot.
        let mut misses: HashMap<(String, u64), (Arc<Table>, Vec<Miss>)> = HashMap::new();
        // One snapshot per table name for the WHOLE request: every plan
        // of this request executes against the same table version even
        // if an append/replacement publishes mid-loop — a request is
        // never a torn mix of two versions.
        let mut snapshots: HashMap<String, Arc<Table>> = HashMap::new();

        let probe = span.child("cache_probe");
        for (i, plan) in plans.iter().enumerate() {
            let phys = match plan.lower() {
                Ok(p) => p,
                Err(e) => {
                    fill(&mut out, i, Err(e));
                    continue;
                }
            };
            // Sampled plans are not cacheable (per-partition samples do
            // not compose, and a cached sample would hide resampling).
            if phys.is_sampled() {
                StatCounters::add(&self.stats.bypasses, 1);
                let result = self.engine.database().run_physical(&phys);
                if let Ok(o) = &result {
                    self.record_op("bypass_scan", *o.stats());
                }
                fill(&mut out, i, result);
                continue;
            }
            let table = match snapshots.get(phys.table()) {
                Some(t) => t.clone(),
                None => match self.engine.database().table(phys.table()) {
                    Ok(t) => {
                        snapshots.insert(phys.table().to_string(), t.clone());
                        t
                    }
                    Err(e) => {
                        fill(&mut out, i, Err(e));
                        continue;
                    }
                },
            };
            let fingerprint = phys.fingerprint();
            let lookup = self
                .cache
                .lock_recovered()
                .lookup(&fingerprint, table.version());
            match lookup {
                Lookup::Hit(state) => {
                    StatCounters::add(&self.stats.hits, 1);
                    self.record_op("cache_hit", cache_only_stats(CacheOutcome::Hit));
                    let mut output = (*state.output).clone();
                    output.set_cache(CacheOutcome::Hit);
                    fill(&mut out, i, Ok(output));
                }
                miss_or_outdated => {
                    if let Lookup::Outdated { state, version } = miss_or_outdated {
                        // Live ingest: an entry stamped at an append
                        // ancestor is refreshed by scanning only the
                        // delta rows and merging — byte-identical to a
                        // cold run at the current version.
                        if let RefreshDecision::Incremental { delta } =
                            self.config.refresh.decide(&table, version)
                        {
                            if let Some(output) = self.refresh_into_cache(
                                &fingerprint,
                                &phys,
                                &table,
                                &state,
                                delta,
                                &probe,
                            ) {
                                let mut output = (*output).clone();
                                output.set_cache(CacheOutcome::Refreshed);
                                fill(&mut out, i, Ok(output));
                                continue;
                            }
                        }
                        // Fallback: drop the outdated entry and
                        // recompute below — but only when the entry is
                        // genuinely *older* than our snapshot. An entry
                        // stamped at a NEWER version (a concurrent
                        // append already eagerly refreshed it past the
                        // table this request is pinned to) is fresh for
                        // everyone else; leave it alone and just
                        // recompute at our own snapshot.
                        if version < table.version() {
                            self.cache
                                .lock_recovered()
                                .remove_if_version(&fingerprint, version);
                            StatCounters::add(&self.stats.invalidations, 1);
                            StatCounters::add(&self.stats.refresh_fallbacks, 1);
                        }
                    }
                    // Second chance before scanning: a covering cached
                    // state (same source, superset shape) serves this
                    // plan by projection — still zero scans. Cache the
                    // projected state under this plan's own fingerprint
                    // so the next probe is an exact hit.
                    let projected = self.cache.lock_recovered().lookup_covering(
                        &source_key(&phys),
                        table.version(),
                        &phys,
                    );
                    if let Some(projected) = projected {
                        StatCounters::add(&self.stats.hits, 1);
                        StatCounters::add(&self.stats.projection_hits, 1);
                        self.record_op("projection_hit", cache_only_stats(CacheOutcome::Hit));
                        let result = self
                            .finalize_and_cache(
                                &fingerprint,
                                source_key(&phys),
                                &table,
                                &phys,
                                Arc::new(projected),
                            )
                            .map(|output| {
                                let mut output = (*output).clone();
                                output.set_cache(CacheOutcome::Hit);
                                output
                            });
                        fill(&mut out, i, result);
                        continue;
                    }
                    StatCounters::add(&self.stats.misses, 1);
                    misses
                        .entry((phys.table().to_string(), table.version()))
                        .or_insert_with(|| (table, Vec::new()))
                        .1
                        .push(Miss {
                            index: i,
                            plan: BatchPlan { fingerprint, phys },
                        });
                }
            }
        }
        probe.attr("plans", plans.len());
        drop(probe);

        for (_, (table, table_misses)) in misses {
            let registered: Vec<BatchPlan> = {
                let mut seen: Vec<&str> = Vec::new();
                table_misses
                    .iter()
                    .filter(|m| {
                        if seen.contains(&m.plan.fingerprint.as_str()) {
                            false
                        } else {
                            seen.push(&m.plan.fingerprint);
                            true
                        }
                    })
                    .map(|m| m.plan.clone())
                    .collect()
            };
            let results = self.batcher.submit(self, &table, &registered, span);
            for m in table_misses {
                let result = results
                    .get(&m.plan.fingerprint)
                    .cloned()
                    .unwrap_or_else(|| {
                        Err(DbError::Internal(
                            "batch result missing for submitted plan".to_string(),
                        ))
                    });
                fill(
                    &mut out,
                    m.index,
                    result.map(|output| {
                        let mut output = (*output).clone();
                        output.set_cache(CacheOutcome::Miss);
                        output
                    }),
                );
            }
        }

        out.into_iter()
            .map(|o| {
                o.unwrap_or_else(|| {
                    Err(DbError::Internal(
                        "plan slot left unfilled by executor".to_string(),
                    ))
                })
            })
            .collect()
    }

    /// Leader-side execution of one closed batch: merge compatible plans
    /// into shared scans, execute each scan once (row-partitioned across
    /// the configured workers), project per-plan states out, and cache
    /// them.
    fn execute_batch(
        &self,
        table: &Arc<Table>,
        plans: &[BatchPlan],
        span: &Span,
    ) -> HashMap<String, DbResult<Arc<PlanOutput>>> {
        let mut results = HashMap::new();

        // Group plans by scan-source identity; only same-source plans
        // share a scan domain and may merge.
        let mut groups: Vec<(String, Vec<&BatchPlan>)> = Vec::new();
        for plan in plans {
            let key = source_key(&plan.phys);
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, members)) => members.push(plan),
                None => groups.push((key, vec![plan])),
            }
        }

        for (_, members) in groups {
            // Bin-pack members under the working-set cap, weighting each
            // plan by its grouping-set count (its share of resident
            // group state in the combined scan).
            let weights: Vec<u64> = members
                .iter()
                .map(|m| shape_parts(&m.phys).0.len().max(1) as u64)
                .collect();
            let bins = crate::packing::pack(&weights, self.config.max_batch_sets.max(1) as u64);
            for bin in bins {
                let batch: Vec<&BatchPlan> = bin
                    .iter()
                    .filter_map(|&i| members.get(i).copied())
                    .collect();
                self.execute_merged(table, &batch, &mut results, span);
            }
        }

        results
    }

    /// Execute one merged shared scan for `batch` and project every
    /// member's state out of it. Falls back to per-member execution if
    /// the merged scan (or a projection) fails, so a poisoned batch-mate
    /// cannot fail an innocent plan.
    fn execute_merged(
        &self,
        table: &Arc<Table>,
        batch: &[&BatchPlan],
        results: &mut HashMap<String, DbResult<Arc<PlanOutput>>>,
        span: &Span,
    ) {
        if let [plan] = batch {
            results.insert(
                plan.fingerprint.clone(),
                self.execute_single(table, &plan.phys, span),
            );
            return;
        }

        // Union the grouping sets and deduplicate the aggregates by
        // [`AggSpec::state_key`] — the same identity
        // `PartialAggState::project_for` matches by, so every member's
        // aggregates are guaranteed recoverable from the merged state
        // (aliases only label output columns; projection restores each
        // member's own).
        let Some(first) = batch.first() else {
            return;
        };
        let (filter, row_range) = source_parts(&first.phys);
        let mut sets: Vec<Vec<String>> = Vec::new();
        let mut aggs: Vec<AggSpec> = Vec::new();
        for member in batch {
            let (member_sets, member_aggs) = shape_parts(&member.phys);
            for s in member_sets {
                if !sets.contains(&s) {
                    sets.push(s);
                }
            }
            for a in member_aggs {
                if !aggs.iter().any(|b| b.state_key() == a.state_key()) {
                    aggs.push(a.clone());
                }
            }
        }
        let mut source = LogicalPlan::scan(table.name());
        if let Some(f) = filter {
            source = source.filter(f);
        }
        let mut merged = source.grouping_sets(sets, aggs);
        if let Some((lo, hi)) = row_range {
            merged = merged.sliced(lo, hi);
        }

        let scan_span = span.child("batch_scan");
        scan_span.attr("plans", batch.len());
        let combined = merged.lower().and_then(|phys| {
            run_partitioned_partial_obs(
                table,
                &phys,
                self.workers(),
                Some(&self.exec_metrics),
                &scan_span,
            )
        });
        drop(scan_span);
        let combined = match combined {
            Ok(c) => c,
            Err(_) => {
                // A merged-scan failure (e.g. one member aggregates a
                // bad column) must not take down its batch-mates.
                for member in batch {
                    results.insert(
                        member.fingerprint.clone(),
                        self.execute_single(table, &member.phys, span),
                    );
                }
                return;
            }
        };
        self.engine.database().record_stats(&scan_stats(&combined));
        self.record_op(
            format!("batch_scan({} plans)", batch.len()),
            ExecStats {
                cache: CacheOutcome::Miss,
                ..scan_stats(&combined)
            },
        );
        StatCounters::add(&self.stats.batch_scans, 1);
        StatCounters::add(&self.stats.batched_plans, batch.len() as u64);

        for member in batch {
            let entry = match combined.project_for(&member.phys) {
                Ok(projected) => self.finalize_and_cache(
                    &member.fingerprint,
                    source_key(&member.phys),
                    table,
                    &member.phys,
                    Arc::new(projected),
                ),
                // Projection cannot fail for states built from the
                // member union, but never serve a wrong answer if it
                // does — recompute standalone.
                Err(_) => self.execute_single(table, &member.phys, span),
            };
            results.insert(member.fingerprint.clone(), entry);
        }
    }

    /// Execute one plan standalone (row-partitioned), record its cost,
    /// and cache its state.
    fn execute_single(
        &self,
        table: &Arc<Table>,
        phys: &PhysicalPlan,
        span: &Span,
    ) -> DbResult<Arc<PlanOutput>> {
        let scan_span = span.child("scan");
        let partial = run_partitioned_partial_obs(
            table,
            phys,
            self.workers(),
            Some(&self.exec_metrics),
            &scan_span,
        )?;
        drop(scan_span);
        self.engine.database().record_stats(&scan_stats(&partial));
        self.record_op(
            "scan",
            ExecStats {
                cache: CacheOutcome::Miss,
                ..scan_stats(&partial)
            },
        );
        self.finalize_and_cache(
            &phys.fingerprint(),
            source_key(phys),
            table,
            phys,
            Arc::new(partial),
        )
    }

    /// Incrementally refresh one cached state to `table`'s current
    /// version: execute `phys` over only the `delta` rows, merge into
    /// the cached state (partition order: cached prefix first, delta
    /// second — exactly a sequential scan's row order), re-stamp the
    /// entry, and return the refreshed output. Only the delta scan is
    /// charged to the DBMS cost counters; no full-table scan happens on
    /// this path. Returns `None` if the delta execution or merge failed
    /// — the caller falls back to a full recompute, never serving a
    /// wrong answer.
    fn refresh_into_cache(
        &self,
        fingerprint: &str,
        phys: &PhysicalPlan,
        table: &Arc<Table>,
        state: &CachedState,
        delta: (usize, usize),
        span: &Span,
    ) -> Option<Arc<PlanOutput>> {
        let refresh_span = span.child("refresh");
        refresh_span.attr("delta_rows", delta.1.saturating_sub(delta.0));
        if delta.0 == delta.1 {
            // A version bump without new rows (empty append): the state
            // is already exact — re-stamp it without any scan.
            StatCounters::add(&self.stats.refreshes, 1);
            self.record_op("refresh_restamp", cache_only_stats(CacheOutcome::Refreshed));
            if self.config.cache_capacity > 0 {
                let evicted = self.cache.lock_recovered().insert(
                    fingerprint.to_string(),
                    source_key(phys),
                    table.version(),
                    phys.clone(),
                    state.clone(),
                );
                StatCounters::add(&self.stats.inserts, 1);
                StatCounters::add(&self.stats.evictions, evicted);
            }
            return Some(state.output.clone());
        }
        let merged = (|| -> DbResult<PartialAggState> {
            let delta_state = phys.execute_partial(table, delta)?;
            let mut delta_stats = *delta_state.stats();
            delta_stats.table_scans = 1;
            let mut merged = (*state.partial).clone();
            merged.merge(delta_state, table)?;
            self.engine.database().record_stats(&delta_stats);
            self.record_op(
                "refresh",
                ExecStats {
                    cache: CacheOutcome::Refreshed,
                    ..delta_stats
                },
            );
            Ok(merged)
        })();
        match merged {
            Ok(merged) => {
                StatCounters::add(&self.stats.refreshes, 1);
                StatCounters::add(&self.stats.refresh_rows, (delta.1 - delta.0) as u64);
                self.finalize_and_cache(
                    fingerprint,
                    source_key(phys),
                    table,
                    phys,
                    Arc::new(merged),
                )
                .ok()
            }
            Err(_) => None,
        }
    }

    /// Eager maintenance after [`Service::append_rows`]: bring every
    /// cached entry of `table` up to the new version immediately, so
    /// the next probe is an exact hit. Entries that cannot be refreshed
    /// (policy fallback or a refresh failure) are dropped and will
    /// recompute on their next probe. Scans run outside the cache lock;
    /// re-stamping is version-guarded, so a racing lazy refresh or a
    /// newer append can never be overwritten with a *wrong* state —
    /// at worst an older (still version-stamped, still correct) one
    /// that the next probe refreshes again.
    fn refresh_table_entries(&self, table: &Arc<Table>) {
        let affected = self
            .cache
            .lock_recovered()
            .stale_entries_for(table.name(), table.version());
        for (key, old_version, phys, state) in affected {
            let refreshed = match self.config.refresh.decide(table, old_version) {
                RefreshDecision::Incremental { delta } => self
                    .refresh_into_cache(&key, &phys, table, &state, delta, &Span::none())
                    .is_some(),
                RefreshDecision::Recompute(_) => false,
            };
            if !refreshed {
                self.cache
                    .lock_recovered()
                    .remove_if_version(&key, old_version);
                StatCounters::add(&self.stats.invalidations, 1);
                StatCounters::add(&self.stats.refresh_fallbacks, 1);
            }
        }
    }

    /// Finalize one executed state — the output every requester of this
    /// plan is handed — and cache `(unfinalized state, output memo,
    /// plan)` under `(fingerprint, table version)`, so exact hits serve
    /// a result copy, covering projections reuse the state, and appends
    /// can refresh it incrementally.
    fn finalize_and_cache(
        &self,
        fingerprint: &str,
        source: String,
        table: &Table,
        phys: &PhysicalPlan,
        partial: Arc<PartialAggState>,
    ) -> DbResult<Arc<PlanOutput>> {
        let output = Arc::new((*partial).clone().finalize(table)?);
        if self.config.cache_capacity > 0 {
            let evicted = self.cache.lock_recovered().insert(
                fingerprint.to_string(),
                source,
                table.version(),
                phys.clone(),
                CachedState {
                    partial,
                    output: output.clone(),
                },
            );
            StatCounters::add(&self.stats.inserts, 1);
            StatCounters::add(&self.stats.evictions, evicted);
        }
        Ok(output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memdb::{AggFunc, ColumnDef, DataType, Schema, Value};

    fn state_for(db: &Database, group_by: &str) -> (CachedState, PhysicalPlan) {
        let table = db.table("t").unwrap();
        let phys = LogicalPlan::scan("t")
            .aggregate(vec![group_by.into()], vec![AggSpec::new(AggFunc::Sum, "m")])
            .lower()
            .unwrap();
        let partial = phys.execute_partial(&table, (0, table.num_rows())).unwrap();
        let output = partial.clone().finalize(&table).unwrap();
        (
            CachedState {
                partial: Arc::new(partial),
                output: Arc::new(output),
            },
            phys,
        )
    }

    fn tiny_db() -> Database {
        let schema = Schema::new(vec![
            ColumnDef::dimension("d", DataType::Str),
            ColumnDef::dimension("e", DataType::Str),
            ColumnDef::measure("m", DataType::Float64),
        ])
        .unwrap();
        let mut t = memdb::Table::new("t", schema);
        for i in 0..10 {
            t.push_row(vec![
                Value::from(format!("d{}", i % 3)),
                Value::from(format!("e{}", i % 2)),
                Value::Float(i as f64),
            ])
            .unwrap();
        }
        let db = Database::new();
        db.register(t);
        db
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let db = tiny_db();
        let (s, phys) = state_for(&db, "d");
        let mut cache = LruCache::new(2);
        let ins = |c: &mut LruCache, key: &str, s: CachedState| {
            c.insert(key.into(), "src".into(), 1, phys.clone(), s)
        };
        assert_eq!(ins(&mut cache, "a", s.clone()), 0);
        assert_eq!(ins(&mut cache, "b", s.clone()), 0);
        // Touch "a" so "b" is the LRU victim.
        assert!(matches!(cache.lookup("a", 1), Lookup::Hit(_)));
        assert_eq!(ins(&mut cache, "c", s.clone()), 1);
        assert!(matches!(cache.lookup("b", 1), Lookup::Miss));
        assert!(matches!(cache.lookup("a", 1), Lookup::Hit(_)));
        assert!(matches!(cache.lookup("c", 1), Lookup::Hit(_)));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn lru_capacity_zero_caches_nothing() {
        let db = tiny_db();
        let (s, phys) = state_for(&db, "d");
        let mut cache = LruCache::new(0);
        assert_eq!(cache.insert("a".into(), "src".into(), 1, phys, s), 0);
        assert!(matches!(cache.lookup("a", 1), Lookup::Miss));
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn outdated_versions_are_reported_not_served() {
        let db = tiny_db();
        let (s, phys) = state_for(&db, "d");
        let mut cache = LruCache::new(4);
        cache.insert("a".into(), "src".into(), 1, phys, s);
        // A version mismatch is reported with the stamped version (the
        // caller refreshes or removes); the entry stays until then.
        assert!(matches!(
            cache.lookup("a", 2),
            Lookup::Outdated { version: 1, .. }
        ));
        assert_eq!(cache.len(), 1);
        // Version-guarded removal: a wrong expected version is a no-op,
        // the right one drops the entry.
        cache.remove_if_version("a", 2);
        assert_eq!(cache.len(), 1);
        cache.remove_if_version("a", 1);
        assert!(matches!(cache.lookup("a", 2), Lookup::Miss));
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn stale_entries_for_lists_only_other_versions_of_the_table() {
        let db = tiny_db();
        let (s, phys) = state_for(&db, "d");
        let mut cache = LruCache::new(8);
        cache.insert("old".into(), "src".into(), 1, phys.clone(), s.clone());
        cache.insert("cur".into(), "src".into(), 2, phys.clone(), s.clone());
        let stale = cache.stale_entries_for("t", 2);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].0, "old");
        assert_eq!(stale[0].1, 1);
        assert!(cache.stale_entries_for("other", 2).is_empty());
    }

    /// If the leader unwinds mid-execution, its guard must still close
    /// and publish the batch so joiners error out instead of blocking
    /// on the condvar forever.
    #[test]
    fn leader_guard_releases_joiners_on_unwind() {
        let batch = Batch::default();
        assert!(lock_state(&batch).open);
        {
            let _guard = LeaderGuard {
                batch: &batch,
                armed: true,
            };
            // Dropped while armed — exactly what an unwind does.
        }
        let st = lock_state(&batch);
        assert!(st.done, "joiners must be released");
        assert!(!st.open, "no new joiners after the failure");
        // With no published results, joiners map their fingerprints to
        // the leader-failed error (see `Batcher::submit`).
        assert!(st.results.is_empty());
    }

    #[test]
    fn source_keys_separate_incompatible_scans() {
        let plain = LogicalPlan::scan("t")
            .aggregate(vec!["d".into()], vec![AggSpec::new(AggFunc::Sum, "m")])
            .lower()
            .unwrap();
        let filtered = LogicalPlan::scan("t")
            .filter(Expr::col("e").eq("e0"))
            .aggregate(vec!["d".into()], vec![AggSpec::new(AggFunc::Sum, "m")])
            .lower()
            .unwrap();
        let sliced = LogicalPlan::scan("t")
            .aggregate(vec!["d".into()], vec![AggSpec::new(AggFunc::Sum, "m")])
            .sliced(0, 5)
            .lower()
            .unwrap();
        assert_ne!(source_key(&plain), source_key(&filtered));
        assert_ne!(source_key(&plain), source_key(&sliced));
        // Same source, different shape: mergeable.
        let other_group = LogicalPlan::scan("t")
            .aggregate(vec!["e".into()], vec![AggSpec::count_star()])
            .lower()
            .unwrap();
        assert_eq!(source_key(&plain), source_key(&other_group));
    }

    fn recommend_once(service: &Service) {
        let analyst = crate::querygen::AnalystQuery::new("t", Some(Expr::col("e").eq("e0")));
        service.recommend(&analyst).unwrap();
    }

    /// The legacy [`CacheStats`] snapshot and the registry's
    /// `service.cache.*` counters are the same cells — equal by
    /// construction, for any workload.
    #[test]
    fn metrics_mirror_cache_stats() {
        let service = Service::with_defaults(Arc::new(tiny_db()));
        recommend_once(&service);
        recommend_once(&service);
        let stats = service.cache_stats();
        let metrics = service.metrics();
        let counter = |name: &str| {
            *metrics
                .counters
                .get(name)
                .unwrap_or_else(|| panic!("counter {name} not registered"))
        };
        assert!(stats.hits > 0, "second recommend must hit the cache");
        assert_eq!(counter("service.cache.hits"), stats.hits);
        assert_eq!(counter("service.cache.misses"), stats.misses);
        assert_eq!(counter("service.cache.inserts"), stats.inserts);
        assert_eq!(counter("service.cache.evictions"), stats.evictions);
        // The execution layer reports into the same snapshot.
        assert!(counter("exec.queries") > 0);
        assert!(counter("exec.rows_scanned") > 0);
        // And the per-request latency histogram saw both requests.
        let h = metrics
            .histograms
            .get("service.recommend_ns")
            .expect("latency histogram registered");
        assert_eq!(h.count, 2);
    }

    /// With tracing enabled, a cold recommend records a span tree
    /// rooted at `recommend` with per-partition `execute_partial`
    /// leaves under the engine's `execute` phase.
    #[test]
    fn trace_records_span_tree_for_cold_recommend() {
        let service = Service::with_defaults(Arc::new(tiny_db()));
        assert!(!service.trace_enabled());
        recommend_once(&service);
        assert!(
            service.last_trace().is_none(),
            "disabled tracer records nothing"
        );

        service.set_trace_enabled(true);
        let session = service.session();
        // A filter the warm-up never used, so this request is cold and
        // actually scans (a warm request has no execute_partial work).
        let analyst = crate::querygen::AnalystQuery::new("t", Some(Expr::col("e").eq("e1")));
        session.recommend(&analyst).unwrap();
        let trace = session.last_trace().expect("trace recorded");
        let names: Vec<&str> = trace.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names[0], "recommend");
        for phase in ["prune", "optimize", "execute", "process", "execute_partial"] {
            assert!(names.contains(&phase), "missing span {phase} in {names:?}");
        }
        // Parent links form a tree under the root.
        for (i, span) in trace.spans.iter().enumerate() {
            match span.parent {
                None => assert_eq!(i, 0),
                Some(p) => assert!(p < i),
            }
            assert!(span.end_ns >= span.start_ns);
        }
        // The root carries the session tag last_trace filtered by.
        assert!(trace.spans[0]
            .attrs
            .iter()
            .any(|(k, v)| k == "session" && *v == session.id().to_string()));

        // Another session's request is not *this* session's last trace.
        let other = service.session();
        other.recommend(&analyst).unwrap();
        let still = session.last_trace().expect("older trace still in ring");
        assert!(still.spans[0]
            .attrs
            .iter()
            .any(|(k, v)| k == "session" && *v == session.id().to_string()));
    }
}
