//! Candidate views and view-space enumeration.
//!
//! A view is the paper's triple `(a, m, f)`: group by dimension `a`,
//! aggregate measure `m` with function `f` (§2). The view space of a table
//! is the cross product `A × M × F`, which grows as the *square* of the
//! attribute count (for |A| ≈ |M| ≈ n/2, the space is |F|·n²/4 — the
//! quadratic blow-up motivating SeeDB's pruning and shared execution).

use memdb::{AggFunc, Schema};

/// A candidate view: the paper's `(a, m, f)` triple.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ViewSpec {
    /// Grouping (dimension) attribute `a ∈ A`.
    pub dimension: String,
    /// Measure attribute `m ∈ M`; `None` only when `f` is `COUNT` (row
    /// counts need no measure).
    pub measure: Option<String>,
    /// Aggregate function `f ∈ F`.
    pub func: AggFunc,
}

impl ViewSpec {
    /// A new `(a, m, f)` view.
    pub fn new(dimension: &str, measure: &str, func: AggFunc) -> Self {
        ViewSpec {
            dimension: dimension.to_string(),
            measure: Some(measure.to_string()),
            func,
        }
    }

    /// A `(a, COUNT(*))` view.
    pub fn count(dimension: &str) -> Self {
        ViewSpec {
            dimension: dimension.to_string(),
            measure: None,
            func: AggFunc::Count,
        }
    }

    /// Short human-readable identity, e.g. `SUM(amount) BY store`.
    pub fn label(&self) -> String {
        match &self.measure {
            Some(m) => format!("{}({m}) BY {}", self.func.sql(), self.dimension),
            None => format!("COUNT(*) BY {}", self.dimension),
        }
    }

    /// The target-view SQL for this spec over the subset selected by
    /// `where_sql` (paper §2: `SELECT a, f(m) FROM D_Q GROUP BY a`).
    pub fn to_sql(&self, table: &str, where_sql: Option<&str>) -> String {
        let agg = match &self.measure {
            Some(m) => format!("{}({m})", self.func.sql()),
            None => "COUNT(*)".to_string(),
        };
        match where_sql {
            Some(w) => format!(
                "SELECT {a}, {agg} FROM {table} WHERE {w} GROUP BY {a}",
                a = self.dimension
            ),
            None => format!(
                "SELECT {a}, {agg} FROM {table} GROUP BY {a}",
                a = self.dimension
            ),
        }
    }
}

impl std::fmt::Display for ViewSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// Which aggregate functions to enumerate over.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionSet {
    funcs: Vec<AggFunc>,
    /// Also include one `COUNT(*)` view per dimension.
    include_count_star: bool,
}

impl FunctionSet {
    /// Only `SUM` — the paper's running example and the cheapest space.
    pub fn sum_only() -> Self {
        FunctionSet {
            funcs: vec![AggFunc::Sum],
            include_count_star: false,
        }
    }

    /// `SUM`, `AVG`, and `COUNT(*)` — a typical demo configuration.
    pub fn standard() -> Self {
        FunctionSet {
            funcs: vec![AggFunc::Sum, AggFunc::Avg],
            include_count_star: true,
        }
    }

    /// Every supported aggregate plus `COUNT(*)`.
    pub fn full() -> Self {
        FunctionSet {
            funcs: vec![AggFunc::Sum, AggFunc::Avg, AggFunc::Min, AggFunc::Max],
            include_count_star: true,
        }
    }

    /// A custom set.
    pub fn custom(funcs: Vec<AggFunc>, include_count_star: bool) -> Self {
        FunctionSet {
            funcs: funcs.into_iter().filter(|f| *f != AggFunc::Count).collect(),
            include_count_star,
        }
    }

    /// Per-measure functions.
    pub fn funcs(&self) -> &[AggFunc] {
        &self.funcs
    }

    /// Whether `COUNT(*)` views are included.
    pub fn includes_count_star(&self) -> bool {
        self.include_count_star
    }
}

impl Default for FunctionSet {
    fn default() -> Self {
        FunctionSet::standard()
    }
}

/// Enumerate the full candidate view space `A × M × F` for `schema`.
///
/// Order is deterministic: dimensions in schema order, then measures in
/// schema order, then functions.
pub fn enumerate_views(schema: &Schema, funcs: &FunctionSet) -> Vec<ViewSpec> {
    let dims = schema.dimensions();
    let measures = schema.measures();
    let mut out = Vec::with_capacity(dims.len() * (measures.len() * funcs.funcs().len() + 1));
    for a in &dims {
        if funcs.includes_count_star() {
            out.push(ViewSpec::count(a));
        }
        for m in &measures {
            for &f in funcs.funcs() {
                out.push(ViewSpec::new(a, m, f));
            }
        }
    }
    out
}

/// Size of the candidate view space without materializing it.
pub fn view_space_size(num_dims: usize, num_measures: usize, funcs: &FunctionSet) -> usize {
    num_dims * (num_measures * funcs.funcs().len() + usize::from(funcs.includes_count_star()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use memdb::{ColumnDef, DataType};

    fn schema(dims: usize, measures: usize) -> Schema {
        let mut cols = Vec::new();
        for i in 0..dims {
            cols.push(ColumnDef::dimension(&format!("d{i}"), DataType::Str));
        }
        for i in 0..measures {
            cols.push(ColumnDef::measure(&format!("m{i}"), DataType::Float64));
        }
        Schema::new(cols).unwrap()
    }

    #[test]
    fn enumeration_covers_cross_product() {
        let s = schema(3, 2);
        let views = enumerate_views(&s, &FunctionSet::sum_only());
        assert_eq!(views.len(), 3 * 2);
        assert!(views.contains(&ViewSpec::new("d2", "m1", AggFunc::Sum)));
    }

    #[test]
    fn count_star_adds_one_view_per_dimension() {
        let s = schema(3, 2);
        let views = enumerate_views(&s, &FunctionSet::standard());
        // 3 dims × (2 measures × 2 funcs + COUNT(*)) = 15.
        assert_eq!(views.len(), 15);
        assert_eq!(views.iter().filter(|v| v.measure.is_none()).count(), 3);
    }

    #[test]
    fn space_grows_quadratically() {
        // Paper §1(b): candidate views grow as the square of the number
        // of attributes. With n attributes split evenly, space ∝ n².
        let f = FunctionSet::sum_only();
        let at = |n: usize| view_space_size(n / 2, n / 2, &f);
        assert_eq!(at(10), 25);
        assert_eq!(at(20), 100); // doubling attributes quadruples views
        assert_eq!(at(40), 400);
    }

    #[test]
    fn size_matches_enumeration() {
        let s = schema(4, 3);
        for fs in [
            FunctionSet::sum_only(),
            FunctionSet::standard(),
            FunctionSet::full(),
        ] {
            assert_eq!(enumerate_views(&s, &fs).len(), view_space_size(4, 3, &fs));
        }
    }

    #[test]
    fn labels_and_sql() {
        let v = ViewSpec::new("store", "amount", AggFunc::Sum);
        assert_eq!(v.label(), "SUM(amount) BY store");
        assert_eq!(
            v.to_sql("Sales", Some("Product = 'Laserwave'")),
            "SELECT store, SUM(amount) FROM Sales WHERE Product = 'Laserwave' GROUP BY store"
        );
        assert_eq!(
            ViewSpec::count("store").to_sql("Sales", None),
            "SELECT store, COUNT(*) FROM Sales GROUP BY store"
        );
    }

    #[test]
    fn custom_function_set_drops_count() {
        let fs = FunctionSet::custom(vec![AggFunc::Count, AggFunc::Sum], false);
        assert_eq!(fs.funcs(), &[AggFunc::Sum]);
    }

    #[test]
    fn deterministic_order() {
        let s = schema(2, 2);
        let a = enumerate_views(&s, &FunctionSet::standard());
        let b = enumerate_views(&s, &FunctionSet::standard());
        assert_eq!(a, b);
        assert_eq!(a[0], ViewSpec::count("d0"));
    }
}
