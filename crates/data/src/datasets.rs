//! Schema-faithful synthetic analogues of the paper's demo datasets.
//!
//! The paper demos SeeDB on four datasets: the Tableau *Store Orders*
//! (superstore) data, an FEC *Election Contribution* dataset, a *Medical*
//! (MIMIC-II-like) dataset, and synthetic data. The first three are not
//! redistributable/available offline, so each generator here mimics the
//! published schema and the statistical structure that drives SeeDB:
//! skewed categorical dimensions, correlated attribute pairs (state ↔
//! region, category ↔ sub-category, candidate ↔ party), and a *planted,
//! documented deviation* reachable by a suggested analyst query — so
//! "known trends" exist to re-identify, exactly as demo Scenario 1
//! requires. See DESIGN.md ("Substitutions") for the rationale.

use memdb::{ColumnDef, DataType, Schema, Semantic, Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::distributions::Numeric;

/// A generated demo dataset with its suggested analyst query and the
/// ground-truth deviating dimensions that query should surface.
#[derive(Debug)]
pub struct Dataset {
    /// The fact table.
    pub table: Table,
    /// A suggested analyst query (`SELECT * FROM ... WHERE ...`) whose
    /// subset carries the planted deviations.
    pub query_sql: String,
    /// Dimensions that genuinely deviate under that query (ground truth
    /// for recall experiments). The filter attribute itself is excluded.
    pub ground_truth: Vec<String>,
    /// One-line description for the demo UI.
    pub description: &'static str,
}

fn pick<'a>(rng: &mut StdRng, options: &[(&'a str, f64)]) -> &'a str {
    let total: f64 = options.iter().map(|(_, w)| w).sum();
    let mut u = rng.gen::<f64>() * total;
    for (name, w) in options {
        if u < *w {
            return name;
        }
        u -= w;
    }
    options.last().expect("non-empty options").0
}

/// The Store Orders (superstore-like) dataset.
///
/// Planted trend: the **"Laserwave Oven"** product (the paper's running
/// example) sells overwhelmingly in the East region — and therefore in
/// Eastern states, since `state` determines `region` — and ships
/// disproportionately `Second Class`, while overall sales skew West and
/// `Standard Class`. Querying `product = 'Laserwave Oven'` should surface
/// `region`/`state` and `ship_mode` views.
pub fn store_orders(rows: usize, seed: u64) -> Dataset {
    let schema = Schema::new(vec![
        ColumnDef::dimension("region", DataType::Str).with_semantic(Semantic::Geography),
        ColumnDef::dimension("state", DataType::Str).with_semantic(Semantic::Geography),
        ColumnDef::dimension("category", DataType::Str),
        ColumnDef::dimension("sub_category", DataType::Str),
        ColumnDef::dimension("ship_mode", DataType::Str),
        ColumnDef::dimension("segment", DataType::Str),
        ColumnDef::dimension("product", DataType::Str),
        ColumnDef::measure("sales", DataType::Float64),
        ColumnDef::measure("quantity", DataType::Float64),
        ColumnDef::measure("discount", DataType::Float64),
        ColumnDef::measure("profit", DataType::Float64),
        ColumnDef::ignored("order_id", DataType::Int64),
    ])
    .unwrap();
    let mut t = Table::with_capacity("store_orders", schema, rows);
    let mut rng = StdRng::seed_from_u64(seed);

    // state determines region (correlated pair for pruning to find).
    const STATES: &[(&str, &str)] = &[
        ("Massachusetts", "East"),
        ("New York", "East"),
        ("Pennsylvania", "East"),
        ("Connecticut", "East"),
        ("Washington", "West"),
        ("California", "West"),
        ("Oregon", "West"),
        ("Arizona", "West"),
        ("Texas", "Central"),
        ("Illinois", "Central"),
        ("Ohio", "Central"),
        ("Florida", "South"),
        ("Georgia", "South"),
        ("Virginia", "South"),
    ];
    const EAST_STATES: &[usize] = &[0, 1, 2, 3];
    const SUBCATS: &[(&str, &str)] = &[
        ("Phones", "Technology"),
        ("Machines", "Technology"),
        ("Accessories", "Technology"),
        ("Chairs", "Furniture"),
        ("Tables", "Furniture"),
        ("Bookcases", "Furniture"),
        ("Paper", "Office Supplies"),
        ("Binders", "Office Supplies"),
        ("Storage", "Office Supplies"),
    ];

    let sales_dist = Numeric::Exponential { mean: 220.0 };
    let profit_dist = Numeric::Normal {
        mean: 28.0,
        std: 60.0,
    };

    for i in 0..rows as i64 {
        let laser = rng.gen::<f64>() < 0.08;
        let product = if laser {
            "Laserwave Oven"
        } else {
            pick(
                &mut rng,
                &[
                    ("Saberwave Oven", 1.0),
                    ("Canon Copier", 1.5),
                    ("Logitech Keyboard", 2.0),
                    ("HON Desk Chair", 1.5),
                    ("Xerox Paper", 3.0),
                    ("Avery Binder", 2.5),
                ],
            )
        };
        // Planted: Laserwave skews hard to Eastern states & Second Class.
        let state_idx = if laser && rng.gen::<f64>() < 0.85 {
            EAST_STATES[rng.gen_range(0..EAST_STATES.len())]
        } else {
            // Overall skew toward the West.
            let w = rng.gen::<f64>();
            if w < 0.40 {
                4 + rng.gen_range(0..4usize) // West
            } else {
                rng.gen_range(0..STATES.len())
            }
        };
        let (state, region) = STATES[state_idx];
        let ship_mode = if laser && rng.gen::<f64>() < 0.7 {
            "Second Class"
        } else {
            pick(
                &mut rng,
                &[
                    ("Standard Class", 6.0),
                    ("Second Class", 2.0),
                    ("First Class", 1.5),
                    ("Same Day", 0.5),
                ],
            )
        };
        let (sub_category, category) = SUBCATS[rng.gen_range(0..SUBCATS.len())];
        let segment = pick(
            &mut rng,
            &[("Consumer", 5.0), ("Corporate", 3.0), ("Home Office", 2.0)],
        );
        let sales = sales_dist.sample(&mut rng).max(5.0);
        let quantity = rng.gen_range(1..=14) as f64;
        let discount = [0.0, 0.0, 0.0, 0.1, 0.2, 0.3][rng.gen_range(0..6usize)];
        let profit = profit_dist.sample(&mut rng);
        t.push_row(vec![
            region.into(),
            state.into(),
            category.into(),
            sub_category.into(),
            ship_mode.into(),
            segment.into(),
            product.into(),
            Value::Float(sales),
            Value::Float(quantity),
            Value::Float(discount),
            Value::Float(profit),
            Value::Int(i),
        ])
        .unwrap();
    }

    Dataset {
        table: t,
        query_sql: "SELECT * FROM store_orders WHERE product = 'Laserwave Oven'".to_string(),
        ground_truth: vec![
            "region".to_string(),
            "state".to_string(),
            "ship_mode".to_string(),
        ],
        description: "Superstore-like business-intelligence data; the Laserwave Oven \
                      sells overwhelmingly in the East and ships Second Class",
    }
}

/// The Election Contribution (FEC-like) dataset.
///
/// Planted trend: contributions to **"A. Stark"** come disproportionately
/// from `Retired` and `Educator` occupations and small `amount`s, while
/// the overall pool skews `Attorney`/`Executive` with larger amounts.
/// `party` is determined by `candidate`.
pub fn election_contributions(rows: usize, seed: u64) -> Dataset {
    let schema = Schema::new(vec![
        ColumnDef::dimension("candidate", DataType::Str),
        ColumnDef::dimension("party", DataType::Str),
        ColumnDef::dimension("contributor_state", DataType::Str).with_semantic(Semantic::Geography),
        ColumnDef::dimension("occupation", DataType::Str),
        ColumnDef::dimension("amount_bucket", DataType::Str).with_semantic(Semantic::Ordinal),
        ColumnDef::measure("amount", DataType::Float64),
        ColumnDef::ignored("contribution_id", DataType::Int64),
    ])
    .unwrap();
    let mut t = Table::with_capacity("election", schema, rows);
    let mut rng = StdRng::seed_from_u64(seed);

    const CANDIDATES: &[(&str, &str, f64)] = &[
        ("A. Stark", "Independent", 1.5),
        ("B. Lannister", "Gold", 3.0),
        ("C. Targaryen", "Fire", 2.5),
        ("D. Baratheon", "Gold", 1.5),
        ("E. Tyrell", "Fire", 1.5),
    ];
    const STATES: &[&str] = &[
        "CA", "NY", "TX", "FL", "MA", "WA", "IL", "PA", "OH", "GA", "VA", "NC",
    ];

    for i in 0..rows as i64 {
        let c = {
            let total: f64 = CANDIDATES.iter().map(|(_, _, w)| w).sum();
            let mut u = rng.gen::<f64>() * total;
            let mut chosen = CANDIDATES[0];
            for &cand in CANDIDATES {
                if u < cand.2 {
                    chosen = cand;
                    break;
                }
                u -= cand.2;
            }
            chosen
        };
        let (candidate, party, _) = c;
        let stark = candidate == "A. Stark";
        let occupation = if stark && rng.gen::<f64>() < 0.72 {
            pick(&mut rng, &[("Retired", 5.0), ("Educator", 3.0)])
        } else {
            pick(
                &mut rng,
                &[
                    ("Attorney", 4.0),
                    ("Executive", 3.5),
                    ("Physician", 2.5),
                    ("Engineer", 2.0),
                    ("Retired", 1.5),
                    ("Educator", 1.0),
                    ("Homemaker", 1.0),
                ],
            )
        };
        let state = STATES[if rng.gen::<f64>() < 0.5 {
            rng.gen_range(0..4) // big states dominate everywhere
        } else {
            rng.gen_range(0..STATES.len())
        }];
        let amount = if stark {
            Numeric::Exponential { mean: 55.0 }.sample(&mut rng) + 5.0
        } else {
            Numeric::Exponential { mean: 480.0 }.sample(&mut rng) + 25.0
        };
        let amount_bucket = match amount {
            a if a < 50.0 => "<$50",
            a if a < 200.0 => "$50-200",
            a if a < 1000.0 => "$200-1k",
            _ => ">$1k",
        };
        t.push_row(vec![
            candidate.into(),
            party.into(),
            state.into(),
            occupation.into(),
            amount_bucket.into(),
            Value::Float(amount),
            Value::Int(i),
        ])
        .unwrap();
    }

    Dataset {
        table: t,
        query_sql: "SELECT * FROM election WHERE candidate = 'A. Stark'".to_string(),
        ground_truth: vec!["occupation".to_string(), "amount_bucket".to_string()],
        description: "FEC-like campaign-finance data; A. Stark's contributions come \
                      from retirees and educators in small amounts",
    }
}

/// The Medical (MIMIC-II-like) dataset.
///
/// Planted trend: **cardiac** admissions concentrate in the `CCU` care
/// unit and in older age buckets, with elevated heart rate and longer
/// stays, unlike the overall population.
pub fn medical(rows: usize, seed: u64) -> Dataset {
    let schema = Schema::new(vec![
        ColumnDef::dimension("diagnosis_group", DataType::Str),
        ColumnDef::dimension("care_unit", DataType::Str),
        ColumnDef::dimension("age_bucket", DataType::Str).with_semantic(Semantic::Ordinal),
        ColumnDef::dimension("gender", DataType::Str),
        ColumnDef::dimension("insurance", DataType::Str),
        ColumnDef::dimension("admission_type", DataType::Str),
        ColumnDef::measure("los_days", DataType::Float64),
        ColumnDef::measure("heart_rate", DataType::Float64),
        ColumnDef::measure("lab_score", DataType::Float64),
        ColumnDef::ignored("hadm_id", DataType::Int64),
    ])
    .unwrap();
    let mut t = Table::with_capacity("medical", schema, rows);
    let mut rng = StdRng::seed_from_u64(seed);

    for i in 0..rows as i64 {
        let cardiac = rng.gen::<f64>() < 0.15;
        let diagnosis_group = if cardiac {
            "cardiac"
        } else {
            pick(
                &mut rng,
                &[
                    ("respiratory", 2.5),
                    ("sepsis", 2.0),
                    ("trauma", 1.8),
                    ("neuro", 1.5),
                    ("renal", 1.2),
                    ("gi", 1.0),
                ],
            )
        };
        let care_unit = if cardiac && rng.gen::<f64>() < 0.75 {
            "CCU"
        } else {
            pick(
                &mut rng,
                &[("MICU", 4.0), ("SICU", 2.5), ("CCU", 1.0), ("TSICU", 1.5)],
            )
        };
        let age_bucket = if cardiac && rng.gen::<f64>() < 0.7 {
            pick(&mut rng, &[("65-80", 4.0), ("80+", 3.0)])
        } else {
            pick(
                &mut rng,
                &[
                    ("18-35", 2.0),
                    ("35-50", 3.0),
                    ("50-65", 3.5),
                    ("65-80", 2.5),
                    ("80+", 1.0),
                ],
            )
        };
        let gender = pick(&mut rng, &[("M", 5.3), ("F", 4.7)]);
        let insurance = pick(
            &mut rng,
            &[
                ("Medicare", 4.0),
                ("Private", 3.5),
                ("Medicaid", 1.5),
                ("Self Pay", 0.5),
            ],
        );
        let admission_type = pick(
            &mut rng,
            &[("Emergency", 6.0), ("Elective", 2.5), ("Urgent", 1.5)],
        );
        let los = Numeric::Exponential {
            mean: if cardiac { 7.5 } else { 4.0 },
        }
        .sample(&mut rng)
            + 0.5;
        let hr = Numeric::Normal {
            mean: if cardiac { 96.0 } else { 82.0 },
            std: 12.0,
        }
        .sample(&mut rng);
        let lab = Numeric::Normal {
            mean: 50.0,
            std: 10.0,
        }
        .sample(&mut rng);
        t.push_row(vec![
            diagnosis_group.into(),
            care_unit.into(),
            age_bucket.into(),
            gender.into(),
            insurance.into(),
            admission_type.into(),
            Value::Float(los),
            Value::Float(hr),
            Value::Float(lab),
            Value::Int(i),
        ])
        .unwrap();
    }

    Dataset {
        table: t,
        query_sql: "SELECT * FROM medical WHERE diagnosis_group = 'cardiac'".to_string(),
        ground_truth: vec!["care_unit".to_string(), "age_bucket".to_string()],
        description: "MIMIC-like clinical admissions; cardiac admissions concentrate \
                      in the CCU and in older patients",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_orders_shape_and_determinism() {
        let d = store_orders(2000, 1);
        assert_eq!(d.table.num_rows(), 2000);
        assert_eq!(d.table.schema().dimensions().len(), 7);
        assert_eq!(d.table.schema().measures().len(), 4);
        let d2 = store_orders(2000, 1);
        assert_eq!(d.table.row(77), d2.table.row(77));
    }

    #[test]
    fn store_orders_state_determines_region() {
        let d = store_orders(3000, 2);
        let v = memdb::cramers_v(
            d.table.column("state").unwrap(),
            d.table.column("region").unwrap(),
        )
        .unwrap();
        assert!(v > 0.99, "state→region should be functional, got {v}");
    }

    #[test]
    fn store_orders_laserwave_skews_east() {
        let d = store_orders(20_000, 3);
        let product = d.table.column("product").unwrap();
        let region = d.table.column("region").unwrap();
        let (mut east_laser, mut laser, mut east_all) = (0.0, 0.0, 0.0);
        let n = d.table.num_rows() as f64;
        for i in 0..d.table.num_rows() {
            let is_laser = product.get(i).as_str() == Some("Laserwave Oven");
            let is_east = region.get(i).as_str() == Some("East");
            if is_laser {
                laser += 1.0;
                if is_east {
                    east_laser += 1.0;
                }
            }
            if is_east {
                east_all += 1.0;
            }
        }
        assert!(laser > 500.0);
        assert!(east_laser / laser > 0.7);
        assert!(east_all / n < 0.5);
    }

    #[test]
    fn election_stark_occupations_deviate() {
        let d = election_contributions(20_000, 4);
        let cand = d.table.column("candidate").unwrap();
        let occ = d.table.column("occupation").unwrap();
        let (mut retired_stark, mut stark, mut retired_all) = (0.0, 0.0, 0.0);
        for i in 0..d.table.num_rows() {
            let is_stark = cand.get(i).as_str() == Some("A. Stark");
            let is_retired = occ.get(i).as_str() == Some("Retired");
            if is_stark {
                stark += 1.0;
                if is_retired {
                    retired_stark += 1.0;
                }
            }
            if is_retired {
                retired_all += 1.0;
            }
        }
        assert!(stark > 1000.0);
        assert!(retired_stark / stark > 0.3);
        assert!(retired_all / 20_000.0 < 0.25);
    }

    #[test]
    fn election_party_derived_from_candidate() {
        let d = election_contributions(5_000, 5);
        let v = memdb::cramers_v(
            d.table.column("candidate").unwrap(),
            d.table.column("party").unwrap(),
        )
        .unwrap();
        assert!(v > 0.99);
    }

    #[test]
    fn medical_cardiac_trends() {
        let d = medical(20_000, 6);
        let dg = d.table.column("diagnosis_group").unwrap();
        let cu = d.table.column("care_unit").unwrap();
        let hr = d.table.column("heart_rate").unwrap();
        let (mut ccu_card, mut card, mut hr_card, mut hr_other, mut other) =
            (0.0, 0.0, 0.0, 0.0, 0.0);
        for i in 0..d.table.num_rows() {
            let cardiac = dg.get(i).as_str() == Some("cardiac");
            if cardiac {
                card += 1.0;
                hr_card += hr.f64_at(i).unwrap();
                if cu.get(i).as_str() == Some("CCU") {
                    ccu_card += 1.0;
                }
            } else {
                other += 1.0;
                hr_other += hr.f64_at(i).unwrap();
            }
        }
        assert!(ccu_card / card > 0.6);
        assert!(hr_card / card - hr_other / other > 10.0);
    }

    #[test]
    fn suggested_queries_parse() {
        for d in [
            store_orders(100, 1),
            election_contributions(100, 1),
            medical(100, 1),
        ] {
            let sel = memdb::parse_selection(&d.query_sql).unwrap();
            assert_eq!(sel.table, d.table.name());
            assert!(sel.filter.is_some());
            assert!(!d.ground_truth.is_empty());
        }
    }
}
