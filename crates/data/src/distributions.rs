//! Sampling primitives for the dataset generators.
//!
//! Demo Scenario 2 lets attendees adjust "knobs such as data size, number
//! of attributes, and data distribution"; these are the distributions
//! behind that knob.

use rand::rngs::StdRng;
use rand::Rng;

/// A categorical distribution over `0..k`.
#[derive(Debug, Clone, PartialEq)]
pub enum Categorical {
    /// Every value equally likely.
    Uniform {
        /// Number of categories.
        k: usize,
    },
    /// Zipf-like skew: probability of rank `r` (0-based) ∝ `1/(r+1)^s`.
    Zipf {
        /// Number of categories.
        k: usize,
        /// Skew exponent (0 = uniform, 1 = classic Zipf, larger = more
        /// skewed).
        s: f64,
    },
    /// Explicit weights (need not be normalized; must be non-negative
    /// with positive sum).
    Weighted {
        /// Relative weight per category.
        weights: Vec<f64>,
    },
}

impl Categorical {
    /// Number of categories.
    pub fn cardinality(&self) -> usize {
        match self {
            Categorical::Uniform { k } | Categorical::Zipf { k, .. } => *k,
            Categorical::Weighted { weights } => weights.len(),
        }
    }

    /// Normalized probability vector.
    pub fn probabilities(&self) -> Vec<f64> {
        match self {
            Categorical::Uniform { k } => vec![1.0 / *k as f64; *k],
            Categorical::Zipf { k, s } => {
                let raw: Vec<f64> = (0..*k).map(|r| 1.0 / ((r + 1) as f64).powf(*s)).collect();
                let total: f64 = raw.iter().sum();
                raw.into_iter().map(|w| w / total).collect()
            }
            Categorical::Weighted { weights } => {
                let total: f64 = weights.iter().sum();
                assert!(total > 0.0, "weighted categorical needs positive mass");
                weights.iter().map(|w| w / total).collect()
            }
        }
    }

    /// A sampler (precomputes the CDF).
    pub fn sampler(&self) -> CategoricalSampler {
        let probs = self.probabilities();
        let mut cdf = Vec::with_capacity(probs.len());
        let mut acc = 0.0;
        for p in probs {
            acc += p;
            cdf.push(acc);
        }
        if let Some(last) = cdf.last_mut() {
            *last = 1.0; // guard against fp drift
        }
        CategoricalSampler { cdf }
    }

    /// A copy of this distribution with the category order reversed —
    /// used to plant deviations (the subset draws from the reversed
    /// skew, so its per-category distribution differs maximally in rank
    /// order while keeping the same support).
    pub fn reversed(&self) -> Categorical {
        let mut probs = self.probabilities();
        probs.reverse();
        Categorical::Weighted { weights: probs }
    }
}

/// Precomputed inverse-CDF sampler for a categorical distribution.
#[derive(Debug, Clone)]
pub struct CategoricalSampler {
    cdf: Vec<f64>,
}

impl CategoricalSampler {
    /// Draw a category index.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// A numeric distribution for measure columns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Numeric {
    /// Uniform in `[lo, hi)`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Normal with the given mean and standard deviation
    /// (Box–Muller; values are not truncated).
    Normal {
        /// Mean.
        mean: f64,
        /// Standard deviation.
        std: f64,
    },
    /// Exponential with the given mean (models amounts/durations).
    Exponential {
        /// Mean (1/λ).
        mean: f64,
    },
}

impl Numeric {
    /// Draw a value.
    pub fn sample(&self, rng: &mut StdRng) -> f64 {
        match *self {
            Numeric::Uniform { lo, hi } => rng.gen_range(lo..hi),
            Numeric::Normal { mean, std } => {
                // Box–Muller transform.
                let u1: f64 = rng.gen::<f64>().max(1e-12);
                let u2: f64 = rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                mean + std * z
            }
            Numeric::Exponential { mean } => {
                let u: f64 = rng.gen::<f64>().max(1e-12);
                -mean * u.ln()
            }
        }
    }

    /// The distribution shifted by `delta` (used to plant measure-level
    /// deviations in a subset).
    pub fn shifted(&self, delta: f64) -> Numeric {
        match *self {
            Numeric::Uniform { lo, hi } => Numeric::Uniform {
                lo: lo + delta,
                hi: hi + delta,
            },
            Numeric::Normal { mean, std } => Numeric::Normal {
                mean: mean + delta,
                std,
            },
            Numeric::Exponential { mean } => Numeric::Exponential {
                mean: (mean + delta).max(1e-6),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn uniform_probabilities() {
        let c = Categorical::Uniform { k: 4 };
        assert_eq!(c.probabilities(), vec![0.25; 4]);
        assert_eq!(c.cardinality(), 4);
    }

    #[test]
    fn zipf_is_skewed_and_normalized() {
        let c = Categorical::Zipf { k: 5, s: 1.0 };
        let p = c.probabilities();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[0] > p[1] && p[1] > p[4]);
        // s = 0 degenerates to uniform.
        let u = Categorical::Zipf { k: 5, s: 0.0 }.probabilities();
        assert!(u.iter().all(|&x| (x - 0.2).abs() < 1e-12));
    }

    #[test]
    fn weighted_normalizes() {
        let c = Categorical::Weighted {
            weights: vec![2.0, 6.0],
        };
        assert_eq!(c.probabilities(), vec![0.25, 0.75]);
    }

    #[test]
    #[should_panic(expected = "positive mass")]
    fn weighted_zero_mass_panics() {
        Categorical::Weighted {
            weights: vec![0.0, 0.0],
        }
        .probabilities();
    }

    #[test]
    fn sampler_matches_distribution() {
        let c = Categorical::Zipf { k: 3, s: 1.0 };
        let s = c.sampler();
        let mut r = rng();
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[s.sample(&mut r)] += 1;
        }
        let p = c.probabilities();
        for i in 0..3 {
            let observed = counts[i] as f64 / 30_000.0;
            assert!(
                (observed - p[i]).abs() < 0.02,
                "cat {i}: {observed} vs {}",
                p[i]
            );
        }
    }

    #[test]
    fn reversed_flips_rank_order() {
        let c = Categorical::Zipf { k: 3, s: 1.0 };
        let r = c.reversed();
        let p = c.probabilities();
        let q = r.probabilities();
        assert!((p[0] - q[2]).abs() < 1e-12);
        assert!(q[2] > q[0]);
    }

    #[test]
    fn normal_moments() {
        let d = Numeric::Normal {
            mean: 10.0,
            std: 2.0,
        };
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn exponential_positive_with_right_mean() {
        let d = Numeric::Exponential { mean: 5.0 };
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        assert!(samples.iter().all(|&x| x >= 0.0));
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn uniform_range_respected() {
        let d = Numeric::Uniform { lo: 2.0, hi: 3.0 };
        let mut r = rng();
        for _ in 0..1000 {
            let x = d.sample(&mut r);
            assert!((2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn shifted_distributions() {
        let mut r = rng();
        let d = Numeric::Normal {
            mean: 0.0,
            std: 1.0,
        }
        .shifted(100.0);
        let x = d.sample(&mut r);
        assert!(x > 50.0);
        let u = Numeric::Uniform { lo: 0.0, hi: 1.0 }.shifted(10.0);
        assert!(matches!(u, Numeric::Uniform { lo, hi } if lo == 10.0 && hi == 11.0));
    }
}
