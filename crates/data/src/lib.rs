//! # seedb-data — demo datasets and workload generators
//!
//! The SeeDB demo (paper §4) runs on four datasets: Tableau's Store
//! Orders, FEC election contributions, a MIMIC-II medical dataset, and
//! synthetic data with adjustable "knobs". This crate generates all of
//! them:
//!
//! * [`datasets::store_orders`], [`datasets::election_contributions`],
//!   [`datasets::medical`] — schema-faithful synthetic analogues of the
//!   three real datasets (which are not redistributable), each with a
//!   *planted, documented trend* and a suggested analyst query that
//!   surfaces it;
//! * [`synthetic::SyntheticSpec`] — the Scenario-2 generator with knobs
//!   for row count, attribute count, cardinality, and skew, plus
//!   planted-deviation ground truth for recall experiments;
//! * [`distributions`] — the categorical (uniform/Zipf/weighted) and
//!   numeric (uniform/normal/exponential) sampling primitives.
//!
//! Everything is seeded and fully deterministic.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod datasets;
pub mod distributions;
pub mod synthetic;

pub use datasets::{election_contributions, medical, store_orders, Dataset};
pub use distributions::{Categorical, CategoricalSampler, Numeric};
pub use synthetic::{DimSpec, MeasureSpec, Plant, SyntheticSpec};
