//! Configurable synthetic dataset generator with planted deviations.
//!
//! Reproduces the paper's "set of synthetic datasets with varying sizes,
//! number of attributes, and data distributions" (demo Scenario 2), plus
//! a *planted ground truth*: a designated subset of rows whose
//! distribution over chosen dimensions (or measures) is deliberately
//! different from the rest of the table. Experiments then measure whether
//! SeeDB's top-k recovers the planted attributes (recall@k) — the
//! machine-checkable version of demo Scenario 1's "confirm that SEEDB
//! does indeed reproduce known information".

use memdb::{ColumnDef, DataType, Expr, Schema, Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::distributions::{Categorical, CategoricalSampler, Numeric};

/// One dimension column to generate.
#[derive(Debug, Clone)]
pub struct DimSpec {
    /// Column name.
    pub name: String,
    /// Base value distribution.
    pub distribution: Categorical,
    /// If set, this dimension is *derived* from another dimension (by
    /// index): the value is a deterministic renaming of the source value,
    /// except with probability `noise` it is drawn independently. Noise 0
    /// gives Cramér's V = 1 (e.g. airport name vs airport code); larger
    /// noise weakens the association.
    pub derived_from: Option<(usize, f64)>,
}

impl DimSpec {
    /// An independent dimension.
    pub fn new(name: &str, distribution: Categorical) -> Self {
        DimSpec {
            name: name.to_string(),
            distribution,
            derived_from: None,
        }
    }

    /// A dimension derived from dimension `source` with the given noise.
    pub fn derived(name: &str, k: usize, source: usize, noise: f64) -> Self {
        DimSpec {
            name: name.to_string(),
            distribution: Categorical::Uniform { k },
            derived_from: Some((source, noise)),
        }
    }
}

/// One measure column to generate.
#[derive(Debug, Clone)]
pub struct MeasureSpec {
    /// Column name.
    pub name: String,
    /// Base distribution.
    pub distribution: Numeric,
}

impl MeasureSpec {
    /// A measure.
    pub fn new(name: &str, distribution: Numeric) -> Self {
        MeasureSpec {
            name: name.to_string(),
            distribution,
        }
    }
}

/// The planted deviation: rows of the subset draw selected dimensions
/// from a *reversed* categorical distribution and selected measures from
/// a *shifted* numeric distribution.
#[derive(Debug, Clone, Default)]
pub struct Plant {
    /// Index of the dimension defining the subset.
    pub subset_dim: usize,
    /// Category index (within that dimension) defining the subset.
    pub subset_value: usize,
    /// Dimensions (by index) whose distribution deviates inside the
    /// subset.
    pub deviating_dims: Vec<usize>,
    /// Measures (by index) shifted inside the subset, with the shift.
    pub deviating_measures: Vec<(usize, f64)>,
}

/// Full specification of a synthetic table.
#[derive(Debug, Clone)]
pub struct SyntheticSpec {
    /// Table name.
    pub name: String,
    /// Row count.
    pub rows: usize,
    /// Dimension columns.
    pub dims: Vec<DimSpec>,
    /// Measure columns.
    pub measures: Vec<MeasureSpec>,
    /// RNG seed (generation is fully deterministic).
    pub seed: u64,
    /// Optional planted deviation.
    pub plant: Option<Plant>,
}

impl SyntheticSpec {
    /// The Scenario-2 "knobs" constructor: `num_dims` dimensions of the
    /// given `cardinality` and Zipf `skew`, `num_measures` normal
    /// measures.
    pub fn knobs(
        rows: usize,
        num_dims: usize,
        cardinality: usize,
        skew: f64,
        num_measures: usize,
        seed: u64,
    ) -> Self {
        let dims = (0..num_dims)
            .map(|i| {
                DimSpec::new(
                    &format!("d{i}"),
                    Categorical::Zipf {
                        k: cardinality,
                        s: skew,
                    },
                )
            })
            .collect();
        let measures = (0..num_measures)
            .map(|i| {
                MeasureSpec::new(
                    &format!("m{i}"),
                    Numeric::Normal {
                        mean: 100.0,
                        std: 20.0,
                    },
                )
            })
            .collect();
        SyntheticSpec {
            name: "synthetic".to_string(),
            rows,
            dims,
            measures,
            seed,
            plant: None,
        }
    }

    /// Builder: plant a deviation. `deviating_dims` must not include
    /// `subset_dim` (the subset dimension trivially deviates).
    pub fn with_plant(mut self, plant: Plant) -> Self {
        assert!(
            !plant.deviating_dims.contains(&plant.subset_dim),
            "subset dimension deviates trivially; plant other dimensions"
        );
        self.plant = Some(plant);
        self
    }

    /// Builder: rename the table.
    pub fn named(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    /// The label generated for category `idx` of dimension `dim`.
    pub fn dim_label(&self, dim: usize, idx: usize) -> String {
        format!("{}_{idx}", self.dims[dim].name)
    }

    /// The analyst filter selecting the planted subset
    /// (`subset_dim = subset_value`). `None` when nothing is planted.
    pub fn subset_filter(&self) -> Option<Expr> {
        self.plant.as_ref().map(|p| {
            Expr::col(&self.dims[p.subset_dim].name)
                .eq(self.dim_label(p.subset_dim, p.subset_value))
        })
    }

    /// Names of the planted (ground-truth deviating) dimensions.
    pub fn ground_truth_dims(&self) -> Vec<String> {
        self.plant
            .as_ref()
            .map(|p| {
                p.deviating_dims
                    .iter()
                    .map(|&d| self.dims[d].name.clone())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Generate the table.
    pub fn generate(&self) -> Table {
        let mut cols: Vec<ColumnDef> = self
            .dims
            .iter()
            .map(|d| ColumnDef::dimension(&d.name, DataType::Str))
            .collect();
        cols.extend(
            self.measures
                .iter()
                .map(|m| ColumnDef::measure(&m.name, DataType::Float64)),
        );
        let schema = Schema::new(cols).expect("generated schema is valid");
        let mut table = Table::with_capacity(&self.name, schema, self.rows);

        let mut rng = StdRng::seed_from_u64(self.seed);
        let base_samplers: Vec<CategoricalSampler> =
            self.dims.iter().map(|d| d.distribution.sampler()).collect();
        let deviant_samplers: Vec<Option<CategoricalSampler>> = self
            .dims
            .iter()
            .enumerate()
            .map(|(i, d)| {
                self.plant.as_ref().and_then(|p| {
                    p.deviating_dims
                        .contains(&i)
                        .then(|| d.distribution.reversed().sampler())
                })
            })
            .collect();

        for _ in 0..self.rows {
            // First pass: draw base values for every dimension.
            let mut dim_vals: Vec<usize> = self
                .dims
                .iter()
                .enumerate()
                .map(|(i, _)| base_samplers[i].sample(&mut rng))
                .collect();

            // Membership in the planted subset.
            let in_subset = self
                .plant
                .as_ref()
                .is_some_and(|p| dim_vals[p.subset_dim] == p.subset_value);

            // Second pass: planted dims re-draw from the reversed skew.
            if in_subset {
                for (i, s) in deviant_samplers.iter().enumerate() {
                    if let Some(s) = s {
                        dim_vals[i] = s.sample(&mut rng);
                    }
                }
            }

            // Third pass: derived dims copy (a renaming of) their source.
            for i in 0..self.dims.len() {
                if let Some((src, noise)) = self.dims[i].derived_from {
                    assert!(src != i, "dimension derived from itself");
                    if rng.gen::<f64>() >= noise {
                        let k = self.dims[i].distribution.cardinality();
                        dim_vals[i] = dim_vals[src] % k;
                    }
                    // else: keep the independent draw.
                }
            }

            let mut row: Vec<Value> = dim_vals
                .iter()
                .enumerate()
                .map(|(i, &v)| Value::from(self.dim_label(i, v)))
                .collect();
            for (mi, m) in self.measures.iter().enumerate() {
                let shifted = self.plant.as_ref().and_then(|p| {
                    in_subset
                        .then(|| {
                            p.deviating_measures
                                .iter()
                                .find(|(idx, _)| *idx == mi)
                                .map(|(_, delta)| m.distribution.shifted(*delta))
                        })
                        .flatten()
                });
                let dist = shifted.unwrap_or(m.distribution);
                row.push(Value::Float(dist.sample(&mut rng)));
            }
            table.push_row(row).expect("generated row matches schema");
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knobs_shape() {
        let spec = SyntheticSpec::knobs(500, 4, 8, 1.0, 2, 7);
        let t = spec.generate();
        assert_eq!(t.num_rows(), 500);
        assert_eq!(t.schema().dimensions().len(), 4);
        assert_eq!(t.schema().measures().len(), 2);
        // Cardinality bounded by the knob.
        assert!(t.column("d0").unwrap().distinct_count() <= 8);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = SyntheticSpec::knobs(200, 2, 5, 1.0, 1, 99);
        let a = spec.generate();
        let b = spec.generate();
        for i in 0..200 {
            assert_eq!(a.row(i), b.row(i));
        }
        let c = SyntheticSpec::knobs(200, 2, 5, 1.0, 1, 100).generate();
        let differs = (0..200).any(|i| a.row(i) != c.row(i));
        assert!(differs, "different seeds should differ");
    }

    #[test]
    fn planted_dim_deviates_in_subset() {
        let spec = SyntheticSpec::knobs(20_000, 3, 6, 1.2, 1, 5).with_plant(Plant {
            subset_dim: 0,
            subset_value: 0,
            deviating_dims: vec![1],
            deviating_measures: vec![],
        });
        let t = spec.generate();
        // Distribution of d1 inside vs outside the subset differs:
        // compare the modal category.
        let d0 = t.column("d0").unwrap();
        let d1 = t.column("d1").unwrap();
        let subset_label = "d0_0";
        let mut inside = std::collections::HashMap::new();
        let mut outside = std::collections::HashMap::new();
        for i in 0..t.num_rows() {
            let in_subset = d0.get(i).as_str() == Some(subset_label);
            let v = d1.get(i).render();
            *if in_subset {
                inside.entry(v).or_insert(0usize)
            } else {
                outside.entry(v).or_insert(0usize)
            } += 1;
        }
        let mode = |m: &std::collections::HashMap<String, usize>| {
            m.iter().max_by_key(|(_, c)| **c).map(|(k, _)| k.clone())
        };
        // Zipf mode is d1_0 outside; reversed inside -> d1_5.
        assert_eq!(mode(&outside).unwrap(), "d1_0");
        assert_eq!(mode(&inside).unwrap(), "d1_5");
    }

    #[test]
    fn unplanted_dim_does_not_deviate() {
        let spec = SyntheticSpec::knobs(20_000, 3, 6, 1.0, 1, 5).with_plant(Plant {
            subset_dim: 0,
            subset_value: 0,
            deviating_dims: vec![1],
            deviating_measures: vec![],
        });
        let t = spec.generate();
        let d0 = t.column("d0").unwrap();
        let d2 = t.column("d2").unwrap();
        let mut inside = [0f64; 6];
        let mut outside = [0f64; 6];
        let mut n_in = 0f64;
        let mut n_out = 0f64;
        for i in 0..t.num_rows() {
            let idx: usize = d2.get(i).render()[3..].parse().unwrap();
            if d0.get(i).as_str() == Some("d0_0") {
                inside[idx] += 1.0;
                n_in += 1.0;
            } else {
                outside[idx] += 1.0;
                n_out += 1.0;
            }
        }
        let l1: f64 = (0..6)
            .map(|i| (inside[i] / n_in - outside[i] / n_out).abs())
            .sum();
        assert!(l1 < 0.1, "unplanted dimension deviates: L1 = {l1}");
    }

    #[test]
    fn planted_measure_shift() {
        let spec = SyntheticSpec::knobs(10_000, 2, 4, 0.5, 2, 11).with_plant(Plant {
            subset_dim: 0,
            subset_value: 0,
            deviating_dims: vec![],
            deviating_measures: vec![(1, 50.0)],
        });
        let t = spec.generate();
        let d0 = t.column("d0").unwrap();
        let m1 = t.column("m1").unwrap();
        let (mut sum_in, mut n_in, mut sum_out, mut n_out) = (0.0, 0.0, 0.0, 0.0);
        for i in 0..t.num_rows() {
            let v = m1.f64_at(i).unwrap();
            if d0.get(i).as_str() == Some("d0_0") {
                sum_in += v;
                n_in += 1.0;
            } else {
                sum_out += v;
                n_out += 1.0;
            }
        }
        assert!((sum_in / n_in) - (sum_out / n_out) > 40.0);
    }

    #[test]
    fn derived_dimension_is_correlated() {
        let mut spec = SyntheticSpec::knobs(5_000, 2, 6, 0.8, 1, 3);
        spec.dims.push(DimSpec::derived("d_alias", 6, 0, 0.0));
        let t = spec.generate();
        let v = memdb::cramers_v(t.column("d0").unwrap(), t.column("d_alias").unwrap()).unwrap();
        assert!(v > 0.99, "noise-free derivation should give V≈1, got {v}");

        let mut spec = SyntheticSpec::knobs(5_000, 2, 6, 0.8, 1, 3);
        spec.dims.push(DimSpec::derived("d_noisy", 6, 0, 0.8));
        let t = spec.generate();
        let v = memdb::cramers_v(t.column("d0").unwrap(), t.column("d_noisy").unwrap()).unwrap();
        assert!(
            v < 0.7,
            "noisy derivation should weaken association, got {v}"
        );
    }

    #[test]
    fn subset_filter_and_ground_truth() {
        let spec = SyntheticSpec::knobs(100, 3, 4, 1.0, 1, 1).with_plant(Plant {
            subset_dim: 0,
            subset_value: 2,
            deviating_dims: vec![1, 2],
            deviating_measures: vec![],
        });
        let f = spec.subset_filter().unwrap();
        assert_eq!(f.to_sql(), "d0 = 'd0_2'");
        assert_eq!(spec.ground_truth_dims(), vec!["d1", "d2"]);
        assert!(SyntheticSpec::knobs(10, 1, 2, 0.0, 1, 1)
            .subset_filter()
            .is_none());
    }

    #[test]
    #[should_panic(expected = "trivially")]
    fn plant_on_subset_dim_rejected() {
        let _ = SyntheticSpec::knobs(10, 2, 2, 0.0, 1, 1).with_plant(Plant {
            subset_dim: 0,
            subset_value: 0,
            deviating_dims: vec![0],
            deviating_measures: vec![],
        });
    }
}
