//! Lock-order configuration: the declared partial order the
//! `lock-order` rule checks, parsed from a small TOML subset
//! (std-only — sections, `key = int`, `key = "str"`, `key = [list]`).
//!
//! The checked-in declaration lives at `crates/lint/lock-order.toml`
//! and is compiled into the binary as the default; `--config <path>`
//! overrides it.

use std::collections::BTreeMap;

/// The declared lock order and call restrictions.
#[derive(Debug, Clone, Default)]
pub struct LockOrderConfig {
    /// Lock name → rank. Along any nesting chain ranks must strictly
    /// increase (lower rank = acquired first / outermost).
    pub ranks: BTreeMap<String, u32>,
    /// Helper functions that acquire a lock: fn name → lock name.
    pub acquire_fns: BTreeMap<String, String>,
    /// Lock name → function idents that must not be called while the
    /// lock is held (e.g. the service cache lock across `execute`).
    pub forbid_while_held: BTreeMap<String, Vec<String>>,
}

/// The declaration compiled into the binary (`crates/lint/lock-order.toml`).
pub const DEFAULT_LOCK_ORDER: &str = include_str!("../lock-order.toml");

impl LockOrderConfig {
    /// Parse from the TOML subset. Returns `Err` with a line-tagged
    /// message on anything outside the subset.
    pub fn parse(src: &str) -> Result<LockOrderConfig, String> {
        let mut cfg = LockOrderConfig::default();
        let mut section = String::new();
        for (i, raw) in src.lines().enumerate() {
            let lineno = i + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                section = name.trim().to_string();
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {lineno}: expected `key = value`"))?;
            let key = key.trim().to_string();
            let value = value.trim();
            match section.as_str() {
                "locks" => {
                    let rank: u32 = value
                        .parse()
                        .map_err(|_| format!("line {lineno}: rank must be an integer"))?;
                    cfg.ranks.insert(key, rank);
                }
                "acquire_fns" => {
                    cfg.acquire_fns.insert(key, parse_str(value, lineno)?);
                }
                "forbid_while_held" => {
                    cfg.forbid_while_held
                        .insert(key, parse_list(value, lineno)?);
                }
                other => {
                    return Err(format!("line {lineno}: unknown section [{other}]"));
                }
            }
        }
        Ok(cfg)
    }

    /// The compiled-in default declaration.
    pub fn default_declared() -> LockOrderConfig {
        // The checked-in file is validated by tests; a broken edit
        // surfaces as an empty config, which the `lock-order` rule
        // reports as a configuration finding.
        LockOrderConfig::parse(DEFAULT_LOCK_ORDER).unwrap_or_default()
    }
}

fn strip_comment(line: &str) -> &str {
    // Good enough for this subset: `#` never appears inside our strings.
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

fn parse_str(value: &str, lineno: usize) -> Result<String, String> {
    value
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("line {lineno}: expected a quoted string"))
}

fn parse_list(value: &str, lineno: usize) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("line {lineno}: expected a [list]"))?;
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        out.push(parse_str(item, lineno)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_checked_in_declaration() {
        let cfg = LockOrderConfig::parse(DEFAULT_LOCK_ORDER).expect("lock-order.toml must parse");
        assert!(cfg.ranks.contains_key("mutate_lock"));
        assert!(cfg.ranks.contains_key("tables"));
        assert!(cfg.ranks.contains_key("durability"));
        assert!(cfg.ranks["mutate_lock"] < cfg.ranks["tables"]);
        assert!(cfg.ranks["tables"] < cfg.ranks["durability"]);
        assert_eq!(
            cfg.acquire_fns.get("lock_state").map(String::as_str),
            Some("state")
        );
        assert!(cfg.forbid_while_held["cache"]
            .iter()
            .any(|f| f == "execute"));
    }

    #[test]
    fn rejects_garbage_with_line_numbers() {
        let err = LockOrderConfig::parse("[locks]\nfoo bar\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = LockOrderConfig::parse("[locks]\nfoo = \"x\"\n").unwrap_err();
        assert!(err.contains("integer"), "{err}");
        let err = LockOrderConfig::parse("[nope]\nk = 1\n").unwrap_err();
        assert!(err.contains("unknown section"), "{err}");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let cfg = LockOrderConfig::parse("# header\n\n[locks]\na = 1 # trailing\n").unwrap();
        assert_eq!(cfg.ranks["a"], 1);
    }
}
