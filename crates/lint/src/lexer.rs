//! A small hand-written Rust lexer.
//!
//! `vendor/` carries no `syn` or proc-macro machinery, so the analyzer
//! tokenizes Rust by hand. The lexer handles exactly the constructs
//! that would otherwise corrupt a naive scan — raw strings (`r"…"`,
//! `r#"…"#`), byte/raw-byte strings, nested block comments,
//! char-literal vs lifetime disambiguation (`'a'` vs `'a`), raw
//! identifiers (`r#match`), and numeric literals that stop short of
//! range operators (`0..n`). Comments are captured out-of-band (they
//! carry `lint:allow` suppressions); whitespace is dropped.

/// Token categories the rules dispatch on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (raw identifiers lose their `r#` prefix).
    Ident,
    /// Lifetime such as `'a` (without the quote in `text`).
    Lifetime,
    /// Character or byte literal.
    CharLit,
    /// String literal of any flavor (plain, raw, byte, raw-byte).
    StrLit,
    /// Numeric literal (integer or float, any base, with suffix).
    NumLit,
    /// Single punctuation character (`.`, `(`, `[`, `;`, `#`, …).
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// Category.
    pub kind: TokKind,
    /// Source text (see [`TokKind`] for normalizations).
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

impl Token {
    /// True when the token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when the token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// A comment captured during lexing (text excludes the delimiters).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment body without `//`, `/*`, `*/`.
    pub text: String,
}

/// Lexer output: the token stream plus out-of-band comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order (no comments, no whitespace).
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Tokenize `src`. The lexer is total: malformed input degrades to
/// punctuation tokens rather than failing, so the rules always get a
/// stream to work with.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '\'' => self.char_or_lifetime(),
                '"' => self.string(line, String::new()),
                'r' if matches!(self.peek(1), Some('"' | '#')) => self.raw_or_ident(),
                'b' if self.peek(1) == Some('\'') => {
                    self.bump();
                    self.char_or_lifetime();
                }
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string(line, String::new());
                }
                'b' if self.peek(1) == Some('r') && matches!(self.peek(2), Some('"' | '#')) => {
                    self.bump();
                    self.raw_or_ident();
                }
                _ if c.is_alphabetic() || c == '_' => self.ident(),
                _ if c.is_ascii_digit() => self.number(),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment { line, text });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut text = String::new();
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    text.push_str("/*");
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    if depth > 0 {
                        text.push_str("*/");
                    }
                    self.bump();
                    self.bump();
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break,
            }
        }
        self.out.comments.push(Comment { line, text });
    }

    /// `'a'` is a char literal, `'a` is a lifetime, `'\n'` is a char.
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        match self.peek(0) {
            // Escape sequence: definitely a char literal.
            Some('\\') => {
                let mut text = String::new();
                self.bump();
                text.push('\\');
                // Consume the escape body up to the closing quote.
                while let Some(c) = self.peek(0) {
                    self.bump();
                    if c == '\'' {
                        break;
                    }
                    text.push(c);
                }
                self.push(TokKind::CharLit, text, line);
            }
            Some(c) if c.is_alphanumeric() || c == '_' => {
                // Could be 'x' (char) or 'x / 'xyz (lifetime): scan the
                // ident run, then look for a closing quote.
                let mut text = String::new();
                while let Some(c) = self.peek(0) {
                    if c.is_alphanumeric() || c == '_' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                if self.peek(0) == Some('\'') {
                    self.bump();
                    self.push(TokKind::CharLit, text, line);
                } else {
                    self.push(TokKind::Lifetime, text, line);
                }
            }
            Some(c) => {
                // Punctuation char literal like '(' or ' '.
                self.bump();
                let text = c.to_string();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(TokKind::CharLit, text, line);
            }
            None => self.push(TokKind::Punct, "'".into(), line),
        }
    }

    /// Plain (escaped) string; the opening `"` is at the cursor.
    fn string(&mut self, line: u32, mut text: String) {
        self.bump(); // opening quote
        while let Some(c) = self.peek(0) {
            self.bump();
            match c {
                '\\' => {
                    if let Some(e) = self.bump() {
                        text.push('\\');
                        text.push(e);
                    }
                }
                '"' => break,
                _ => text.push(c),
            }
        }
        self.push(TokKind::StrLit, text, line);
    }

    /// At `r` followed by `"` or `#`: raw string, or just an identifier
    /// starting with `r` (incl. raw identifiers `r#ident`).
    fn raw_or_ident(&mut self) {
        let line = self.line;
        // Count hashes after the `r` without consuming.
        let mut hashes = 0usize;
        while self.peek(1 + hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(1 + hashes) == Some('"') {
            // Raw string r##"…"##.
            self.bump(); // r
            for _ in 0..hashes {
                self.bump();
            }
            self.bump(); // opening quote
            let mut text = String::new();
            'outer: while let Some(c) = self.peek(0) {
                if c == '"' {
                    // Check for closing hash run.
                    let mut ok = true;
                    for i in 0..hashes {
                        if self.peek(1 + i) != Some('#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        self.bump();
                        for _ in 0..hashes {
                            self.bump();
                        }
                        break 'outer;
                    }
                }
                text.push(c);
                self.bump();
            }
            self.push(TokKind::StrLit, text, line);
        } else if hashes >= 1
            && self
                .peek(1 + hashes)
                .is_some_and(|c| c.is_alphabetic() || c == '_')
        {
            // Raw identifier r#match — emit as a plain ident.
            self.bump(); // r
            self.bump(); // #
            self.ident();
        } else {
            self.ident();
        }
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident, text, line);
    }

    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        // Integer part (covers 0x/0b/0o digits and `_` separators; any
        // alphanumeric keeps the suffix attached: 10u64, 0xffu8, 1e10).
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // Fractional part — but `1..n` is a range, not a float.
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            text.push('.');
            self.bump();
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.push(TokKind::NumLit, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        let got = kinds(r####"let s = r#"a " unwrap() "# ;"####);
        assert_eq!(
            got,
            vec![
                (TokKind::Ident, "let".into()),
                (TokKind::Ident, "s".into()),
                (TokKind::Punct, "=".into()),
                (TokKind::StrLit, "a \" unwrap() ".into()),
                (TokKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn nested_block_comments() {
        let out = lex("a /* outer /* inner */ still */ b");
        assert_eq!(out.tokens.len(), 2);
        assert!(out.tokens[0].is_ident("a"));
        assert!(out.tokens[1].is_ident("b"));
        assert_eq!(out.comments.len(), 1);
        assert_eq!(out.comments[0].text, " outer /* inner */ still ");
    }

    #[test]
    fn char_vs_lifetime() {
        let got = kinds("'a' 'ab 'static '\\n' '_'");
        assert_eq!(got[0], (TokKind::CharLit, "a".into()));
        assert_eq!(got[1], (TokKind::Lifetime, "ab".into()));
        assert_eq!(got[2], (TokKind::Lifetime, "static".into()));
        assert_eq!(got[3], (TokKind::CharLit, "\\n".into()));
        assert_eq!(got[4], (TokKind::CharLit, "_".into()));
    }

    #[test]
    fn byte_and_raw_byte_literals() {
        let got = kinds(r#"b'x' b"by" br"raw_by""#);
        assert_eq!(got[0], (TokKind::CharLit, "x".into()));
        assert_eq!(got[1], (TokKind::StrLit, "by".into()));
        assert_eq!(got[2], (TokKind::StrLit, "raw_by".into()));
    }

    #[test]
    fn raw_identifiers_and_plain_r_names() {
        let got = kinds("r#match rows r2d2");
        assert_eq!(got[0], (TokKind::Ident, "match".into()));
        assert_eq!(got[1], (TokKind::Ident, "rows".into()));
        assert_eq!(got[2], (TokKind::Ident, "r2d2".into()));
    }

    #[test]
    fn numbers_stop_before_ranges() {
        let got = kinds("0..n 1.5 0xff_u32 1e10");
        assert_eq!(got[0], (TokKind::NumLit, "0".into()));
        assert_eq!(got[1], (TokKind::Punct, ".".into()));
        assert_eq!(got[2], (TokKind::Punct, ".".into()));
        assert_eq!(got[3], (TokKind::Ident, "n".into()));
        assert_eq!(got[4], (TokKind::NumLit, "1.5".into()));
        assert_eq!(got[5], (TokKind::NumLit, "0xff_u32".into()));
        assert_eq!(got[6], (TokKind::NumLit, "1e10".into()));
    }

    #[test]
    fn escaped_quotes_in_strings() {
        let got = kinds(r#""a\"b" x"#);
        assert_eq!(got[0], (TokKind::StrLit, r#"a\"b"#.into()));
        assert_eq!(got[1], (TokKind::Ident, "x".into()));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let out = lex("a\nb\n\nc /* x\ny */ d");
        assert_eq!(out.tokens[0].line, 1);
        assert_eq!(out.tokens[1].line, 2);
        assert_eq!(out.tokens[2].line, 4);
        assert_eq!(out.tokens[3].line, 5); // `d` after the 2-line comment
        assert_eq!(out.comments[0].line, 4);
    }
}
