//! `seedb-lint` — a project-invariant static analyzer for the SeeDB
//! workspace.
//!
//! PRs 4–5 made the engine's correctness rest on conventions (typed
//! `DbError` instead of panics in the durable layer, a fixed lock
//! acquisition order, fsync-before-rename publish, wall-clock-free plan
//! fingerprints). This crate machine-checks those conventions on every
//! PR: a hand-written lexer ([`lexer`]) feeds an ordered rule pipeline
//! ([`rules`]) over the workspace sources, mirroring the pass-pipeline
//! shape the optimizer wants.
//!
//! Rules (see the README's "Static analysis & invariants"):
//!
//! * `panic-free-io` — no `unwrap`/`expect`/`panic!`-family macros or
//!   `[i]`-indexing in non-test `memdb::store`, `memdb::catalog`,
//!   `core::service` code;
//! * `lock-order` — lock nesting per function must follow the declared
//!   partial order (`crates/lint/lock-order.toml`), and the service
//!   cache lock is never held across plan execution;
//! * `no-wallclock-in-plan` — `Instant`/`SystemTime` are banned from
//!   plan/fingerprint/format code (fingerprints must be deterministic);
//! * `fsync-before-rename` — every rename-publish in the store is
//!   preceded by `sync_all`/`sync_data` in the same function;
//! * `metrics-naming` — metric names registered with the observability
//!   registry are dotted lower-snake (`^[a-z0-9_.]+$`), and the wall
//!   clocks banned above are also banned in `crates/obs` outside its
//!   single monotonic-clock shim.
//!
//! Violations are suppressible only by a
//! `// lint:allow(<rule>): <reason>` comment on the same or preceding
//! line; the reason is mandatory (a reasonless allow suppresses nothing
//! and is itself reported under the `allow-syntax` meta-rule).

pub mod config;
pub mod lexer;
pub mod rules;

use std::path::{Path, PathBuf};

use config::LockOrderConfig;
use lexer::{lex, Comment, TokKind, Token};

/// Names of all rules, in pipeline order.
pub const RULE_NAMES: &[&str] = &[
    "panic-free-io",
    "lock-order",
    "no-wallclock-in-plan",
    "fsync-before-rename",
    "metrics-naming",
    "allow-syntax",
];

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule that fired.
    pub rule: &'static str,
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

/// A parsed `lint:allow` suppression comment.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Line the comment starts on.
    pub line: u32,
    /// Rule name inside the parentheses.
    pub rule: String,
    /// Whether a non-empty `: <reason>` followed — required for the
    /// allow to take effect.
    pub reason_ok: bool,
}

/// A lexed source file ready for the rules.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// Token stream.
    pub tokens: Vec<Token>,
    /// Per-token flag: true when the token sits inside test code
    /// (`#[cfg(test)]` / `#[test]` items or `mod tests` blocks).
    pub in_test: Vec<bool>,
    /// Comments, for diagnostics.
    pub comments: Vec<Comment>,
    /// Parsed suppressions.
    pub allows: Vec<Allow>,
}

impl SourceFile {
    /// Lex `src` and compute test spans and suppressions. `rel` is the
    /// workspace-relative path used for rule scoping.
    pub fn parse(rel: impl Into<String>, src: &str) -> SourceFile {
        let lexed = lex(src);
        let in_test = mark_test_spans(&lexed.tokens);
        let allows = parse_allows(&lexed.comments);
        SourceFile {
            rel: rel.into(),
            tokens: lexed.tokens,
            in_test,
            comments: lexed.comments,
            allows,
        }
    }
}

/// Mark tokens under `#[cfg(test)]`/`#[test]` attributes and inside
/// `mod tests { … }` blocks.
fn mark_test_spans(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        // `#[ … ]` attribute.
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let attr_end = match matching_bracket(tokens, i + 1) {
                Some(e) => e,
                None => break,
            };
            if attr_is_test(&tokens[i + 2..attr_end]) {
                let item_end = mark_item(tokens, &mut in_test, i, attr_end + 1);
                i = item_end;
                continue;
            }
            i = attr_end + 1;
            continue;
        }
        // `mod tests { … }` without an attribute.
        if tokens[i].is_ident("mod")
            && tokens.get(i + 1).is_some_and(|t| t.is_ident("tests"))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct('{'))
        {
            if let Some(close) = matching_brace(tokens, i + 2) {
                for flag in in_test.iter_mut().take(close + 1).skip(i) {
                    *flag = true;
                }
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    in_test
}

/// Does the attribute body (tokens between `[` and `]`) gate test code?
/// `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]` do;
/// `#[cfg(not(test))]` does not.
fn attr_is_test(body: &[Token]) -> bool {
    let has = |s: &str| body.iter().any(|t| t.is_ident(s));
    if body.first().is_some_and(|t| t.is_ident("test")) {
        return true;
    }
    has("cfg") && has("test") && !has("not")
}

/// Mark from `start` (the `#` of the first attribute) through the end
/// of the annotated item. Skips any further attributes, then marks to
/// the item's closing `}` (or `;` for brace-less items). Returns the
/// index just past the item.
fn mark_item(tokens: &[Token], in_test: &mut [bool], start: usize, mut i: usize) -> usize {
    // Skip (and include) any stacked attributes.
    while i < tokens.len()
        && tokens[i].is_punct('#')
        && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
    {
        match matching_bracket(tokens, i + 1) {
            Some(e) => i = e + 1,
            None => break,
        }
    }
    // Find the item body: the first `{` at zero paren/bracket depth, or
    // a `;` there for brace-less items (`use`, fn declarations).
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut end = tokens.len().saturating_sub(1);
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                "{" if paren == 0 && bracket == 0 => {
                    end = matching_brace(tokens, i).unwrap_or(tokens.len() - 1);
                    break;
                }
                ";" if paren == 0 && bracket == 0 => {
                    end = i;
                    break;
                }
                _ => {}
            }
        }
        i += 1;
    }
    for flag in in_test.iter_mut().take(end + 1).skip(start) {
        *flag = true;
    }
    end + 1
}

/// Index of the `]` matching the `[` at `open`.
fn matching_bracket(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Index of the `}` matching the `{` at `open`.
fn matching_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Extract `lint:allow(rule): reason` suppressions from comments. Only
/// a comment that *starts* with `lint:allow` (after doc-comment
/// sigils) is a suppression — prose that merely mentions the syntax is
/// not.
fn parse_allows(comments: &[Comment]) -> Vec<Allow> {
    let mut out = Vec::new();
    for c in comments {
        let text = c.text.trim_start_matches(['/', '!', '*']).trim_start();
        let Some(rest) = text.strip_prefix("lint:allow") else {
            continue;
        };
        let malformed = Allow {
            line: c.line,
            rule: String::new(),
            reason_ok: false,
        };
        let Some(body) = rest.trim_start().strip_prefix('(') else {
            out.push(malformed);
            continue;
        };
        let Some(close) = body.find(')') else {
            out.push(malformed);
            continue;
        };
        let rule = body[..close].trim().to_string();
        let after = body[close + 1..].trim_start();
        let reason_ok = after
            .strip_prefix(':')
            .is_some_and(|r| !r.trim().is_empty());
        out.push(Allow {
            line: c.line,
            rule,
            reason_ok,
        });
    }
    out
}

/// The analyzer: ordered rule pipeline plus suppression handling.
pub struct Engine {
    /// Declared lock order for the `lock-order` rule.
    pub lock_cfg: LockOrderConfig,
}

impl Default for Engine {
    fn default() -> Engine {
        Engine {
            lock_cfg: LockOrderConfig::default_declared(),
        }
    }
}

impl Engine {
    /// Run every rule over `files`, apply `lint:allow` suppressions,
    /// and return the surviving findings sorted by file/line/rule.
    pub fn run(&self, files: &[SourceFile]) -> Vec<Finding> {
        let mut findings = Vec::new();
        if self.lock_cfg.ranks.is_empty() {
            findings.push(Finding {
                rule: "lock-order",
                file: "crates/lint/lock-order.toml".into(),
                line: 1,
                message: "no lock order declared (empty or unparsable configuration)".into(),
            });
        }
        for f in files {
            let mut file_findings = Vec::new();
            file_findings.extend(rules::panic_free_io(f));
            file_findings.extend(rules::lock_order(f, &self.lock_cfg));
            file_findings.extend(rules::no_wallclock_in_plan(f));
            file_findings.extend(rules::fsync_before_rename(f));
            file_findings.extend(rules::metrics_naming(f));
            findings.extend(self.apply_allows(f, file_findings));
        }
        findings.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
        });
        findings
    }

    /// Suppress findings covered by a well-formed allow on the same or
    /// preceding line; report malformed or unknown-rule allows.
    fn apply_allows(&self, f: &SourceFile, mut file_findings: Vec<Finding>) -> Vec<Finding> {
        file_findings.retain(|finding| {
            !f.allows.iter().any(|a| {
                a.reason_ok
                    && a.rule == finding.rule
                    && (a.line == finding.line || a.line + 1 == finding.line)
            })
        });
        let mut out = file_findings;
        for a in &f.allows {
            if !a.reason_ok {
                out.push(Finding {
                    rule: "allow-syntax",
                    file: f.rel.clone(),
                    line: a.line,
                    message: format!(
                        "lint:allow({}) without a reason — use `// lint:allow(<rule>): <reason>` \
                         (a reasonless allow suppresses nothing)",
                        a.rule
                    ),
                });
            } else if !RULE_NAMES.contains(&a.rule.as_str()) {
                out.push(Finding {
                    rule: "allow-syntax",
                    file: f.rel.clone(),
                    line: a.line,
                    message: format!("lint:allow names unknown rule `{}`", a.rule),
                });
            }
        }
        out
    }
}

/// Recursively collect and lex every `.rs` file under `root`, skipping
/// `target`, `vendor`, `fixtures`, and VCS directories. Paths in the
/// result are `root`-relative with forward slashes.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut paths = Vec::new();
    collect_rs(root, &mut paths)?;
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for p in paths {
        let src = std::fs::read_to_string(&p)?;
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .to_string_lossy()
            .replace('\\', "/");
        files.push(SourceFile::parse(rel, &src));
    }
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(
                name.as_ref(),
                "target" | "vendor" | "fixtures" | ".git" | ".claude"
            ) {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Serialize findings as a JSON array (std-only, hand-escaped).
pub fn findings_to_json(findings: &[Finding]) -> String {
    let mut s = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        s.push_str("  {\"rule\": ");
        json_str(&mut s, f.rule);
        s.push_str(", \"file\": ");
        json_str(&mut s, &f.file);
        s.push_str(&format!(", \"line\": {}, \"message\": ", f.line));
        json_str(&mut s, &f.message);
        s.push('}');
        if i + 1 < findings.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push(']');
    s
}

fn json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_marks_the_following_item() {
        let f = SourceFile::parse(
            "x.rs",
            "fn live() { a.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { b.unwrap(); } }\n",
        );
        let unwraps: Vec<bool> = f
            .tokens
            .iter()
            .zip(&f.in_test)
            .filter(|(t, _)| t.is_ident("unwrap"))
            .map(|(_, &in_test)| in_test)
            .collect();
        assert_eq!(unwraps, vec![false, true]);
    }

    #[test]
    fn cfg_not_test_is_not_test_code() {
        let f = SourceFile::parse("x.rs", "#[cfg(not(test))]\nfn live() { a.unwrap(); }\n");
        assert!(f.in_test.iter().all(|&b| !b));
    }

    #[test]
    fn test_attr_and_stacked_attrs() {
        let f = SourceFile::parse(
            "x.rs",
            "#[test]\n#[ignore]\nfn t() { x.unwrap(); }\nfn live() {}\n",
        );
        let live_pos = f.tokens.iter().position(|t| t.is_ident("live")).unwrap();
        assert!(!f.in_test[live_pos]);
        let unwrap_pos = f.tokens.iter().position(|t| t.is_ident("unwrap")).unwrap();
        assert!(f.in_test[unwrap_pos]);
    }

    #[test]
    fn mod_tests_without_attr_is_test_code() {
        let f = SourceFile::parse(
            "x.rs",
            "mod tests { fn t() { x.unwrap(); } }\nfn live() {}\n",
        );
        let unwrap_pos = f.tokens.iter().position(|t| t.is_ident("unwrap")).unwrap();
        assert!(f.in_test[unwrap_pos]);
        let live_pos = f.tokens.iter().position(|t| t.is_ident("live")).unwrap();
        assert!(!f.in_test[live_pos]);
    }

    #[test]
    fn allow_requires_reason() {
        let f = SourceFile::parse(
            "x.rs",
            "// lint:allow(panic-free-io): checked above\n// lint:allow(lock-order)\n// lint:allow(lock-order):   \n",
        );
        assert_eq!(f.allows.len(), 3);
        assert!(f.allows[0].reason_ok);
        assert_eq!(f.allows[0].rule, "panic-free-io");
        assert!(!f.allows[1].reason_ok);
        assert!(!f.allows[2].reason_ok, "blank reason must not count");
    }

    #[test]
    fn reasonless_allow_is_reported_and_suppresses_nothing() {
        let src = "fn f() -> u8 { v.unwrap() } // lint:allow(panic-free-io)\n";
        let f = SourceFile::parse("crates/memdb/src/store/x.rs", src);
        let findings = Engine::default().run(&[f]);
        assert!(findings.iter().any(|f| f.rule == "panic-free-io"));
        assert!(findings.iter().any(|f| f.rule == "allow-syntax"));
    }

    #[test]
    fn reasoned_allow_suppresses_same_and_next_line() {
        let src = "// lint:allow(panic-free-io): invariant: slot filled in loop above\nfn f() -> u8 { v.unwrap() }\n";
        let f = SourceFile::parse("crates/memdb/src/store/x.rs", src);
        let findings = Engine::default().run(&[f]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn unknown_rule_in_allow_is_reported() {
        let f = SourceFile::parse("x.rs", "// lint:allow(no-such-rule): because\n");
        let findings = Engine::default().run(&[f]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "allow-syntax");
        assert!(findings[0].message.contains("no-such-rule"));
    }

    #[test]
    fn json_escapes() {
        let findings = vec![Finding {
            rule: "panic-free-io",
            file: "a\"b.rs".into(),
            line: 3,
            message: "tab\there".into(),
        }];
        let j = findings_to_json(&findings);
        assert!(j.contains("a\\\"b.rs"));
        assert!(j.contains("tab\\there"));
    }
}
