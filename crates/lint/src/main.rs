//! `seedb-lint` CLI: scan the workspace sources and report
//! project-invariant violations.
//!
//! ```text
//! seedb-lint [--deny] [--json [path]] [--root <dir>] [--config <lock-order.toml>]
//! ```
//!
//! * `--deny`   exit non-zero when findings remain (the CI gate);
//! * `--json`   emit findings as a JSON array — to `path` when one
//!   follows (the CI artifact), to stdout otherwise;
//! * `--root`   workspace root (default: walk up from the current
//!   directory to the first `Cargo.toml` containing `[workspace]`);
//! * `--config` override the compiled-in `lock-order.toml`.

use std::path::PathBuf;
use std::process::ExitCode;

use seedb_lint::config::LockOrderConfig;
use seedb_lint::{findings_to_json, scan_workspace, Engine};

fn main() -> ExitCode {
    let mut deny = false;
    let mut json = false;
    let mut json_path: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut config: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1).peekable();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--deny" => deny = true,
            "--json" => {
                json = true;
                if args.peek().is_some_and(|n| !n.starts_with("--")) {
                    json_path = args.next().map(PathBuf::from);
                }
            }
            "--root" => root = args.next().map(PathBuf::from),
            "--config" => config = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                eprintln!(
                    "seedb-lint: SeeDB project-invariant analyzer\n\
                     usage: seedb-lint [--deny] [--json [path]] [--root <dir>] [--config <toml>]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("seedb-lint: unknown argument `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("seedb-lint: no workspace root found (pass --root)");
            return ExitCode::from(2);
        }
    };

    let lock_cfg = match &config {
        Some(path) => match std::fs::read_to_string(path).map_err(|e| e.to_string()) {
            Ok(src) => match LockOrderConfig::parse(&src) {
                Ok(cfg) => cfg,
                Err(e) => {
                    eprintln!("seedb-lint: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("seedb-lint: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        },
        None => LockOrderConfig::default_declared(),
    };

    let files = match scan_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("seedb-lint: scanning {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let engine = Engine { lock_cfg };
    let findings = engine.run(&files);

    if json {
        let rendered = findings_to_json(&findings);
        match &json_path {
            Some(path) => {
                if let Err(e) = std::fs::write(path, rendered + "\n") {
                    eprintln!("seedb-lint: writing {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
            None => println!("{rendered}"),
        }
    } else {
        for f in &findings {
            println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        }
    }
    eprintln!(
        "seedb-lint: {} file(s) scanned, {} finding(s)",
        files.len(),
        findings.len()
    );

    if deny && !findings.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Walk up from the current directory to the first `Cargo.toml` that
/// declares a `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(s) = std::fs::read_to_string(&manifest) {
            if s.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
