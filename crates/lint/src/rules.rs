//! The rule pipeline: four project-invariant checks over the token
//! stream of one file. Rules are lexical approximations — they know
//! nothing about types — tuned to this codebase's idioms; each is
//! path-scoped so the approximation only has to hold where the
//! invariant matters.

use crate::config::LockOrderConfig;
use crate::lexer::{TokKind, Token};
use crate::{Finding, SourceFile};

/// Keywords that can directly precede a `[` without forming an index
/// expression (`let [a] = …`, `match x { … }`, `return [1]`, …).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "match", "if", "else", "return", "in", "for", "while", "loop", "move",
    "as", "dyn", "impl", "where", "pub", "use", "static", "const", "fn", "enum", "struct", "type",
    "break", "continue", "unsafe", "async", "await", "box", "yield",
];

/// Methods that acquire a lock guard on their receiver.
const ACQUIRE_METHODS: &[&str] = &[
    "lock",
    "read",
    "write",
    "lock_recovered",
    "read_recovered",
    "write_recovered",
];

fn in_panic_scope(rel: &str) -> bool {
    rel.starts_with("crates/memdb/src/store/")
        || rel == "crates/memdb/src/catalog.rs"
        || rel == "crates/core/src/service.rs"
}

fn in_lock_scope(rel: &str) -> bool {
    in_panic_scope(rel)
}

fn in_wallclock_scope(rel: &str) -> bool {
    rel == "crates/memdb/src/plan.rs"
        || rel.starts_with("crates/memdb/src/plan/")
        || rel == "crates/memdb/src/store/format.rs"
        || rel == "crates/core/src/service.rs"
        // The soak harness's workload decisions must replay
        // byte-identically from the seed: wall clock is confined to the
        // latency-measurement shim, everything else runs on virtual
        // time.
        || (rel.starts_with("crates/bench/src/soak/") && rel != "crates/bench/src/soak/shim.rs")
        || rel == "crates/bench/src/bin/soak.rs"
        // All observability timing flows through the Clock trait so
        // the soak can inject virtual time; the monotonic production
        // shim is the single file allowed to touch the real clock.
        || (rel.starts_with("crates/obs/src/") && rel != "crates/obs/src/clock.rs")
}

fn in_fsync_scope(rel: &str) -> bool {
    rel.starts_with("crates/memdb/src/store/")
}

/// `panic-free-io`: no `unwrap`/`expect`, no panicking macros, no
/// `[i]`-index/slice expressions in non-test code of the durable layer
/// and the service.
pub fn panic_free_io(f: &SourceFile) -> Vec<Finding> {
    if !in_panic_scope(&f.rel) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let toks = &f.tokens;
    for (i, t) in toks.iter().enumerate() {
        if f.in_test[i] {
            continue;
        }
        let next_is = |c: char| toks.get(i + 1).is_some_and(|n| n.is_punct(c));
        let prev = i.checked_sub(1).and_then(|j| toks.get(j));
        match t.kind {
            // Method call `.unwrap(` — `unwrap_or_else` etc. are
            // different idents and intentionally not flagged.
            TokKind::Ident
                if matches!(t.text.as_str(), "unwrap" | "expect")
                    && next_is('(')
                    && prev.is_some_and(|p| p.is_punct('.')) =>
            {
                out.push(finding(
                    "panic-free-io",
                    f,
                    t.line,
                    format!(
                        ".{}() can panic — propagate a typed DbError instead",
                        t.text
                    ),
                ));
            }
            TokKind::Ident
                if matches!(
                    t.text.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                ) && next_is('!') =>
            {
                out.push(finding(
                    "panic-free-io",
                    f,
                    t.line,
                    format!("{}! is banned here — return a typed DbError", t.text),
                ));
            }
            TokKind::Punct if t.text == "[" => {
                let Some(p) = prev else { continue };
                let is_index_base = match p.kind {
                    TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&p.text.as_str()),
                    TokKind::Punct => matches!(p.text.as_str(), ")" | "]" | "?"),
                    _ => false,
                };
                if !is_index_base {
                    continue;
                }
                // `&buf[..]` (full-range) cannot panic — skip when the
                // bracket content is exactly `..`.
                if let Some(close) = crate::matching_bracket(toks, i) {
                    let inner = &toks[i + 1..close];
                    let full_range = inner.len() == 2 && inner.iter().all(|t| t.is_punct('.'));
                    if full_range {
                        continue;
                    }
                }
                out.push(finding(
                    "panic-free-io",
                    f,
                    t.line,
                    "index/slice expression can panic — use .get()/.get_mut() and handle None"
                        .into(),
                ));
            }
            _ => {}
        }
    }
    out
}

/// State of one held lock during the lexical walk of a function body.
struct Held {
    name: String,
    rank: u32,
    /// Brace depth at acquisition (body opens at depth 1).
    depth: i32,
    /// `Some(binding)` for `let guard = …;` (held to end of block or
    /// `drop(binding)`), `None` for statement temporaries (held to the
    /// `;` that ends the statement at `depth`).
    binding: Option<String>,
}

/// `lock-order`: per function body, lock-acquisition nesting must
/// strictly increase in declared rank, and functions on a lock's
/// forbid-list must not be called while it is held.
pub fn lock_order(f: &SourceFile, cfg: &LockOrderConfig) -> Vec<Finding> {
    if !in_lock_scope(&f.rel) || cfg.ranks.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let toks = &f.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("fn") && !f.in_test[i] {
            if let Some((body_open, body_close)) = fn_body(toks, i) {
                walk_body(f, cfg, body_open, body_close, &mut out);
                i = body_open + 1; // nested fns get their own walk
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Locate the body `{ … }` of the fn whose `fn` keyword is at `at`.
/// Returns `None` for body-less declarations (trait methods).
fn fn_body(toks: &[Token], at: usize) -> Option<(usize, usize)> {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut j = at + 1;
    while j < toks.len() {
        let t = &toks[j];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                "{" if paren == 0 && bracket == 0 => {
                    return crate::matching_brace(toks, j).map(|close| (j, close));
                }
                ";" if paren == 0 && bracket == 0 => return None,
                _ => {}
            }
        }
        j += 1;
    }
    None
}

/// Walk one function body tracking held locks.
fn walk_body(
    f: &SourceFile,
    cfg: &LockOrderConfig,
    open: usize,
    close: usize,
    out: &mut Vec<Finding>,
) {
    let toks = &f.tokens;
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0i32;
    let mut i = open;
    while i <= close {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    held.retain(|h| h.depth <= depth);
                }
                ";" => held.retain(|h| !(h.binding.is_none() && h.depth == depth)),
                _ => {}
            }
            i += 1;
            continue;
        }
        // Explicit release: drop(guard).
        if t.is_ident("drop")
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && toks.get(i + 3).is_some_and(|n| n.is_punct(')'))
        {
            if let Some(arg) = toks.get(i + 2) {
                if arg.kind == TokKind::Ident {
                    held.retain(|h| h.binding.as_deref() != Some(arg.text.as_str()));
                }
            }
            i += 4;
            continue;
        }
        // Lock acquisition?
        if let Some(lock_name) = acquisition_at(toks, i, cfg) {
            let rank = cfg.ranks[&lock_name];
            for h in &held {
                if rank <= h.rank {
                    let msg = if h.name == lock_name {
                        format!("re-entrant acquisition of lock `{lock_name}` (already held)")
                    } else {
                        format!(
                            "lock-order inversion: acquiring `{lock_name}` (rank {rank}) while \
                             holding `{}` (rank {}) — declared order is lower rank first",
                            h.name, h.rank
                        )
                    };
                    out.push(finding("lock-order", f, t.line, msg));
                }
            }
            let binding = guard_binding(toks, i);
            held.push(Held {
                name: lock_name,
                rank,
                depth,
                binding,
            });
            i += 1;
            continue;
        }
        // Forbidden call while a lock is held?
        if t.kind == TokKind::Ident && toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            for h in &held {
                if let Some(forbidden) = cfg.forbid_while_held.get(&h.name) {
                    if forbidden.iter().any(|c| c == &t.text) {
                        out.push(finding(
                            "lock-order",
                            f,
                            t.line,
                            format!(
                                "`{}` called while lock `{}` is held — this lock must not be \
                                 held across plan execution",
                                t.text, h.name
                            ),
                        ));
                    }
                }
            }
        }
        i += 1;
    }
}

/// If the token at `i` is the method ident of a lock acquisition
/// (`<lock>.lock()`, `<lock>.read_recovered()`, …) or a configured
/// acquire-fn call, return the lock's configured name.
fn acquisition_at(toks: &[Token], i: usize, cfg: &LockOrderConfig) -> Option<String> {
    let t = &toks[i];
    if t.kind != TokKind::Ident || !toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
        return None;
    }
    if let Some(lock) = cfg.acquire_fns.get(&t.text) {
        return Some(lock.clone());
    }
    if !ACQUIRE_METHODS.contains(&t.text.as_str()) {
        return None;
    }
    // Receiver chain: `… . <recv> . <method> (` — the ident two back.
    if !i.checked_sub(1).is_some_and(|j| toks[j].is_punct('.')) {
        return None;
    }
    let recv = i.checked_sub(2).map(|j| &toks[j])?;
    if recv.kind == TokKind::Ident && cfg.ranks.contains_key(&recv.text) {
        return Some(recv.text.clone());
    }
    None
}

/// Classify the guard produced by the acquisition whose method ident is
/// at `i`: `Some(binding)` when the statement is exactly
/// `let [mut] <binding> = <chain>.<acquire>();` (guard lives to end of
/// block), `None` otherwise (statement temporary).
fn guard_binding(toks: &[Token], i: usize) -> Option<String> {
    // The call's `(` is at i+1; the guard is let-bound only when the
    // matching `)` is immediately followed by `;`.
    let close = matching_paren(toks, i + 1)?;
    if !toks.get(close + 1).is_some_and(|n| n.is_punct(';')) {
        return None;
    }
    // Walk back over the receiver chain (`ident` / `.` / `self`) to the
    // statement head, expecting `let [mut] <ident> =`.
    let mut j = i;
    while j >= 1 {
        let p = &toks[j - 1];
        if p.is_punct('.') || p.kind == TokKind::Ident && j >= 2 && toks[j - 2].is_punct('.') {
            j -= 1;
            continue;
        }
        if p.kind == TokKind::Ident {
            // chain head like `self` or a local; one more step back.
            j -= 1;
            continue;
        }
        break;
    }
    // toks[j-1] should be `=`, toks[j-2] the binding ident.
    if j >= 2 && toks[j - 1].is_punct('=') && toks[j - 2].kind == TokKind::Ident {
        let name = toks[j - 2].text.clone();
        let head = j.checked_sub(3).map(|k| &toks[k]);
        let head2 = j.checked_sub(4).map(|k| &toks[k]);
        let is_let = head.is_some_and(|h| h.is_ident("let"))
            || (head.is_some_and(|h| h.is_ident("mut"))
                && head2.is_some_and(|h| h.is_ident("let")));
        if is_let {
            return Some(name);
        }
    }
    None
}

fn matching_paren(toks: &[Token], open: usize) -> Option<usize> {
    if !toks.get(open).is_some_and(|t| t.is_punct('(')) {
        return None;
    }
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// `no-wallclock-in-plan`: plan, fingerprint, and on-disk format code
/// must not read wall clocks — fingerprints and encodings have to be
/// deterministic across runs and machines.
pub fn no_wallclock_in_plan(f: &SourceFile) -> Vec<Finding> {
    if !in_wallclock_scope(&f.rel) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, t) in f.tokens.iter().enumerate() {
        if f.in_test[i] {
            continue;
        }
        if t.kind == TokKind::Ident && matches!(t.text.as_str(), "Instant" | "SystemTime") {
            out.push(finding(
                "no-wallclock-in-plan",
                f,
                t.line,
                format!(
                    "{} in plan/fingerprint/format code — outputs must be deterministic, \
                     derive ordering from versions or logical ticks",
                    t.text
                ),
            ));
        }
    }
    out
}

/// `metrics-naming`: every metric name passed as a string literal to a
/// registry `register_*` call must be dotted lower-snake
/// (`^[a-z0-9_.]+$`) — the JSON telemetry surface stays grep-able and
/// collision-free by convention. Applies workspace-wide (any crate may
/// register metrics); dynamically built names are invisible to this
/// lexical check and are left to `seedb_obs::is_valid_name` at runtime.
pub fn metrics_naming(f: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    let toks = &f.tokens;
    for (i, t) in toks.iter().enumerate() {
        if f.in_test[i]
            || t.kind != TokKind::Ident
            || !matches!(
                t.text.as_str(),
                "register_counter" | "register_gauge" | "register_histogram"
            )
            || !toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            continue;
        }
        let Some(arg) = toks.get(i + 2) else { continue };
        if arg.kind != TokKind::StrLit {
            continue;
        }
        let ok = !arg.text.is_empty()
            && arg
                .text
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '.');
        if !ok {
            out.push(finding(
                "metrics-naming",
                f,
                arg.line,
                format!(
                    "metric name {:?} does not match ^[a-z0-9_.]+$ — use dotted \
                     lower-snake names like `service.cache.hits`",
                    arg.text
                ),
            ));
        }
    }
    out
}

/// `fsync-before-rename`: a rename-publish without a preceding
/// `sync_all`/`sync_data` in the same function can publish a file whose
/// contents are not yet durable.
pub fn fsync_before_rename(f: &SourceFile) -> Vec<Finding> {
    if !in_fsync_scope(&f.rel) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let toks = &f.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("fn") && !f.in_test[i] {
            if let Some((open, close)) = fn_body(toks, i) {
                let mut synced = false;
                for j in open..=close {
                    let t = &toks[j];
                    if t.kind != TokKind::Ident || !toks.get(j + 1).is_some_and(|n| n.is_punct('('))
                    {
                        continue;
                    }
                    match t.text.as_str() {
                        "sync_all" | "sync_data" => synced = true,
                        "rename" if !synced => out.push(finding(
                            "fsync-before-rename",
                            f,
                            t.line,
                            "rename without a preceding sync_all/sync_data in this function — \
                             the published file may not be durable"
                                .into(),
                        )),
                        _ => {}
                    }
                }
                i = open + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

fn finding(rule: &'static str, f: &SourceFile, line: u32, message: String) -> Finding {
    Finding {
        rule,
        file: f.rel.clone(),
        line,
        message,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceFile;

    const STORE: &str = "crates/memdb/src/store/x.rs";

    fn run_panic(src: &str) -> Vec<Finding> {
        panic_free_io(&SourceFile::parse(STORE, src))
    }

    #[test]
    fn unwrap_and_expect_fire_outside_tests_only() {
        let src = "fn f() { a.unwrap(); b.expect(\"x\"); }\n#[cfg(test)]\nmod tests { fn t() { c.unwrap(); } }\n";
        let got = run_panic(src);
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn unwrap_or_else_is_not_flagged() {
        assert!(run_panic("fn f() { a.unwrap_or_else(|| 0); a.unwrap_or_default(); }").is_empty());
    }

    #[test]
    fn panic_macros_fire() {
        let got = run_panic("fn f() { panic!(\"x\"); unreachable!(); }");
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn indexing_fires_but_patterns_and_types_do_not() {
        // Index expressions: flagged.
        assert_eq!(run_panic("fn f(v: Vec<u8>) { v[0]; }").len(), 1);
        assert_eq!(run_panic("fn f() { foo()[1]; }").len(), 1);
        assert_eq!(run_panic("fn f() { x?[1]; }").len(), 1);
        // Slice with a range: flagged (can panic).
        assert_eq!(run_panic("fn f(v: &[u8]) { &v[1..3]; }").len(), 1);
        // Full-range slice: cannot panic.
        assert!(run_panic("fn f(v: &[u8]) { &v[..]; }").is_empty());
        // Patterns, types, attributes, macros: not index expressions.
        assert!(run_panic("fn f() { let [a] = pair; }").is_empty());
        assert!(run_panic("fn f(x: [u8; 4]) {}").is_empty());
        assert!(run_panic("#[derive(Debug)]\nstruct S;").is_empty());
        assert!(run_panic("fn f() { vec![1, 2]; }").is_empty());
    }

    #[test]
    fn out_of_scope_files_are_ignored() {
        let f = SourceFile::parse("crates/viz/src/lib.rs", "fn f() { a.unwrap(); }");
        assert!(panic_free_io(&f).is_empty());
    }

    fn run_lock(src: &str) -> Vec<Finding> {
        lock_order(
            &SourceFile::parse("crates/memdb/src/catalog.rs", src),
            &LockOrderConfig::default_declared(),
        )
    }

    #[test]
    fn correct_nesting_is_clean() {
        let src = "fn f(&self) {\n  let _m = self.mutate_lock.lock_recovered();\n  let t = self.tables.read_recovered();\n  let d = self.durability.lock_recovered();\n}\n";
        assert!(run_lock(src).is_empty());
    }

    #[test]
    fn inversion_fires() {
        let src = "fn f(&self) {\n  let d = self.durability.lock_recovered();\n  let t = self.tables.read_recovered();\n}\n";
        let got = run_lock(src);
        assert_eq!(got.len(), 1);
        assert!(got[0].message.contains("inversion"), "{}", got[0].message);
        assert_eq!(got[0].line, 3);
    }

    #[test]
    fn reentrancy_fires() {
        let src = "fn f(&self) {\n  let a = self.tables.read_recovered();\n  let b = self.tables.read_recovered();\n}\n";
        let got = run_lock(src);
        assert_eq!(got.len(), 1);
        assert!(got[0].message.contains("re-entrant"));
    }

    #[test]
    fn drop_releases_named_guard() {
        let src = "fn f(&self) {\n  let d = self.durability.lock_recovered();\n  drop(d);\n  let t = self.tables.read_recovered();\n}\n";
        assert!(run_lock(src).is_empty());
    }

    #[test]
    fn block_scope_releases_named_guard() {
        let src = "fn f(&self) {\n  { let d = self.durability.lock_recovered(); }\n  let t = self.tables.read_recovered();\n}\n";
        assert!(run_lock(src).is_empty());
    }

    #[test]
    fn statement_temporary_releases_at_semicolon() {
        // The guard in `self.durability.lock_recovered().probe()` dies
        // at the `;`, so the later tables read is fine.
        let src = "fn f(&self) {\n  self.durability.lock_recovered().probe();\n  let t = self.tables.read_recovered();\n}\n";
        assert!(run_lock(src).is_empty());
    }

    #[test]
    fn let_bound_call_result_is_still_a_temporary() {
        // `let evicted = cache.lock_recovered().insert(..);` binds the
        // insert result, not the guard — the guard dies at the `;`.
        let src = "fn f(&self) {\n  let evicted = self.cache.lock_recovered().insert(1);\n  let t = self.pending.lock_recovered();\n}\n";
        assert!(run_lock(src).is_empty());
    }

    #[test]
    fn forbidden_call_under_cache_lock_fires() {
        let src = "fn f(&self) {\n  let c = self.cache.lock_recovered();\n  execute(plan);\n}\n";
        let got = run_lock(src);
        assert_eq!(got.len(), 1);
        assert!(got[0].message.contains("execute"));
    }

    #[test]
    fn acquire_fn_maps_to_its_lock() {
        let src = "fn f(&self) {\n  let s = self.lock_state(b);\n  let t = self.tables.read_recovered();\n}\n";
        let got = run_lock(src);
        assert_eq!(got.len(), 1, "state (60) then tables (20) inverts: {got:?}");
    }

    #[test]
    fn wallclock_fires_in_plan_scope_only() {
        let f = SourceFile::parse("crates/memdb/src/plan.rs", "use std::time::Instant;\n");
        assert_eq!(no_wallclock_in_plan(&f).len(), 1);
        let f = SourceFile::parse("crates/memdb/src/exec/mod.rs", "use std::time::Instant;\n");
        assert!(no_wallclock_in_plan(&f).is_empty());
        // Soak workload code may not read wall clocks — except the
        // latency shim, which exists to hold that single exemption.
        let f = SourceFile::parse(
            "crates/bench/src/soak/driver.rs",
            "use std::time::Instant;\n",
        );
        assert_eq!(no_wallclock_in_plan(&f).len(), 1);
        let f = SourceFile::parse(
            "crates/bench/src/bin/soak.rs",
            "let t = SystemTime::now();\n",
        );
        assert_eq!(no_wallclock_in_plan(&f).len(), 1);
        let f = SourceFile::parse("crates/bench/src/soak/shim.rs", "use std::time::Instant;\n");
        assert!(no_wallclock_in_plan(&f).is_empty());
    }

    #[test]
    fn wallclock_fires_in_obs_except_the_clock_shim() {
        let f = SourceFile::parse("crates/obs/src/trace.rs", "use std::time::Instant;\n");
        assert_eq!(no_wallclock_in_plan(&f).len(), 1);
        // The telemetry pipeline (sampler windows, watchdog rules,
        // flight-recorder dumps) must tick on the injected Clock only —
        // a wall read there would make sampled windows and dump bytes
        // non-replayable under the soak's virtual clock.
        let f = SourceFile::parse(
            "crates/obs/src/timeseries.rs",
            "fn tick() { let t = Instant::now(); }\n",
        );
        assert_eq!(no_wallclock_in_plan(&f).len(), 1);
        let f = SourceFile::parse(
            "crates/obs/src/watchdog.rs",
            "fn stamp() { let t = SystemTime::now(); }\n",
        );
        assert_eq!(no_wallclock_in_plan(&f).len(), 1);
        let f = SourceFile::parse("crates/obs/src/clock.rs", "use std::time::Instant;\n");
        assert!(no_wallclock_in_plan(&f).is_empty());
    }

    #[test]
    fn metric_names_must_be_dotted_lower_snake() {
        let run = |src: &str| metrics_naming(&SourceFile::parse("crates/any/src/x.rs", src));
        assert!(run("fn f() { r.register_counter(\"a.b_c.d1\"); }").is_empty());
        assert_eq!(run("fn f() { r.register_counter(\"A.b\"); }").len(), 1);
        assert_eq!(run("fn f() { r.register_gauge(\"a-b\"); }").len(), 1);
        assert_eq!(run("fn f() { r.register_histogram(\"a b\"); }").len(), 1);
        assert_eq!(run("fn f() { r.register_counter(\"\"); }").len(), 1);
        // Non-literal arguments are out of lexical reach.
        assert!(run("fn f() { r.register_counter(name); }").is_empty());
        // Unrelated calls with string args are not metric names.
        assert!(run("fn f() { r.register(\"NOT A METRIC\"); }").is_empty());
        // The telemetry pipeline's own instruments follow the same
        // convention (these are the literal names the service
        // registers).
        assert!(run("fn f() { r.register_counter(\"telemetry.windows\"); \
             r.register_counter(\"telemetry.breaches\"); \
             r.register_counter(\"telemetry.dumps\"); }")
        .is_empty());
        assert_eq!(
            run("fn f() { r.register_counter(\"telemetry.Dumps\"); }").len(),
            1
        );
    }

    #[test]
    fn rename_without_sync_fires_with_sync_clean() {
        let bad = SourceFile::parse(STORE, "fn publish(p: &Path) { fs::rename(a, b); }\n");
        assert_eq!(fsync_before_rename(&bad).len(), 1);
        let good = SourceFile::parse(
            STORE,
            "fn publish(f: &File) { f.sync_all(); fs::rename(a, b); }\n",
        );
        assert!(fsync_before_rename(&good).is_empty());
    }
}
