//! Integration tests: every rule fires on its checked-in
//! known-violation fixture (`tests/fixtures/`), and the real workspace
//! sources are clean. Fixtures are parsed under synthetic in-scope
//! paths because rule scoping keys off the workspace-relative path;
//! the workspace scanner itself skips `fixtures/` directories.

use seedb_lint::{scan_workspace, Engine, Finding, SourceFile};

const STORE_PATH: &str = "crates/memdb/src/store/fixture.rs";
const SERVICE_PATH: &str = "crates/core/src/service.rs";
const PLAN_PATH: &str = "crates/memdb/src/plan.rs";

fn run_fixture(rel: &str, src: &str) -> Vec<Finding> {
    Engine::default().run(&[SourceFile::parse(rel, src)])
}

#[test]
fn panic_free_io_fires_on_fixture() {
    let findings = run_fixture(STORE_PATH, include_str!("fixtures/panic_free_io.rs"));
    let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    assert_eq!(
        rules.iter().filter(|r| **r == "panic-free-io").count(),
        4,
        "index, expect, unwrap, panic! — got {findings:?}"
    );
    // The `mod tests` block's unwrap/index must not be flagged.
    assert!(findings.iter().all(|f| f.line < 15), "{findings:?}");
}

#[test]
fn lock_order_fires_on_fixture() {
    let findings = run_fixture(SERVICE_PATH, include_str!("fixtures/lock_order.rs"));
    let inversions: Vec<&Finding> = findings.iter().filter(|f| f.rule == "lock-order").collect();
    assert_eq!(inversions.len(), 2, "{findings:?}");
    assert!(
        inversions[0].message.contains("inversion"),
        "{:?}",
        inversions[0]
    );
    assert!(
        inversions[1].message.contains("execute_plans"),
        "{:?}",
        inversions[1]
    );
}

#[test]
fn wallclock_fires_on_fixture() {
    let findings = run_fixture(PLAN_PATH, include_str!("fixtures/wallclock.rs"));
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "no-wallclock-in-plan");
    assert!(findings[0].message.contains("Instant"));
}

#[test]
fn fsync_before_rename_fires_on_fixture() {
    let findings = run_fixture(STORE_PATH, include_str!("fixtures/fsync_rename.rs"));
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "fsync-before-rename");
    // Only the unsynced publish is flagged, not `publish_synced`.
    assert_eq!(findings[0].line, 6, "{findings:?}");
}

#[test]
fn metrics_naming_fires_on_fixture() {
    // Scoped workspace-wide, so any path works — use one no other rule
    // watches to keep the assertion exact.
    let findings = run_fixture(
        "crates/obs/src/registry.rs",
        include_str!("fixtures/metrics_naming.rs"),
    );
    let named: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule == "metrics-naming")
        .collect();
    assert_eq!(named.len(), 3, "{findings:?}");
    assert!(named[0].message.contains("Service.Cache.Hits"));
    assert!(named[1].message.contains("bytes-pending"));
    assert!(named[2].message.contains("recommend latency"));
}

#[test]
fn allow_syntax_fires_on_fixture() {
    let findings = run_fixture(STORE_PATH, include_str!("fixtures/allow_syntax.rs"));
    // The reasonless allow suppresses nothing: its unwrap still fires,
    // plus two allow-syntax findings (reasonless + unknown rule). The
    // well-formed allow silences the final unwrap.
    assert_eq!(
        findings.iter().filter(|f| f.rule == "allow-syntax").count(),
        2,
        "{findings:?}"
    );
    assert_eq!(
        findings
            .iter()
            .filter(|f| f.rule == "panic-free-io")
            .count(),
        1,
        "reasonless allow must not suppress, well-formed must — {findings:?}"
    );
}

#[test]
fn out_of_scope_paths_are_ignored() {
    let findings = run_fixture(
        "crates/viz/src/lib.rs",
        include_str!("fixtures/panic_free_io.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn workspace_sources_are_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists");
    let files = scan_workspace(&root).expect("workspace scan succeeds");
    assert!(files.len() > 50, "scan found only {} files", files.len());
    let findings = Engine::default().run(&files);
    assert!(
        findings.is_empty(),
        "workspace must be lint-clean: {findings:#?}"
    );
}
