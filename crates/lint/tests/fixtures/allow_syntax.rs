//! Known-violation fixture for the `allow-syntax` meta-rule: a
//! reasonless allow (suppresses nothing, is itself reported) and an
//! allow naming an unknown rule. The final function shows a
//! well-formed suppression that silences its finding.

fn reasonless(&self) -> u8 {
    self.slot.unwrap() // lint:allow(panic-free-io)
}

// lint:allow(no-such-rule): the rule name is checked too
fn unknown_rule(&self) {}

fn well_formed(&self) -> u8 {
    // lint:allow(panic-free-io): slot is filled by the loop above
    self.slot.unwrap()
}
