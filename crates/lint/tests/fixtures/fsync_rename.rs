//! Known-violation fixture for `fsync-before-rename`: the first
//! function publishes via rename with no fsync; the second follows the
//! sync-then-rename protocol and must not be flagged.

fn publish(tmp: &std::path::Path, dst: &std::path::Path) -> std::io::Result<()> {
    std::fs::rename(tmp, dst)
}

fn publish_synced(
    file: &std::fs::File,
    tmp: &std::path::Path,
    dst: &std::path::Path,
) -> std::io::Result<()> {
    file.sync_all()?;
    std::fs::rename(tmp, dst)
}
