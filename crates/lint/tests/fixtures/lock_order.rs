//! Known-violation fixture for `lock-order`: acquires `durability`
//! (rank 30) and then nests `tables` (rank 20) under it — an inversion
//! against the declared order in `lock-order.toml`. The second function
//! holds the `cache` lock across `execute_plans`, which the
//! forbid-while-held list bans.

fn inverted(&self) {
    let durability = self.durability.lock_recovered();
    let tables = self.tables.read_recovered();
    drop(tables);
    drop(durability);
}

fn executes_under_cache_lock(&self) {
    let cache = self.cache.lock_recovered();
    let outputs = execute_plans(&plans);
    drop(cache);
}

fn ordered_is_fine(&self) {
    let tables = self.tables.read_recovered();
    let durability = self.durability.lock_recovered();
    drop(durability);
    drop(tables);
}
