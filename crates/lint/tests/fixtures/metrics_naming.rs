//! Known-violation fixture for the `metrics-naming` rule: badly named
//! registrations fire, well-formed and dynamic ones do not.

fn register(registry: &Registry) {
    let _bad_case = registry.register_counter("Service.Cache.Hits");
    let _bad_dash = registry.register_gauge("store.wal.bytes-pending");
    let _bad_space = registry.register_histogram("recommend latency");
    let _ok = registry.register_counter("service.cache.hits");
    let _ok_hist = registry.register_histogram("service.recommend_ns");
    // Dynamically built names are a runtime concern, not a lexical one.
    let _dynamic = registry.register_counter(&format!("exec.worker_{i}"));
}

#[cfg(test)]
mod tests {
    fn in_tests_anything_goes(registry: &Registry) {
        let _ = registry.register_counter("NOT CHECKED IN TESTS");
    }
}
