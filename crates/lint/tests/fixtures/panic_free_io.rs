//! Known-violation fixture for `panic-free-io`. Parsed by the
//! integration tests under a store-scoped synthetic path; the workspace
//! scanner skips `fixtures/` directories, so `--deny` never sees this.

fn decode(buf: &[u8], lens: &[usize]) -> u64 {
    let first = lens[0];
    let word = buf.get(..8).expect("eight bytes present");
    let n = std::str::from_utf8(word).unwrap();
    if n.is_empty() {
        panic!("empty frame");
    }
    first as u64
}

mod tests {
    fn test_code_is_exempt() {
        let v = vec![1];
        let _ = v[0];
        v.first().unwrap();
    }
}
