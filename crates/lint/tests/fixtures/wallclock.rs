//! Known-violation fixture for `no-wallclock-in-plan`: a fingerprint
//! derived from `Instant::now()` would differ across runs.

fn fingerprint(&self) -> String {
    let stamp = std::time::Instant::now();
    format!("{stamp:?}")
}
