//! Numeric binning: deriving a categorical dimension from a numeric
//! column.
//!
//! The paper's workflow (§1) builds views with "operations such as
//! binning, grouping, and aggregation". A raw numeric column (price,
//! age, amount) has too many distinct values to group on directly; this
//! module derives a bucketed dimension column (e.g. `price_bin`) that
//! SeeDB can then treat as an ordinary grouping attribute.

use crate::column::Column;
use crate::error::{DbError, DbResult};
use crate::schema::{ColumnDef, Role, Schema, Semantic};
use crate::table::Table;
use crate::value::{DataType, Value};

/// How bucket boundaries are chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BinStrategy {
    /// `bins` equal-width intervals spanning `[min, max]`.
    EqualWidth {
        /// Number of buckets.
        bins: usize,
    },
    /// `bins` buckets with (approximately) equal row counts
    /// (quantile binning) — robust to skew.
    EqualDepth {
        /// Number of buckets.
        bins: usize,
    },
}

/// A derived binning of one numeric column: boundaries plus labels.
#[derive(Debug, Clone, PartialEq)]
pub struct Binning {
    /// Source column name.
    pub column: String,
    /// Interior bucket boundaries, ascending; bucket `i` covers
    /// `[edges[i-1], edges[i])` with the first bucket open below and the
    /// last closed above.
    pub edges: Vec<f64>,
    /// One label per bucket, e.g. `"[10.0, 20.0)"`.
    pub labels: Vec<String>,
}

impl Binning {
    /// Compute a binning for `column` (named `name`) under `strategy`.
    ///
    /// # Errors
    /// `TypeMismatch` for non-numeric columns, `InvalidQuery` for zero
    /// bins or a column with no non-null values.
    pub fn compute(name: &str, column: &Column, strategy: BinStrategy) -> DbResult<Binning> {
        if !column.data_type().is_numeric() {
            return Err(DbError::TypeMismatch {
                expected: "numeric".to_string(),
                found: column.data_type().name().to_string(),
                context: format!("binning {name}"),
            });
        }
        let bins = match strategy {
            BinStrategy::EqualWidth { bins } | BinStrategy::EqualDepth { bins } => bins,
        };
        if bins == 0 {
            return Err(DbError::InvalidQuery(
                "binning needs at least 1 bin".to_string(),
            ));
        }
        let mut values: Vec<f64> = (0..column.len())
            .filter_map(|i| column.f64_at(i))
            .filter(|v| v.is_finite())
            .collect();
        if values.is_empty() {
            return Err(DbError::InvalidQuery(format!(
                "column {name} has no finite values to bin"
            )));
        }
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let (lo, hi) = (values[0], values[values.len() - 1]);

        let mut edges: Vec<f64> = match strategy {
            BinStrategy::EqualWidth { bins } => {
                if lo == hi {
                    Vec::new() // single bucket
                } else {
                    (1..bins)
                        .map(|i| lo + (hi - lo) * i as f64 / bins as f64)
                        .collect()
                }
            }
            BinStrategy::EqualDepth { bins } => {
                let n = values.len();
                (1..bins)
                    .map(|i| values[(n * i / bins).min(n - 1)])
                    .collect()
            }
        };
        edges.dedup_by(|a, b| a == b);

        // Build labels from the full edge list (lo ... edges ... hi).
        let fmt = |v: f64| {
            if v.abs() >= 1000.0 {
                format!("{v:.0}")
            } else {
                format!("{v:.2}")
            }
        };
        let mut bounds = Vec::with_capacity(edges.len() + 2);
        bounds.push(lo);
        bounds.extend(edges.iter().copied());
        bounds.push(hi);
        let labels: Vec<String> = (0..bounds.len() - 1)
            .map(|i| {
                let close = if i == bounds.len() - 2 { "]" } else { ")" };
                // Zero-padded bucket index keeps lexicographic label order
                // equal to numeric bucket order (EMD relies on this).
                format!(
                    "b{:02} [{}, {}{close}",
                    i,
                    fmt(bounds[i]),
                    fmt(bounds[i + 1])
                )
            })
            .collect();

        Ok(Binning {
            column: name.to_string(),
            edges,
            labels,
        })
    }

    /// Number of buckets.
    pub fn num_bins(&self) -> usize {
        self.labels.len()
    }

    /// Bucket index for a value.
    pub fn bucket_of(&self, v: f64) -> usize {
        match self
            .edges
            .binary_search_by(|e| e.partial_cmp(&v).expect("finite edges"))
        {
            // A value equal to edge i belongs to bucket i+1 (half-open).
            Ok(i) => (i + 1).min(self.labels.len() - 1),
            Err(i) => i.min(self.labels.len() - 1),
        }
    }

    /// Label for a value.
    pub fn label_of(&self, v: f64) -> &str {
        &self.labels[self.bucket_of(v)]
    }
}

/// Derive a new table that appends a binned dimension column named
/// `{column}_bin` (ordinal semantics) computed from `column`.
///
/// The source column keeps its role; the new table can be registered
/// under a new name and queried by SeeDB like any other.
///
/// # Errors
/// Unknown column or binning failures as in [`Binning::compute`].
pub fn with_binned_column(
    table: &Table,
    column: &str,
    strategy: BinStrategy,
) -> DbResult<(Table, Binning)> {
    let src = table.column(column)?;
    let binning = Binning::compute(column, src, strategy)?;

    let mut cols: Vec<ColumnDef> = table.schema().columns().to_vec();
    let bin_name = format!("{column}_bin");
    if table.schema().index_of(&bin_name).is_ok() {
        return Err(DbError::Schema(format!("column {bin_name} already exists")));
    }
    cols.push(ColumnDef {
        name: bin_name,
        dtype: DataType::Str,
        role: Role::Dimension,
        semantic: Semantic::Ordinal,
    });
    let schema = Schema::new(cols)?;
    let mut out = Table::with_capacity(table.name(), schema, table.num_rows());
    for i in 0..table.num_rows() {
        let mut row = table.row(i);
        let bin_value = match src.f64_at(i) {
            Some(v) if v.is_finite() => Value::from(binning.label_of(v)),
            _ => Value::Null,
        };
        row.push(bin_value);
        out.push_row(row)?;
    }
    Ok((out, binning))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;

    fn numeric_table(values: &[f64]) -> Table {
        let schema = Schema::new(vec![ColumnDef::measure("price", DataType::Float64)]).unwrap();
        let mut t = Table::new("t", schema);
        for &v in values {
            t.push_row(vec![Value::Float(v)]).unwrap();
        }
        t
    }

    #[test]
    fn equal_width_bins() {
        let t = numeric_table(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 10.0]);
        let b = Binning::compute(
            "price",
            t.column("price").unwrap(),
            BinStrategy::EqualWidth { bins: 5 },
        )
        .unwrap();
        assert_eq!(b.num_bins(), 5);
        assert_eq!(b.edges, vec![2.0, 4.0, 6.0, 8.0]);
        assert_eq!(b.bucket_of(0.0), 0);
        assert_eq!(b.bucket_of(1.9), 0);
        assert_eq!(b.bucket_of(2.0), 1); // half-open: edge goes up
        assert_eq!(b.bucket_of(10.0), 4);
        assert_eq!(b.bucket_of(999.0), 4); // clamped
    }

    #[test]
    fn equal_depth_bins_balance_counts() {
        // Heavily skewed data: equal-width would put almost everything in
        // bucket 0; equal-depth balances.
        let mut vals: Vec<f64> = (0..90).map(|i| i as f64 / 100.0).collect();
        vals.extend([
            100.0, 200.0, 300.0, 400.0, 500.0, 600.0, 700.0, 800.0, 900.0, 1000.0,
        ]);
        let t = numeric_table(&vals);
        let b = Binning::compute(
            "price",
            t.column("price").unwrap(),
            BinStrategy::EqualDepth { bins: 4 },
        )
        .unwrap();
        let mut counts = vec![0usize; b.num_bins()];
        for &v in &vals {
            counts[b.bucket_of(v)] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max <= 2 * min.max(1), "unbalanced buckets: {counts:?}");
    }

    #[test]
    fn constant_column_single_bucket() {
        let t = numeric_table(&[5.0; 20]);
        let b = Binning::compute(
            "price",
            t.column("price").unwrap(),
            BinStrategy::EqualWidth { bins: 4 },
        )
        .unwrap();
        assert_eq!(b.num_bins(), 1);
        assert_eq!(b.bucket_of(5.0), 0);
    }

    #[test]
    fn labels_sort_in_bucket_order() {
        let t = numeric_table(&(0..100).map(|i| i as f64).collect::<Vec<_>>());
        let b = Binning::compute(
            "price",
            t.column("price").unwrap(),
            BinStrategy::EqualWidth { bins: 12 },
        )
        .unwrap();
        let mut sorted = b.labels.clone();
        sorted.sort();
        assert_eq!(sorted, b.labels, "lexicographic == numeric bucket order");
    }

    #[test]
    fn non_numeric_rejected() {
        let schema = Schema::new(vec![ColumnDef::dimension("d", DataType::Str)]).unwrap();
        let mut t = Table::new("t", schema);
        t.push_row(vec!["x".into()]).unwrap();
        assert!(Binning::compute(
            "d",
            t.column("d").unwrap(),
            BinStrategy::EqualWidth { bins: 3 }
        )
        .is_err());
    }

    #[test]
    fn zero_bins_and_empty_column_rejected() {
        let t = numeric_table(&[1.0]);
        assert!(Binning::compute(
            "price",
            t.column("price").unwrap(),
            BinStrategy::EqualWidth { bins: 0 }
        )
        .is_err());
        let empty = numeric_table(&[]);
        assert!(Binning::compute(
            "price",
            empty.column("price").unwrap(),
            BinStrategy::EqualWidth { bins: 3 }
        )
        .is_err());
    }

    #[test]
    fn with_binned_column_appends_dimension() {
        let t = numeric_table(&(0..50).map(|i| i as f64).collect::<Vec<_>>());
        let (binned, binning) =
            with_binned_column(&t, "price", BinStrategy::EqualWidth { bins: 5 }).unwrap();
        assert_eq!(binned.num_rows(), 50);
        let def = binned.schema().column("price_bin").unwrap();
        assert_eq!(def.role, Role::Dimension);
        assert_eq!(def.semantic, Semantic::Ordinal);
        // Row 0 (price 0.0) is in the first bucket.
        let v = binned.column("price_bin").unwrap().get(0);
        assert_eq!(v.as_str(), Some(binning.labels[0].as_str()));
        // Binned column groups correctly through the executor.
        let q = crate::exec::Query::aggregate(
            "t",
            vec!["price_bin"],
            vec![crate::exec::AggSpec::count_star()],
        );
        let out = crate::exec::execute(&binned, &q).unwrap();
        assert_eq!(out.result.num_rows(), 5);
        assert!(out.result.rows.iter().all(|r| r[1] == Value::Int(10)));
    }

    #[test]
    fn null_values_stay_null_in_bin_column() {
        let schema = Schema::new(vec![ColumnDef::measure("m", DataType::Float64)]).unwrap();
        let mut t = Table::new("t", schema);
        t.push_row(vec![Value::Float(1.0)]).unwrap();
        t.push_row(vec![Value::Null]).unwrap();
        t.push_row(vec![Value::Float(2.0)]).unwrap();
        let (binned, _) = with_binned_column(&t, "m", BinStrategy::EqualWidth { bins: 2 }).unwrap();
        assert_eq!(binned.column("m_bin").unwrap().get(1), Value::Null);
    }

    #[test]
    fn duplicate_bin_column_rejected() {
        let t = numeric_table(&[1.0, 2.0]);
        let (binned, _) =
            with_binned_column(&t, "price", BinStrategy::EqualWidth { bins: 2 }).unwrap();
        assert!(with_binned_column(&binned, "price", BinStrategy::EqualWidth { bins: 2 }).is_err());
    }

    #[test]
    fn equal_depth_on_duplicated_values_dedups_edges() {
        let t = numeric_table(&[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
        let b = Binning::compute(
            "price",
            t.column("price").unwrap(),
            BinStrategy::EqualDepth { bins: 4 },
        )
        .unwrap();
        // Only one distinct interior edge survives dedup.
        assert!(b.num_bins() <= 3);
        assert!(b.bucket_of(1.0) < b.bucket_of(2.0));
    }
}
