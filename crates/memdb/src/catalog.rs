//! The database catalog: named tables plus cost accounting.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use std::sync::RwLock;

use crate::cost::{CostCounters, CostSnapshot};
use crate::error::{DbError, DbResult};
use crate::exec::{self, Query, QueryOutput, SetsOutput, SetsQuery};
use crate::plan::{LogicalPlan, PhysicalPlan, PlanOutput};
use crate::table::Table;

/// An in-memory database: a set of named tables.
///
/// Cloning handles is cheap (`Arc` inside); queries can run concurrently
/// from many threads. Tables are immutable once registered — replace a
/// table by re-registering under the same name.
#[derive(Debug, Default)]
pub struct Database {
    tables: RwLock<HashMap<String, Arc<Table>>>,
    counters: CostCounters,
    /// Monotonic catalog version, bumped on every register/drop. Each
    /// registration stamps the table with the post-bump value
    /// ([`Table::version`]), so caches can detect replaced tables.
    version: AtomicU64,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Register (or replace) a table under its own name. The table is
    /// stamped with a fresh catalog version ([`Table::version`]).
    pub fn register(&self, mut table: Table) -> Arc<Table> {
        table.set_version(self.version.fetch_add(1, Ordering::Relaxed) + 1);
        let arc = Arc::new(table);
        self.tables
            .write()
            .expect("catalog lock poisoned")
            .insert(arc.name().to_string(), arc.clone());
        arc
    }

    /// Current catalog version: increases whenever any table is
    /// registered, replaced, or dropped. A cheap "did anything change?"
    /// check for result caches; per-table staleness is detected via
    /// [`Table::version`].
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Relaxed)
    }

    /// Look up a table.
    ///
    /// # Errors
    /// `UnknownTable` if absent.
    pub fn table(&self, name: &str) -> DbResult<Arc<Table>> {
        self.tables
            .read()
            .expect("catalog lock poisoned")
            .get(name)
            .cloned()
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .tables
            .read()
            .expect("catalog lock poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Remove a table. Returns whether it existed.
    pub fn drop_table(&self, name: &str) -> bool {
        let existed = self
            .tables
            .write()
            .expect("catalog lock poisoned")
            .remove(name)
            .is_some();
        if existed {
            self.version.fetch_add(1, Ordering::Relaxed);
        }
        existed
    }

    /// Execute a single-grouping [`Query`], recording its cost.
    ///
    /// # Errors
    /// Unknown table/columns, type errors, invalid query shapes.
    pub fn run(&self, q: &Query) -> DbResult<QueryOutput> {
        let table = self.table(&q.table)?;
        let out = exec::execute(&table, q)?;
        self.counters.record(&out.stats);
        Ok(out)
    }

    /// Execute a shared-scan [`SetsQuery`], recording its cost.
    ///
    /// # Errors
    /// Unknown table/columns, type errors, invalid query shapes.
    pub fn run_sets(&self, q: &SetsQuery) -> DbResult<SetsOutput> {
        let table = self.table(&q.table)?;
        let out = exec::execute_sets(&table, q)?;
        self.counters.record(&out.stats);
        Ok(out)
    }

    /// Lower and execute a [`LogicalPlan`], recording its cost.
    ///
    /// # Errors
    /// Malformed plans (`InvalidQuery`), unknown table/columns, type
    /// errors.
    pub fn execute_plan(&self, plan: &LogicalPlan) -> DbResult<PlanOutput> {
        self.run_physical(&plan.lower()?)
    }

    /// Execute an already-lowered [`PhysicalPlan`], recording its cost.
    ///
    /// # Errors
    /// Unknown table/columns, type errors.
    pub fn run_physical(&self, plan: &PhysicalPlan) -> DbResult<PlanOutput> {
        let table = self.table(plan.table())?;
        let out = plan.execute(&table)?;
        self.counters.record(out.stats());
        Ok(out)
    }

    /// Parse and execute a SQL string.
    ///
    /// # Errors
    /// Parse errors plus everything [`Database::run`] can return.
    pub fn run_sql(&self, sql: &str) -> DbResult<QueryOutput> {
        let q = crate::sql::parse_query(sql)?;
        self.run(&q)
    }

    /// Record externally executed work as one query (partitioned
    /// execution and serving-layer batch scans merge stats themselves
    /// before reporting them once).
    pub fn record_stats(&self, stats: &crate::exec::ExecStats) {
        self.counters.record(stats);
    }

    /// Snapshot the accumulated cost counters.
    pub fn cost(&self) -> CostSnapshot {
        self.counters.snapshot()
    }

    /// Reset the cost counters.
    pub fn reset_cost(&self) {
        self.counters.reset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{AggFunc, AggSpec};
    use crate::schema::{ColumnDef, Schema};
    use crate::value::DataType;

    fn db_with_sales() -> Database {
        let schema = Schema::new(vec![
            ColumnDef::dimension("store", DataType::Str),
            ColumnDef::measure("amount", DataType::Float64),
        ])
        .unwrap();
        let mut t = Table::new("sales", schema);
        for (s, a) in [("MA", 10.0), ("WA", 20.0), ("MA", 5.0)] {
            t.push_row(vec![s.into(), a.into()]).unwrap();
        }
        let db = Database::new();
        db.register(t);
        db
    }

    #[test]
    fn register_and_query() {
        let db = db_with_sales();
        let q = Query::aggregate(
            "sales",
            vec!["store"],
            vec![AggSpec::new(AggFunc::Sum, "amount")],
        );
        let out = db.run(&q).unwrap();
        assert_eq!(out.result.num_rows(), 2);
        assert_eq!(db.cost().queries, 1);
        assert_eq!(db.cost().rows_scanned, 3);
    }

    #[test]
    fn unknown_table_error() {
        let db = Database::new();
        let q = Query::aggregate("nope", vec![], vec![AggSpec::count_star()]);
        assert!(matches!(db.run(&q), Err(DbError::UnknownTable(_))));
    }

    #[test]
    fn table_names_sorted_and_drop() {
        let db = db_with_sales();
        let schema = Schema::new(vec![ColumnDef::measure("x", DataType::Int64)]).unwrap();
        db.register(Table::new("aaa", schema));
        assert_eq!(db.table_names(), vec!["aaa", "sales"]);
        assert!(db.drop_table("aaa"));
        assert!(!db.drop_table("aaa"));
        assert_eq!(db.table_names(), vec!["sales"]);
    }

    #[test]
    fn cost_reset() {
        let db = db_with_sales();
        let q = Query::aggregate("sales", vec!["store"], vec![AggSpec::count_star()]);
        db.run(&q).unwrap();
        db.reset_cost();
        assert_eq!(db.cost(), CostSnapshot::default());
    }

    #[test]
    fn reregistering_replaces_table() {
        let db = db_with_sales();
        let schema = Schema::new(vec![
            ColumnDef::dimension("store", DataType::Str),
            ColumnDef::measure("amount", DataType::Float64),
        ])
        .unwrap();
        let t = Table::new("sales", schema); // empty replacement
        db.register(t);
        assert_eq!(db.table("sales").unwrap().num_rows(), 0);
    }

    #[test]
    fn versions_bump_on_register_and_drop() {
        let db = db_with_sales();
        let v1 = db.table("sales").unwrap().version();
        assert!(v1 > 0, "registered tables carry a version");
        assert_eq!(db.version(), v1);

        // Replacing under the same name assigns a strictly newer version.
        let schema = Schema::new(vec![
            ColumnDef::dimension("store", DataType::Str),
            ColumnDef::measure("amount", DataType::Float64),
        ])
        .unwrap();
        db.register(Table::new("sales", schema.clone()));
        let v2 = db.table("sales").unwrap().version();
        assert!(v2 > v1);
        assert_eq!(db.version(), v2);

        // Drops bump the catalog version too; missing drops do not.
        assert!(db.drop_table("sales"));
        assert!(db.version() > v2);
        let after = db.version();
        assert!(!db.drop_table("sales"));
        assert_eq!(db.version(), after);

        // Unregistered tables are version 0.
        assert_eq!(Table::new("loose", schema).version(), 0);
    }

    #[test]
    fn concurrent_queries() {
        let db = std::sync::Arc::new(db_with_sales());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let db = db.clone();
                s.spawn(move || {
                    let q = Query::aggregate(
                        "sales",
                        vec!["store"],
                        vec![AggSpec::new(AggFunc::Sum, "amount")],
                    );
                    for _ in 0..50 {
                        db.run(&q).unwrap();
                    }
                });
            }
        });
        assert_eq!(db.cost().queries, 200);
    }
}
