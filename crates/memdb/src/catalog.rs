//! The database catalog: named tables plus cost accounting.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use std::sync::RwLock;

use std::path::Path;

use seedb_obs::Obs;

use crate::cost::{CostCounters, CostSnapshot};
use crate::error::{DbError, DbResult};
use crate::exec::{self, Query, QueryOutput, SetsOutput, SetsQuery};
use crate::metrics::StoreMetrics;
use crate::plan::{LogicalPlan, PhysicalPlan, PlanOutput};
use crate::store::{self, DurabilityConfig, DurabilityState, DurabilitySummary, WalRecord};
use crate::sync::{MutexExt, RwLockExt};
use crate::table::Table;
use crate::value::Value;

/// An in-memory database: a set of named tables.
///
/// Cloning handles is cheap (`Arc` inside); queries can run concurrently
/// from many threads. Tables are immutable once registered: mutate a
/// name either by re-registering (a *replacement* — caches invalidate)
/// or by [`Database::append_rows`] (live ingest — version `v+1` shares
/// every sealed segment with `v` and adds one delta segment, so
/// existing snapshots and in-flight scans are undisturbed and caches
/// can refresh incrementally).
#[derive(Debug)]
pub struct Database {
    tables: RwLock<HashMap<String, Arc<Table>>>,
    counters: CostCounters,
    /// The observability bundle every layer serving from this database
    /// shares: `counters` above is registered against its registry
    /// (under `exec.*`), the store registers its `store.*` handles, and
    /// the serving layer adopts it for `service.*` metrics and traces.
    obs: Obs,
    /// Monotonic catalog version, bumped on every register/drop. Each
    /// registration stamps the table with the post-bump value
    /// ([`Table::version`]), so caches can detect replaced tables.
    version: AtomicU64,
    /// Serializes catalog *mutations* (`register`, `drop_table`,
    /// `append_rows`) with each other. Appends hold it across their
    /// (potentially large) delta build WITHOUT touching the `tables`
    /// write lock until the final publish, so readers keep resolving
    /// tables throughout an ingest batch — and since every mutation
    /// path takes this lock first, the snapshot an append builds on
    /// cannot be replaced before its publish.
    mutate_lock: std::sync::Mutex<()>,
    /// Durable-store attachment ([`Database::save`]/[`Database::open`]):
    /// when present, appends and drops are WAL-logged before they are
    /// published (registrations checkpoint directly) and the WAL is
    /// checkpointed into sealed segment files past the configured
    /// threshold. `None` = pure in-memory catalog.
    durability: std::sync::Mutex<Option<DurabilityState>>,
}

impl Default for Database {
    fn default() -> Self {
        Database::with_obs(Obs::default())
    }
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// An empty database rooted on an injected observability bundle.
    /// The cost counters are registered against `obs`'s registry (so
    /// [`Database::cost`] and a metrics snapshot read the same cells),
    /// and all store timing flows through `obs`'s clock — the soak
    /// harness passes an [`seedb_obs::ManualClock`]-backed bundle here
    /// for byte-identical telemetry per seed.
    pub fn with_obs(obs: Obs) -> Self {
        Database {
            tables: RwLock::new(HashMap::new()),
            counters: CostCounters::registered(obs.registry()),
            version: AtomicU64::new(0),
            mutate_lock: std::sync::Mutex::new(()),
            durability: std::sync::Mutex::new(None),
            obs,
        }
    }

    /// The observability bundle this database roots.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Register (or replace) a table under its own name. The table is
    /// sealed and stamped with a fresh catalog version
    /// ([`Table::version`]).
    ///
    /// Registering an *existing* name is a **replacement**, not an
    /// append: the new table's lineage is reset to a single checkpoint
    /// ([`Table::append_delta_since`] returns `None` for every earlier
    /// version), so result caches built against the old registration
    /// can only invalidate — a stale incremental refresh onto the
    /// replacement is impossible by construction. Use
    /// [`Database::append_rows`] for ingest that preserves lineage.
    /// On a durable catalog the registration is checkpointed directly —
    /// its contents are sealed into segment files and a new manifest is
    /// published (WAL-logging a whole table would be an unbounded
    /// memory and log-size spike; appends stay WAL-logged). If the
    /// checkpoint fails the in-memory registration still happens, but
    /// the store is *wedged*: subsequent appends error loudly instead
    /// of diverging from disk silently; a later successful checkpoint
    /// or re-[`Database::save`] recovers.
    pub fn register(&self, mut table: Table) -> Arc<Table> {
        let _mutations_serialized = self.mutate_lock.lock_recovered();
        table.stamp_registered(self.version.fetch_add(1, Ordering::Relaxed) + 1);
        let arc = Arc::new(table);
        // Probe durability with a statement-scoped guard: the mutation
        // lock serializes attach (save_with) with every mutation, so
        // the durable state cannot appear or vanish between this probe
        // and the checkpoint below — and the declared lock order
        // (tables before durability) stays intact because the table
        // snapshot is taken with no durability guard held.
        let durable = self.durability.lock_recovered().is_some();
        if durable {
            // Durable-before-visible, like append_rows: checkpoint the
            // post-registration snapshot *before* any reader can
            // resolve the new table, so results are never served from
            // a registration a crash mid-checkpoint would erase. The
            // checkpoint also seals any WAL backlog; a crash before
            // its manifest publishes recovers the pre-registration
            // catalog from the old manifest + intact WAL.
            let mut tables = self.tables_sorted();
            match tables.binary_search_by(|t| t.name().cmp(arc.name())) {
                Ok(i) => {
                    if let Some(slot) = tables.get_mut(i) {
                        *slot = arc.clone();
                    }
                }
                Err(i) => tables.insert(i, arc.clone()),
            }
            let mut durability = self.durability.lock_recovered();
            if let Some(state) = durability.as_mut() {
                if let Err(e) = state.checkpoint(self.version(), &tables) {
                    state.wedge(&e);
                }
            }
        }
        self.tables
            .write_recovered()
            .insert(arc.name().to_string(), arc.clone());
        arc
    }

    /// Append `rows` to the registered table `name`, publishing version
    /// `v+1`: a new [`Table`] value that shares every sealed segment
    /// with `v` (a handful of refcount bumps) and holds the appended
    /// rows in exactly one new sealed segment. Existing snapshots —
    /// including scans already in flight — keep reading `v` untouched;
    /// per-table lineage records that `v → v+1` is a pure append, which
    /// is what lets cached partial aggregates refresh by scanning only
    /// `[old_rows, new_rows)`. Returns the new version's handle.
    ///
    /// Catalog mutations (appends, registrations, drops) serialize with
    /// each other on a dedicated mutation lock, but the delta build
    /// runs *outside* the catalog's reader/writer lock — concurrent
    /// queries keep resolving tables while a large batch is ingested;
    /// the write lock is only taken for the final publish.
    ///
    /// To bound read amplification of long append histories, a table
    /// whose segment count reaches an internal threshold is compacted
    /// into a single segment as part of the append (row order, row ids,
    /// and dictionary codes are all preserved, so snapshots and cached
    /// partial-aggregate states remain valid).
    ///
    /// # Errors
    /// `UnknownTable` if `name` is not registered; `Schema`/
    /// `TypeMismatch` if any row does not fit the schema — in which
    /// case **nothing is published**: the catalog still serves the old
    /// version, atomically.
    pub fn append_rows(&self, name: &str, rows: Vec<Vec<Value>>) -> DbResult<Arc<Table>> {
        // Every catalog mutation serializes on this lock, so the
        // snapshot read below cannot be replaced before the publish —
        // no conflict handling needed — while readers keep resolving
        // tables for the whole build (the `tables` write lock is only
        // held for the final insert).
        let _mutations_serialized = self.mutate_lock.lock_recovered();
        let old = self.table(name)?;
        let mut next = (*old).clone();
        // On a durable catalog the batch is WAL-logged below, *before*
        // the publish. Encode the record now, while the rows can still
        // be borrowed (push_row consumes them; cloning a large batch
        // just to own it for the log would double the ingest copy
        // work). The mutation lock serializes every version bump, so
        // the version this append will publish is exactly current + 1.
        let wal_payload = {
            let durability = self.durability.lock_recovered();
            match durability.as_ref() {
                None => None,
                Some(state) => {
                    // Fail fast on a wedged store — log_payload below
                    // would refuse the batch anyway, after the whole
                    // delta build.
                    state.check_not_wedged()?;
                    let version = self.version.load(Ordering::Relaxed) + 1;
                    Some((version, WalRecord::encode_append(version, name, &rows)))
                }
            }
        };
        // The old version is sealed (registration/append seals), so the
        // pushes below open exactly one fresh delta segment per column.
        for row in rows {
            next.push_row(row)?;
        }
        if next.num_segments() >= Table::SEGMENT_COMPACT_THRESHOLD {
            next = next.compacted()?;
        }
        next.stamp_appended(self.version.fetch_add(1, Ordering::Relaxed) + 1);
        let arc = Arc::new(next);
        if let Some((version, payload)) = wal_payload {
            debug_assert_eq!(version, arc.version(), "pre-encoded WAL version");
            // Durability point: the acknowledged batch reaches the WAL
            // (fsynced per config) before any reader can see v+1. A
            // failed log write publishes nothing.
            let mut durability = self.durability.lock_recovered();
            if let Some(state) = durability.as_mut() {
                state.log_payload(&payload)?;
            }
        }
        self.tables
            .write_recovered()
            .insert(name.to_string(), arc.clone());
        self.maybe_checkpoint();
        Ok(arc)
    }

    /// Current catalog version: increases whenever any table is
    /// registered, replaced, or dropped. A cheap "did anything change?"
    /// check for result caches; per-table staleness is detected via
    /// [`Table::version`].
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Relaxed)
    }

    /// Look up a table.
    ///
    /// # Errors
    /// `UnknownTable` if absent.
    pub fn table(&self, name: &str) -> DbResult<Arc<Table>> {
        self.tables
            .read_recovered()
            .get(name)
            .cloned()
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read_recovered().keys().cloned().collect();
        names.sort();
        names
    }

    /// Remove a table.
    ///
    /// # Errors
    /// `UnknownTable` if no table of that name is registered — dropping
    /// a missing table is reported, never silently ignored. The catalog
    /// version is only bumped when a table was actually removed.
    pub fn drop_table(&self, name: &str) -> DbResult<()> {
        let _mutations_serialized = self.mutate_lock.lock_recovered();
        if !self.tables.read_recovered().contains_key(name) {
            return Err(DbError::UnknownTable(name.to_string()));
        }
        let version = self.version.fetch_add(1, Ordering::Relaxed) + 1;
        {
            // WAL-log the drop before applying it; a failed log leaves
            // the table in place (the version counter gap is harmless).
            let mut durability = self.durability.lock_recovered();
            if let Some(state) = durability.as_mut() {
                state.log(&WalRecord::Drop {
                    version,
                    table: name.to_string(),
                })?;
            }
        }
        self.tables.write_recovered().remove(name);
        self.maybe_checkpoint();
        Ok(())
    }

    /// Persist this catalog into `dir` with the recommended
    /// [`DurabilityConfig`] and keep it durable: every subsequent
    /// `append_rows`/`drop_table` is WAL-logged before it is published
    /// (registrations checkpoint directly), and the WAL checkpoints
    /// into sealed segment files past the configured threshold. See
    /// [`crate::store`] for the directory layout and invariants.
    ///
    /// # Errors
    /// `Io` on filesystem failures; nothing is attached on error.
    pub fn save(&self, dir: impl AsRef<Path>) -> DbResult<()> {
        self.save_with(dir, DurabilityConfig::recommended())
    }

    /// [`Database::save`] with explicit durability knobs.
    ///
    /// # Errors
    /// `Io` on filesystem failures; nothing is attached on error.
    pub fn save_with(&self, dir: impl AsRef<Path>, config: DurabilityConfig) -> DbResult<()> {
        // Hold the mutation lock so the snapshot written is one
        // consistent catalog version (readers are unaffected).
        let _mutations_serialized = self.mutate_lock.lock_recovered();
        let tables = self.tables_sorted();
        let metrics = StoreMetrics::new(&self.obs);
        let state = store::create(dir.as_ref(), config, self.version(), &tables, metrics)?;
        *self.durability.lock_recovered() = Some(state);
        Ok(())
    }

    /// Open the database directory `dir` with the recommended
    /// [`DurabilityConfig`]: load the manifest's segment files, replay
    /// the WAL tail past it, and return a catalog that continues to be
    /// durable in that directory. Row ids, dictionary codes, table
    /// versions, and append lineage are reproduced exactly, so query
    /// results — and cached-partial-aggregate refresh contracts — are
    /// bit-for-bit those of the never-restarted catalog.
    ///
    /// # Errors
    /// `Io` when `dir` is not a database directory (no manifest) or
    /// reads fail; `Corrupt` when checksums or structural invariants
    /// fail (never a panic, never a silently wrong answer).
    pub fn open(dir: impl AsRef<Path>) -> DbResult<Database> {
        Database::open_with(dir, DurabilityConfig::recommended())
    }

    /// [`Database::open`] with explicit durability knobs.
    ///
    /// # Errors
    /// Same as [`Database::open`].
    pub fn open_with(dir: impl AsRef<Path>, config: DurabilityConfig) -> DbResult<Database> {
        Database::open_with_obs(dir, config, Obs::default())
    }

    /// [`Database::open_with`] rooted on an injected observability
    /// bundle (see [`Database::with_obs`]). Recovery telemetry —
    /// replayed WAL records, torn-tail repairs — lands in `obs`'s
    /// registry.
    ///
    /// # Errors
    /// Same as [`Database::open`].
    pub fn open_with_obs(
        dir: impl AsRef<Path>,
        config: DurabilityConfig,
        obs: Obs,
    ) -> DbResult<Database> {
        let metrics = StoreMetrics::new(&obs);
        let (state, tables, catalog_version) = store::load(dir.as_ref(), config, metrics)?;
        let db = Database::with_obs(obs);
        {
            let mut map = db.tables.write_recovered();
            for table in tables {
                map.insert(table.name().to_string(), table);
            }
        }
        db.version.store(catalog_version, Ordering::Relaxed);
        *db.durability.lock_recovered() = Some(state);
        Ok(db)
    }

    /// Force a checkpoint now: seal the WAL's contents into segment
    /// files, publish a new manifest, and truncate the WAL. A no-op
    /// (returning `Ok`) on a non-durable catalog.
    ///
    /// # Errors
    /// `Io`/`Corrupt` from the store; the WAL still holds everything on
    /// failure, so no acknowledged mutation is ever lost.
    pub fn checkpoint(&self) -> DbResult<()> {
        let _mutations_serialized = self.mutate_lock.lock_recovered();
        let tables = self.tables_sorted();
        let mut durability = self.durability.lock_recovered();
        match durability.as_mut() {
            Some(state) => state.checkpoint(self.version(), &tables),
            None => Ok(()),
        }
    }

    /// Is this catalog attached to a durable directory?
    pub fn is_durable(&self) -> bool {
        self.durability.lock_recovered().is_some()
    }

    /// Snapshot of the durable state (directory, per-table segment
    /// files, WAL backlog), or `None` for a pure in-memory catalog.
    pub fn durability_summary(&self) -> Option<DurabilitySummary> {
        self.durability
            .lock_recovered()
            .as_ref()
            .map(DurabilityState::summary)
    }

    /// Crash-injection test hook (see [`store::wal::inject_torn_tail`]):
    /// append a torn frame to this durable catalog's WAL, simulating a
    /// crash midway through an unacknowledged record's write. The soak
    /// harness calls this immediately before dropping every handle and
    /// re-[`Database::open`]ing the directory; recovery must truncate
    /// the torn tail and lose nothing acknowledged.
    ///
    /// Do not mutate the catalog between injection and reopen — a real
    /// WAL record appended behind the junk turns the torn tail into
    /// mid-log corruption, which `open` refuses (by design).
    ///
    /// # Errors
    /// `Io` when the catalog is not durable or the injection write
    /// fails.
    pub fn inject_torn_wal_tail(&self) -> DbResult<u64> {
        let dir = match self.durability.lock_recovered().as_ref() {
            Some(state) => state.summary().dir,
            None => {
                return Err(DbError::Io(
                    "inject_torn_wal_tail: catalog is not durable (no WAL to tear)".to_string(),
                ))
            }
        };
        store::wal::inject_torn_tail(&dir)
    }

    /// All tables, sorted by name (the checkpoint snapshot order).
    fn tables_sorted(&self) -> Vec<Arc<Table>> {
        let mut tables: Vec<Arc<Table>> = self.tables.read_recovered().values().cloned().collect();
        tables.sort_by(|a, b| a.name().cmp(b.name()));
        tables
    }

    /// Checkpoint if the WAL crossed its threshold, remembering (not
    /// propagating) failures — the WAL keeps everything durable until a
    /// later checkpoint succeeds. Called at the end of every mutation
    /// while the mutation lock is held.
    fn maybe_checkpoint(&self) {
        // Probe with a statement-scoped durability guard, then snapshot
        // the tables with no lock held: every caller holds the mutation
        // lock, so neither the catalog nor the durable state can change
        // between the probe and the checkpoint — and taking `tables`
        // only after the durability guard is released preserves the
        // declared lock order (tables before durability).
        let should = match self.durability.lock_recovered().as_mut() {
            Some(state) => state.should_checkpoint(),
            None => false,
        };
        if should {
            let tables = self.tables_sorted();
            let mut durability = self.durability.lock_recovered();
            if let Some(state) = durability.as_mut() {
                state.maybe_checkpoint(self.version(), &tables);
            }
        }
    }

    /// Execute a single-grouping [`Query`], recording its cost.
    ///
    /// # Errors
    /// Unknown table/columns, type errors, invalid query shapes.
    pub fn run(&self, q: &Query) -> DbResult<QueryOutput> {
        let table = self.table(&q.table)?;
        let out = exec::execute(&table, q)?;
        self.counters.record(&out.stats);
        Ok(out)
    }

    /// Execute a shared-scan [`SetsQuery`], recording its cost.
    ///
    /// # Errors
    /// Unknown table/columns, type errors, invalid query shapes.
    pub fn run_sets(&self, q: &SetsQuery) -> DbResult<SetsOutput> {
        let table = self.table(&q.table)?;
        let out = exec::execute_sets(&table, q)?;
        self.counters.record(&out.stats);
        Ok(out)
    }

    /// Lower and execute a [`LogicalPlan`], recording its cost.
    ///
    /// # Errors
    /// Malformed plans (`InvalidQuery`), unknown table/columns, type
    /// errors.
    pub fn execute_plan(&self, plan: &LogicalPlan) -> DbResult<PlanOutput> {
        self.run_physical(&plan.lower()?)
    }

    /// Execute an already-lowered [`PhysicalPlan`], recording its cost.
    ///
    /// # Errors
    /// Unknown table/columns, type errors.
    pub fn run_physical(&self, plan: &PhysicalPlan) -> DbResult<PlanOutput> {
        let table = self.table(plan.table())?;
        let out = plan.execute(&table)?;
        self.counters.record(out.stats());
        Ok(out)
    }

    /// Parse and execute a SQL string.
    ///
    /// # Errors
    /// Parse errors plus everything [`Database::run`] can return.
    pub fn run_sql(&self, sql: &str) -> DbResult<QueryOutput> {
        let q = crate::sql::parse_query(sql)?;
        self.run(&q)
    }

    /// Record externally executed work as one query (partitioned
    /// execution and serving-layer batch scans merge stats themselves
    /// before reporting them once).
    pub fn record_stats(&self, stats: &crate::exec::ExecStats) {
        self.counters.record(stats);
    }

    /// Snapshot the accumulated cost counters.
    pub fn cost(&self) -> CostSnapshot {
        self.counters.snapshot()
    }

    /// Reset the cost counters.
    pub fn reset_cost(&self) {
        self.counters.reset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{AggFunc, AggSpec};
    use crate::schema::{ColumnDef, Schema};
    use crate::value::DataType;

    fn db_with_sales() -> Database {
        let schema = Schema::new(vec![
            ColumnDef::dimension("store", DataType::Str),
            ColumnDef::measure("amount", DataType::Float64),
        ])
        .unwrap();
        let mut t = Table::new("sales", schema);
        for (s, a) in [("MA", 10.0), ("WA", 20.0), ("MA", 5.0)] {
            t.push_row(vec![s.into(), a.into()]).unwrap();
        }
        let db = Database::new();
        db.register(t);
        db
    }

    #[test]
    fn register_and_query() {
        let db = db_with_sales();
        let q = Query::aggregate(
            "sales",
            vec!["store"],
            vec![AggSpec::new(AggFunc::Sum, "amount")],
        );
        let out = db.run(&q).unwrap();
        assert_eq!(out.result.num_rows(), 2);
        assert_eq!(db.cost().queries, 1);
        assert_eq!(db.cost().rows_scanned, 3);
    }

    #[test]
    fn unknown_table_error() {
        let db = Database::new();
        let q = Query::aggregate("nope", vec![], vec![AggSpec::count_star()]);
        assert!(matches!(db.run(&q), Err(DbError::UnknownTable(_))));
    }

    #[test]
    fn table_names_sorted_and_drop() {
        let db = db_with_sales();
        let schema = Schema::new(vec![ColumnDef::measure("x", DataType::Int64)]).unwrap();
        db.register(Table::new("aaa", schema));
        assert_eq!(db.table_names(), vec!["aaa", "sales"]);
        assert!(db.drop_table("aaa").is_ok());
        assert!(matches!(
            db.drop_table("aaa"),
            Err(DbError::UnknownTable(_))
        ));
        assert_eq!(db.table_names(), vec!["sales"]);
    }

    #[test]
    fn cost_reset() {
        let db = db_with_sales();
        let q = Query::aggregate("sales", vec!["store"], vec![AggSpec::count_star()]);
        db.run(&q).unwrap();
        db.reset_cost();
        assert_eq!(db.cost(), CostSnapshot::default());
    }

    #[test]
    fn reregistering_replaces_table() {
        let db = db_with_sales();
        let schema = Schema::new(vec![
            ColumnDef::dimension("store", DataType::Str),
            ColumnDef::measure("amount", DataType::Float64),
        ])
        .unwrap();
        let t = Table::new("sales", schema); // empty replacement
        db.register(t);
        assert_eq!(db.table("sales").unwrap().num_rows(), 0);
    }

    #[test]
    fn versions_bump_on_register_and_drop() {
        let db = db_with_sales();
        let v1 = db.table("sales").unwrap().version();
        assert!(v1 > 0, "registered tables carry a version");
        assert_eq!(db.version(), v1);

        // Replacing under the same name assigns a strictly newer version.
        let schema = Schema::new(vec![
            ColumnDef::dimension("store", DataType::Str),
            ColumnDef::measure("amount", DataType::Float64),
        ])
        .unwrap();
        db.register(Table::new("sales", schema.clone()));
        let v2 = db.table("sales").unwrap().version();
        assert!(v2 > v1);
        assert_eq!(db.version(), v2);

        // Drops bump the catalog version too; missing drops do not
        // (and are a typed error, not a silent no-op).
        assert!(db.drop_table("sales").is_ok());
        assert!(db.version() > v2);
        let after = db.version();
        assert!(matches!(
            db.drop_table("sales"),
            Err(DbError::UnknownTable(_))
        ));
        assert_eq!(db.version(), after);

        // Unregistered tables are version 0.
        assert_eq!(Table::new("loose", schema).version(), 0);
    }

    #[test]
    fn append_rows_publishes_a_new_version_sharing_segments() {
        let db = db_with_sales();
        let v1 = db.table("sales").unwrap();
        let v2 = db
            .append_rows("sales", vec![vec!["NY".into(), 7.5.into()]])
            .unwrap();
        // The old snapshot is untouched; the new one extends it.
        assert_eq!(v1.num_rows(), 3);
        assert_eq!(v2.num_rows(), 4);
        assert_eq!(v2.row(3), vec![Value::from("NY"), Value::Float(7.5)]);
        assert!(v2.version() > v1.version());
        assert_eq!(v2.num_segments(), v1.num_segments() + 1);
        // Lineage: v1 → v2 is a pure append of exactly one row.
        assert_eq!(v2.append_delta_since(v1.version()), Some((3, 4)));
        // The catalog serves the new version.
        assert_eq!(db.table("sales").unwrap().num_rows(), 4);

        // Query results cover the appended row.
        let q = Query::aggregate("sales", vec![], vec![AggSpec::count_star()]);
        assert_eq!(
            db.run(&q).unwrap().result.rows[0][0],
            crate::value::Value::Int(4)
        );
    }

    #[test]
    fn append_rows_failure_publishes_nothing() {
        let db = db_with_sales();
        let before = db.table("sales").unwrap();
        let v_before = db.version();
        // Second row is malformed: nothing of the batch may land.
        let r = db.append_rows(
            "sales",
            vec![
                vec!["OK".into(), 1.0.into()],
                vec!["bad".into(), "not a number".into()],
            ],
        );
        assert!(r.is_err());
        assert_eq!(db.version(), v_before, "failed append bumps nothing");
        let now = db.table("sales").unwrap();
        assert_eq!(now.num_rows(), 3);
        assert!(Arc::ptr_eq(&before, &now), "old version still served");

        assert!(matches!(
            db.append_rows("missing", vec![]),
            Err(DbError::UnknownTable(_))
        ));
    }

    #[test]
    fn long_append_histories_compact_without_breaking_refresh() {
        let db = db_with_sales(); // 3 rows, 1 segment
        let one_row = |i: usize| vec![vec![format!("S{}", i % 7).into(), (i as f64).into()]];
        for i in 0..50 {
            db.append_rows("sales", one_row(i)).unwrap();
        }
        // A cached partial-aggregate state from before the compaction.
        let snapshot = db.table("sales").unwrap();
        assert_eq!(snapshot.num_segments(), 51);
        let phys = LogicalPlan::scan("sales")
            .aggregate(
                vec!["store".into()],
                vec![crate::exec::AggSpec::new(
                    crate::exec::AggFunc::Sum,
                    "amount",
                )],
            )
            .lower()
            .unwrap();
        let cached = phys
            .execute_partial(&snapshot, (0, snapshot.num_rows()))
            .unwrap();

        // 24 more single-row appends cross SEGMENT_COMPACT_THRESHOLD:
        // the segment count must collapse instead of growing forever.
        for i in 50..74 {
            db.append_rows("sales", one_row(i)).unwrap();
        }
        let live = db.table("sales").unwrap();
        assert_eq!(live.num_rows(), 3 + 74);
        assert!(
            live.num_segments() < 25,
            "compaction must bound the segment count, got {}",
            live.num_segments()
        );
        assert!(live.num_segments() > 1, "appends after compaction");

        // Incremental refresh across the compaction boundary: row ids
        // and dictionary codes are preserved, so the pre-compaction
        // cached state merges with the delta to the bit-exact cold
        // answer at the compacted version.
        let (lo, hi) = live
            .append_delta_since(snapshot.version())
            .expect("within the bounded lineage");
        assert_eq!((lo, hi), (53, 77));
        let mut refreshed = cached;
        refreshed
            .merge(phys.execute_partial(&live, (lo, hi)).unwrap(), &live)
            .unwrap();
        let refreshed = refreshed.finalize(&live).unwrap();
        let cold = phys.execute(&live).unwrap();
        assert_eq!(
            cold.result_set(0).unwrap(),
            refreshed.result_set(0).unwrap()
        );
    }

    #[test]
    fn register_of_existing_name_replaces_and_breaks_lineage() {
        let db = db_with_sales();
        let v1 = db.table("sales").unwrap();
        // Re-registering the same name is a replacement: the new
        // table's lineage starts fresh, so no version of the old
        // registration is append-refreshable against it.
        let schema = Schema::new(vec![
            ColumnDef::dimension("store", DataType::Str),
            ColumnDef::measure("amount", DataType::Float64),
        ])
        .unwrap();
        db.register(Table::new("sales", schema));
        let v2 = db.table("sales").unwrap();
        assert!(v2.version() > v1.version());
        assert_eq!(v2.append_delta_since(v1.version()), None);
        assert_eq!(v2.lineage().len(), 1);
    }

    /// Regression for the lock-order fixes in `register` and
    /// `maybe_checkpoint`: both used to snapshot the table map *while
    /// holding* the durability mutex (a tables-after-durability
    /// inversion against the declared order in
    /// `crates/lint/lock-order.toml`). Hammer every durable mutation
    /// path concurrently; an ordering regression shows up as a
    /// deadlock (test hang) or a lint finding.
    #[test]
    fn durable_concurrent_mutations_do_not_deadlock() {
        let dir =
            std::env::temp_dir().join(format!("memdb-catalog-lockorder-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let db = std::sync::Arc::new(db_with_sales());
        db.save(&dir).unwrap();
        std::thread::scope(|s| {
            let appender = db.clone();
            s.spawn(move || {
                for i in 0..20 {
                    appender
                        .append_rows(
                            "sales",
                            vec![vec![format!("T{i}").into(), (i as f64).into()]],
                        )
                        .unwrap();
                }
            });
            let registrar = db.clone();
            s.spawn(move || {
                for i in 0..10 {
                    let schema =
                        Schema::new(vec![ColumnDef::measure("x", DataType::Int64)]).unwrap();
                    registrar.register(Table::new(&format!("aux{i}"), schema));
                }
            });
            let checkpointer = db.clone();
            s.spawn(move || {
                for _ in 0..10 {
                    checkpointer.checkpoint().unwrap();
                }
            });
            let reader = db.clone();
            s.spawn(move || {
                let q = Query::aggregate(
                    "sales",
                    vec!["store"],
                    vec![AggSpec::new(AggFunc::Sum, "amount")],
                );
                for _ in 0..50 {
                    let _ = reader.run(&q);
                }
            });
        });
        assert_eq!(db.table("sales").unwrap().num_rows(), 23);
        assert_eq!(db.table_names().len(), 11);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_queries() {
        let db = std::sync::Arc::new(db_with_sales());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let db = db.clone();
                s.spawn(move || {
                    let q = Query::aggregate(
                        "sales",
                        vec!["store"],
                        vec![AggSpec::new(AggFunc::Sum, "amount")],
                    );
                    for _ in 0..50 {
                        db.run(&q).unwrap();
                    }
                });
            }
        });
        assert_eq!(db.cost().queries, 200);
    }
}
