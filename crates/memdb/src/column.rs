//! Typed, dictionary-encoded columnar storage.
//!
//! Each [`Column`] is a dense vector of one [`DataType`] plus an optional
//! validity mask (absent = no nulls). Strings are dictionary-encoded:
//! the column stores `u32` codes into a per-column dictionary, which makes
//! group-by keys and correlation statistics cheap.

use std::collections::HashMap;

use crate::error::{DbError, DbResult};
use crate::value::{DataType, Value};

/// Validity (non-null) mask. `None` means every row is valid, which is the
/// common case and costs nothing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Validity {
    mask: Option<Vec<bool>>,
}

impl Validity {
    /// Is row `i` valid (non-null)? Rows beyond the recorded mask are valid.
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        match &self.mask {
            None => true,
            Some(m) => m.get(i).copied().unwrap_or(true),
        }
    }

    /// Record validity for the next row (row index `len`).
    fn push(&mut self, len: usize, valid: bool) {
        match (&mut self.mask, valid) {
            (None, true) => {}
            (None, false) => {
                let mut m = vec![true; len];
                m.push(false);
                self.mask = Some(m);
            }
            (Some(m), v) => m.push(v),
        }
    }

    /// Number of nulls among the first `len` rows.
    pub fn null_count(&self, len: usize) -> usize {
        match &self.mask {
            None => 0,
            Some(m) => m.iter().take(len).filter(|v| !**v).count(),
        }
    }
}

/// Dictionary for string columns: bidirectional mapping between strings
/// and dense `u32` codes.
#[derive(Debug, Clone, Default)]
pub struct StrDict {
    values: Vec<String>,
    index: HashMap<String, u32>,
}

impl StrDict {
    /// Intern `s`, returning its code.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&c) = self.index.get(s) {
            return c;
        }
        let code = self.values.len() as u32;
        self.values.push(s.to_string());
        self.index.insert(s.to_string(), code);
        code
    }

    /// Look up a code without interning.
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.index.get(s).copied()
    }

    /// The string for `code`.
    pub fn value(&self, code: u32) -> &str {
        &self.values[code as usize]
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no strings are interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// A single column of data.
#[derive(Debug, Clone)]
pub enum Column {
    /// 64-bit integers.
    Int64 {
        /// Row values (unspecified where invalid).
        data: Vec<i64>,
        /// Null mask.
        validity: Validity,
    },
    /// 64-bit floats.
    Float64 {
        /// Row values (unspecified where invalid).
        data: Vec<f64>,
        /// Null mask.
        validity: Validity,
    },
    /// Dictionary-encoded strings.
    Str {
        /// Per-row dictionary codes (unspecified where invalid).
        codes: Vec<u32>,
        /// The dictionary.
        dict: StrDict,
        /// Null mask.
        validity: Validity,
    },
    /// Booleans.
    Bool {
        /// Row values (unspecified where invalid).
        data: Vec<bool>,
        /// Null mask.
        validity: Validity,
    },
}

impl Column {
    /// An empty column of the given type.
    pub fn new(dtype: DataType) -> Self {
        match dtype {
            DataType::Int64 => Column::Int64 {
                data: Vec::new(),
                validity: Validity::default(),
            },
            DataType::Float64 => Column::Float64 {
                data: Vec::new(),
                validity: Validity::default(),
            },
            DataType::Str => Column::Str {
                codes: Vec::new(),
                dict: StrDict::default(),
                validity: Validity::default(),
            },
            DataType::Bool => Column::Bool {
                data: Vec::new(),
                validity: Validity::default(),
            },
        }
    }

    /// An empty column with pre-reserved capacity.
    pub fn with_capacity(dtype: DataType, cap: usize) -> Self {
        let mut c = Column::new(dtype);
        match &mut c {
            Column::Int64 { data, .. } => data.reserve(cap),
            Column::Float64 { data, .. } => data.reserve(cap),
            Column::Str { codes, .. } => codes.reserve(cap),
            Column::Bool { data, .. } => data.reserve(cap),
        }
        c
    }

    /// This column's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int64 { .. } => DataType::Int64,
            Column::Float64 { .. } => DataType::Float64,
            Column::Str { .. } => DataType::Str,
            Column::Bool { .. } => DataType::Bool,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int64 { data, .. } => data.len(),
            Column::Float64 { data, .. } => data.len(),
            Column::Str { codes, .. } => codes.len(),
            Column::Bool { data, .. } => data.len(),
        }
    }

    /// True if the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of null rows.
    pub fn null_count(&self) -> usize {
        let n = self.len();
        match self {
            Column::Int64 { validity, .. }
            | Column::Float64 { validity, .. }
            | Column::Str { validity, .. }
            | Column::Bool { validity, .. } => validity.null_count(n),
        }
    }

    /// Is row `i` non-null?
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        match self {
            Column::Int64 { validity, .. }
            | Column::Float64 { validity, .. }
            | Column::Str { validity, .. }
            | Column::Bool { validity, .. } => validity.is_valid(i),
        }
    }

    /// Append a value, checking its type against the column's.
    ///
    /// # Errors
    /// `TypeMismatch` if the value's type differs from the column type
    /// (ints are accepted into float columns and widened).
    pub fn push(&mut self, v: Value) -> DbResult<()> {
        let mismatch = |found: &Value, expected: DataType| DbError::TypeMismatch {
            expected: expected.name().to_string(),
            found: found
                .data_type()
                .map(|t| t.name().to_string())
                .unwrap_or_else(|| "null".to_string()),
            context: "column push".to_string(),
        };
        match self {
            Column::Int64 { data, validity } => match v {
                Value::Int(i) => {
                    validity.push(data.len(), true);
                    data.push(i);
                }
                Value::Null => {
                    validity.push(data.len(), false);
                    data.push(0);
                }
                other => return Err(mismatch(&other, DataType::Int64)),
            },
            Column::Float64 { data, validity } => match v {
                Value::Float(f) => {
                    validity.push(data.len(), true);
                    data.push(f);
                }
                Value::Int(i) => {
                    validity.push(data.len(), true);
                    data.push(i as f64);
                }
                Value::Null => {
                    validity.push(data.len(), false);
                    data.push(0.0);
                }
                other => return Err(mismatch(&other, DataType::Float64)),
            },
            Column::Str {
                codes,
                dict,
                validity,
            } => match v {
                Value::Str(s) => {
                    let code = dict.intern(&s);
                    validity.push(codes.len(), true);
                    codes.push(code);
                }
                Value::Null => {
                    validity.push(codes.len(), false);
                    codes.push(0);
                }
                other => return Err(mismatch(&other, DataType::Str)),
            },
            Column::Bool { data, validity } => match v {
                Value::Bool(b) => {
                    validity.push(data.len(), true);
                    data.push(b);
                }
                Value::Null => {
                    validity.push(data.len(), false);
                    data.push(false);
                }
                other => return Err(mismatch(&other, DataType::Bool)),
            },
        }
        Ok(())
    }

    /// Materialize row `i` as a [`Value`].
    pub fn get(&self, i: usize) -> Value {
        if !self.is_valid(i) {
            return Value::Null;
        }
        match self {
            Column::Int64 { data, .. } => Value::Int(data[i]),
            Column::Float64 { data, .. } => Value::Float(data[i]),
            Column::Str { codes, dict, .. } => Value::Str(dict.value(codes[i]).to_string()),
            Column::Bool { data, .. } => Value::Bool(data[i]),
        }
    }

    /// Numeric view of row `i`: `None` when null or non-numeric.
    #[inline]
    pub fn f64_at(&self, i: usize) -> Option<f64> {
        if !self.is_valid(i) {
            return None;
        }
        match self {
            Column::Int64 { data, .. } => Some(data[i] as f64),
            Column::Float64 { data, .. } => Some(data[i]),
            _ => None,
        }
    }

    /// Dictionary accessor for string columns.
    pub fn str_dict(&self) -> Option<&StrDict> {
        match self {
            Column::Str { dict, .. } => Some(dict),
            _ => None,
        }
    }

    /// Dictionary codes for string columns.
    pub fn str_codes(&self) -> Option<&[u32]> {
        match self {
            Column::Str { codes, .. } => Some(codes),
            _ => None,
        }
    }

    /// Number of distinct non-null values.
    ///
    /// For string columns this is the dictionary size (exact if every
    /// interned string is still referenced, which holds for append-only
    /// columns). Other types scan.
    pub fn distinct_count(&self) -> usize {
        match self {
            Column::Str {
                dict,
                codes,
                validity,
            } => {
                // Dictionary may over-count only if values were interned but
                // never stored; append-only pushes always store, so the dict
                // size is exact unless nulls exist (code 0 placeholder).
                if validity.null_count(codes.len()) == 0 {
                    dict.len()
                } else {
                    let mut seen = vec![false; dict.len()];
                    let mut n = 0;
                    for (i, &c) in codes.iter().enumerate() {
                        if validity.is_valid(i) && !seen[c as usize] {
                            seen[c as usize] = true;
                            n += 1;
                        }
                    }
                    n
                }
            }
            Column::Int64 { data, validity } => {
                let mut set: std::collections::HashSet<i64> = std::collections::HashSet::new();
                for (i, &v) in data.iter().enumerate() {
                    if validity.is_valid(i) {
                        set.insert(v);
                    }
                }
                set.len()
            }
            Column::Float64 { data, validity } => {
                let mut set: std::collections::HashSet<u64> = std::collections::HashSet::new();
                for (i, &v) in data.iter().enumerate() {
                    if validity.is_valid(i) {
                        set.insert(v.to_bits());
                    }
                }
                set.len()
            }
            Column::Bool { data, validity } => {
                let mut t = false;
                let mut f = false;
                for (i, &v) in data.iter().enumerate() {
                    if validity.is_valid(i) {
                        if v {
                            t = true;
                        } else {
                            f = true;
                        }
                    }
                }
                t as usize + f as usize
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_roundtrip_with_nulls() {
        let mut c = Column::new(DataType::Int64);
        c.push(Value::Int(5)).unwrap();
        c.push(Value::Null).unwrap();
        c.push(Value::Int(7)).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0), Value::Int(5));
        assert_eq!(c.get(1), Value::Null);
        assert_eq!(c.get(2), Value::Int(7));
        assert_eq!(c.null_count(), 1);
    }

    #[test]
    fn float_accepts_int_widening() {
        let mut c = Column::new(DataType::Float64);
        c.push(Value::Int(2)).unwrap();
        assert_eq!(c.get(0), Value::Float(2.0));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut c = Column::new(DataType::Int64);
        assert!(c.push(Value::from("x")).is_err());
        let mut c = Column::new(DataType::Str);
        assert!(c.push(Value::Int(1)).is_err());
    }

    #[test]
    fn string_dictionary_shared_codes() {
        let mut c = Column::new(DataType::Str);
        for s in ["MA", "WA", "MA", "NY", "MA"] {
            c.push(Value::from(s)).unwrap();
        }
        let codes = c.str_codes().unwrap();
        assert_eq!(codes, &[0, 1, 0, 2, 0]);
        assert_eq!(c.str_dict().unwrap().len(), 3);
        assert_eq!(c.get(3), Value::from("NY"));
    }

    #[test]
    fn distinct_counts() {
        let mut c = Column::new(DataType::Str);
        for s in ["a", "b", "a"] {
            c.push(Value::from(s)).unwrap();
        }
        assert_eq!(c.distinct_count(), 2);

        let mut c = Column::new(DataType::Int64);
        for v in [1, 2, 2, 3] {
            c.push(Value::Int(v)).unwrap();
        }
        c.push(Value::Null).unwrap();
        assert_eq!(c.distinct_count(), 3);

        let mut c = Column::new(DataType::Bool);
        c.push(Value::Bool(true)).unwrap();
        c.push(Value::Bool(true)).unwrap();
        assert_eq!(c.distinct_count(), 1);
    }

    #[test]
    fn validity_lazy_allocation() {
        let mut c = Column::new(DataType::Int64);
        c.push(Value::Int(1)).unwrap();
        c.push(Value::Int(2)).unwrap();
        assert_eq!(c.null_count(), 0);
        c.push(Value::Null).unwrap();
        assert_eq!(c.null_count(), 1);
        assert!(c.is_valid(0));
        assert!(!c.is_valid(2));
    }

    #[test]
    fn f64_at_views() {
        let mut c = Column::new(DataType::Int64);
        c.push(Value::Int(4)).unwrap();
        c.push(Value::Null).unwrap();
        assert_eq!(c.f64_at(0), Some(4.0));
        assert_eq!(c.f64_at(1), None);
        let mut s = Column::new(DataType::Str);
        s.push(Value::from("x")).unwrap();
        assert_eq!(s.f64_at(0), None);
    }
}
