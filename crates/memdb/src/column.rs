//! Typed, dictionary-encoded, *segmented* columnar storage.
//!
//! Each [`Column`] is an ordered list of immutable [`ColumnSegment`]s
//! behind `Arc`s plus an optional validity mask per segment (absent =
//! no nulls). Strings
//! are dictionary-encoded: segments store `u32` codes into a per-column
//! dictionary shared by all segments, which makes group-by keys and
//! correlation statistics cheap. The dictionary is extended
//! copy-on-write when rows are appended, so codes in shared (older)
//! segments stay valid in every snapshot that references them.
//!
//! Mutation model: [`Column::push`] writes into an *open* tail segment;
//! sealing (crate-internal, done by tables) freezes it so the next push
//! starts a new segment. Tables seal their columns when registered with
//! a database and around every append, which is what lets table
//! versions share segments.

use std::collections::HashMap;
use std::sync::Arc;

use crate::error::{DbError, DbResult};
use crate::segment::{ColumnSegment, SegmentData};
use crate::value::{DataType, Value};

pub use crate::segment::Validity;

/// Dictionary for string columns: bidirectional mapping between strings
/// and dense `u32` codes.
#[derive(Debug, Clone, Default)]
pub struct StrDict {
    values: Vec<String>,
    index: HashMap<String, u32>,
}

impl StrDict {
    /// Intern `s`, returning its code.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&c) = self.index.get(s) {
            return c;
        }
        let code = self.values.len() as u32;
        self.values.push(s.to_string());
        self.index.insert(s.to_string(), code);
        code
    }

    /// Look up a code without interning.
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.index.get(s).copied()
    }

    /// The string for `code`.
    pub fn value(&self, code: u32) -> &str {
        &self.values[code as usize]
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Append one entry with the next sequential code (the durable
    /// store's dictionary-rebuild path). Returns `None` if the entry is
    /// already interned — codes would misalign, so the caller treats
    /// that as corruption.
    pub(crate) fn push_entry(&mut self, s: String) -> Option<u32> {
        if self.index.contains_key(&s) {
            return None;
        }
        let code = self.values.len() as u32;
        self.values.push(s.clone());
        self.index.insert(s, code);
        Some(code)
    }

    /// True if no strings are interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// A single logical column: typed, segmented storage.
///
/// Cloning is cheap (segments are shared behind `Arc`); a clone that is
/// subsequently pushed to copies only its open tail segment and, for
/// string columns, extends its dictionary copy-on-write — the original
/// column (and any snapshot sharing its segments) is never disturbed.
#[derive(Debug, Clone)]
pub struct Column {
    dtype: DataType,
    /// Sealed + open segments, in row order.
    segments: Vec<Arc<ColumnSegment>>,
    /// `starts[i]` = first logical row id of `segments[i]`.
    starts: Vec<usize>,
    /// Total rows across all segments.
    len: usize,
    /// Whether the last segment still accepts pushes.
    open: bool,
    /// Shared dictionary (string columns only).
    dict: Option<Arc<StrDict>>,
}

impl Column {
    /// An empty column of the given type.
    pub fn new(dtype: DataType) -> Self {
        Column {
            dtype,
            segments: Vec::new(),
            starts: Vec::new(),
            len: 0,
            open: false,
            dict: match dtype {
                DataType::Str => Some(Arc::new(StrDict::default())),
                _ => None,
            },
        }
    }

    /// An empty column with pre-reserved capacity in its first segment.
    pub fn with_capacity(dtype: DataType, cap: usize) -> Self {
        let mut c = Column::new(dtype);
        c.segments
            .push(Arc::new(ColumnSegment::with_capacity(dtype, cap)));
        c.starts.push(0);
        c.open = true;
        c
    }

    /// Rebuild a sealed column from stored segments (the durable
    /// store's reconstruction path). `starts` are derived from segment
    /// lengths; the column is sealed (the next push opens a fresh
    /// segment), exactly like a registered table's column.
    pub(crate) fn from_parts(
        dtype: DataType,
        segments: Vec<Arc<ColumnSegment>>,
        dict: Option<Arc<StrDict>>,
    ) -> Column {
        let mut starts = Vec::with_capacity(segments.len());
        let mut len = 0usize;
        for seg in &segments {
            starts.push(len);
            len += seg.len();
        }
        Column {
            dtype,
            segments,
            starts,
            len,
            open: false,
            dict,
        }
    }

    /// This column's data type.
    pub fn data_type(&self) -> DataType {
        self.dtype
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of segments (sealed plus the open tail, if any).
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// The segments in row order, each with its starting logical row id.
    /// This is the scan surface for segment-at-a-time loops (statistics,
    /// delta scans): `start + local index` recovers the logical row id.
    pub fn segments(&self) -> impl Iterator<Item = (usize, &ColumnSegment)> {
        self.starts
            .iter()
            .copied()
            .zip(self.segments.iter().map(Arc::as_ref))
    }

    /// Seal the open tail segment (if any): the next push starts a new
    /// segment. Idempotent. Called by tables when they are registered
    /// and around appends, so segment boundaries align with published
    /// table versions.
    pub(crate) fn seal(&mut self) {
        self.open = false;
    }

    /// Locate logical row `i`: the segment holding it plus the local
    /// index within that segment.
    #[inline]
    fn locate(&self, i: usize) -> (&ColumnSegment, usize) {
        if self.segments.len() == 1 {
            // Overwhelmingly common case: a table built in one shot.
            return (&self.segments[0], i);
        }
        let s = self.starts.partition_point(|&st| st <= i) - 1;
        (&self.segments[s], i - self.starts[s])
    }

    /// Number of null rows.
    pub fn null_count(&self) -> usize {
        self.segments.iter().map(|s| s.null_count()).sum()
    }

    /// Is row `i` non-null? Rows beyond the column are valid (mirroring
    /// the validity mask's semantics for unrecorded rows).
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        if i >= self.len {
            return true;
        }
        let (seg, local) = self.locate(i);
        seg.is_valid(local)
    }

    /// Append a value, checking its type against the column's.
    ///
    /// # Errors
    /// `TypeMismatch` if the value's type differs from the column type
    /// (ints are accepted into float columns and widened).
    pub fn push(&mut self, v: Value) -> DbResult<()> {
        let mismatch = |found: &Value, expected: DataType| DbError::TypeMismatch {
            expected: expected.name().to_string(),
            found: found
                .data_type()
                .map(|t| t.name().to_string())
                .unwrap_or_else(|| "null".to_string()),
            context: "column push".to_string(),
        };
        // Type-check (and intern) before touching the tail segment so a
        // rejected push leaves the column untouched.
        enum Typed {
            Null,
            Int(i64),
            Float(f64),
            Code(u32),
            Bool(bool),
        }
        let typed = match (self.dtype, v) {
            (_, Value::Null) => Typed::Null,
            (DataType::Int64, Value::Int(i)) => Typed::Int(i),
            (DataType::Float64, Value::Float(f)) => Typed::Float(f),
            (DataType::Float64, Value::Int(i)) => Typed::Float(i as f64),
            (DataType::Str, Value::Str(s)) => {
                let dict = self.dict.as_mut().expect("string columns carry a dict");
                Typed::Code(Arc::make_mut(dict).intern(&s))
            }
            (DataType::Bool, Value::Bool(b)) => Typed::Bool(b),
            (expected, other) => return Err(mismatch(&other, expected)),
        };
        if !self.open {
            self.segments.push(Arc::new(ColumnSegment::new(self.dtype)));
            self.starts.push(self.len);
            self.open = true;
        }
        let seg = Arc::make_mut(self.segments.last_mut().expect("open tail exists"));
        match typed {
            Typed::Null => seg.push_null(),
            Typed::Int(i) => seg.push_int(i),
            Typed::Float(f) => seg.push_float(f),
            Typed::Code(c) => seg.push_code(c),
            Typed::Bool(b) => seg.push_bool(b),
        }
        self.len += 1;
        Ok(())
    }

    /// Materialize row `i` as a [`Value`].
    pub fn get(&self, i: usize) -> Value {
        let (seg, local) = self.locate(i);
        seg.value_at(local, self.dict.as_deref())
    }

    /// Numeric view of row `i`: `None` when null or non-numeric.
    #[inline]
    pub fn f64_at(&self, i: usize) -> Option<f64> {
        let (seg, local) = self.locate(i);
        seg.f64_at(local)
    }

    /// Dictionary code of row `i` for string columns (`None` when null
    /// or non-string).
    #[inline]
    pub fn code_at(&self, i: usize) -> Option<u32> {
        let (seg, local) = self.locate(i);
        seg.code_at(local)
    }

    /// A 64-bit grouping key for row `i` (`None` when null): dictionary
    /// code for strings, raw bits for ints/floats/bools. Stable across
    /// appends — shared segments and the append-only dictionary keep
    /// old rows' bits unchanged in every descendant version.
    #[inline]
    pub fn key_bits(&self, i: usize) -> Option<u64> {
        let (seg, local) = self.locate(i);
        seg.key_bits(local)
    }

    /// Dictionary accessor for string columns.
    pub fn str_dict(&self) -> Option<&StrDict> {
        self.dict.as_deref()
    }

    /// Number of distinct non-null values.
    ///
    /// For string columns without nulls this is the dictionary size
    /// (exact: every interned string is stored by some segment of this
    /// column's lineage). Other cases scan the segments.
    pub fn distinct_count(&self) -> usize {
        match self.dtype {
            DataType::Str => {
                let dict_len = self.dict.as_ref().map_or(0, |d| d.len());
                if self.null_count() == 0 {
                    return dict_len;
                }
                let mut seen = vec![false; dict_len];
                let mut n = 0;
                for (_, seg) in self.segments() {
                    if let SegmentData::Str(codes) = seg.data() {
                        for (i, &c) in codes.iter().enumerate() {
                            if seg.is_valid(i) && !seen[c as usize] {
                                seen[c as usize] = true;
                                n += 1;
                            }
                        }
                    }
                }
                n
            }
            DataType::Int64 => {
                let mut set: std::collections::HashSet<i64> = std::collections::HashSet::new();
                for (_, seg) in self.segments() {
                    if let SegmentData::Int64(data) = seg.data() {
                        for (i, &v) in data.iter().enumerate() {
                            if seg.is_valid(i) {
                                set.insert(v);
                            }
                        }
                    }
                }
                set.len()
            }
            DataType::Float64 => {
                let mut set: std::collections::HashSet<u64> = std::collections::HashSet::new();
                for (_, seg) in self.segments() {
                    if let SegmentData::Float64(data) = seg.data() {
                        for (i, &v) in data.iter().enumerate() {
                            if seg.is_valid(i) {
                                set.insert(v.to_bits());
                            }
                        }
                    }
                }
                set.len()
            }
            DataType::Bool => {
                let mut t = false;
                let mut f = false;
                for (_, seg) in self.segments() {
                    if let SegmentData::Bool(data) = seg.data() {
                        for (i, &v) in data.iter().enumerate() {
                            if seg.is_valid(i) {
                                if v {
                                    t = true;
                                } else {
                                    f = true;
                                }
                            }
                        }
                    }
                }
                t as usize + f as usize
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_roundtrip_with_nulls() {
        let mut c = Column::new(DataType::Int64);
        c.push(Value::Int(5)).unwrap();
        c.push(Value::Null).unwrap();
        c.push(Value::Int(7)).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0), Value::Int(5));
        assert_eq!(c.get(1), Value::Null);
        assert_eq!(c.get(2), Value::Int(7));
        assert_eq!(c.null_count(), 1);
    }

    #[test]
    fn float_accepts_int_widening() {
        let mut c = Column::new(DataType::Float64);
        c.push(Value::Int(2)).unwrap();
        assert_eq!(c.get(0), Value::Float(2.0));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut c = Column::new(DataType::Int64);
        assert!(c.push(Value::from("x")).is_err());
        let mut c = Column::new(DataType::Str);
        assert!(c.push(Value::Int(1)).is_err());
    }

    #[test]
    fn string_dictionary_shared_codes() {
        let mut c = Column::new(DataType::Str);
        for s in ["MA", "WA", "MA", "NY", "MA"] {
            c.push(Value::from(s)).unwrap();
        }
        let codes: Vec<u32> = (0..c.len()).map(|i| c.code_at(i).unwrap()).collect();
        assert_eq!(codes, vec![0, 1, 0, 2, 0]);
        assert_eq!(c.str_dict().unwrap().len(), 3);
        assert_eq!(c.get(3), Value::from("NY"));
    }

    #[test]
    fn distinct_counts() {
        let mut c = Column::new(DataType::Str);
        for s in ["a", "b", "a"] {
            c.push(Value::from(s)).unwrap();
        }
        assert_eq!(c.distinct_count(), 2);

        let mut c = Column::new(DataType::Int64);
        for v in [1, 2, 2, 3] {
            c.push(Value::Int(v)).unwrap();
        }
        c.push(Value::Null).unwrap();
        assert_eq!(c.distinct_count(), 3);

        let mut c = Column::new(DataType::Bool);
        c.push(Value::Bool(true)).unwrap();
        c.push(Value::Bool(true)).unwrap();
        assert_eq!(c.distinct_count(), 1);
    }

    #[test]
    fn validity_lazy_allocation() {
        let mut c = Column::new(DataType::Int64);
        c.push(Value::Int(1)).unwrap();
        c.push(Value::Int(2)).unwrap();
        assert_eq!(c.null_count(), 0);
        c.push(Value::Null).unwrap();
        assert_eq!(c.null_count(), 1);
        assert!(c.is_valid(0));
        assert!(!c.is_valid(2));
    }

    #[test]
    fn f64_at_views() {
        let mut c = Column::new(DataType::Int64);
        c.push(Value::Int(4)).unwrap();
        c.push(Value::Null).unwrap();
        assert_eq!(c.f64_at(0), Some(4.0));
        assert_eq!(c.f64_at(1), None);
        let mut s = Column::new(DataType::Str);
        s.push(Value::from("x")).unwrap();
        assert_eq!(s.f64_at(0), None);
    }

    #[test]
    fn seal_splits_segments_and_access_spans_them() {
        let mut c = Column::new(DataType::Str);
        for s in ["a", "b"] {
            c.push(Value::from(s)).unwrap();
        }
        c.seal();
        for s in ["b", "c"] {
            c.push(Value::from(s)).unwrap();
        }
        assert_eq!(c.num_segments(), 2);
        assert_eq!(c.len(), 4);
        // Codes stay consistent across segments (shared dictionary).
        assert_eq!(c.code_at(1), c.code_at(2));
        assert_eq!(c.get(3), Value::from("c"));
        assert_eq!(c.distinct_count(), 3);
        let starts: Vec<usize> = c.segments().map(|(s, _)| s).collect();
        assert_eq!(starts, vec![0, 2]);
    }

    #[test]
    fn clone_then_push_never_disturbs_the_original() {
        let mut a = Column::new(DataType::Str);
        for s in ["x", "y"] {
            a.push(Value::from(s)).unwrap();
        }
        a.seal();
        let mut b = a.clone();
        b.push(Value::from("z")).unwrap();
        // The original is untouched: same length, same dict.
        assert_eq!(a.len(), 2);
        assert_eq!(a.str_dict().unwrap().len(), 2);
        // The clone extended its own copy-on-write dictionary, keeping
        // shared codes stable.
        assert_eq!(b.len(), 3);
        assert_eq!(b.str_dict().unwrap().len(), 3);
        assert_eq!(a.code_at(0), b.code_at(0));
        assert_eq!(b.get(2), Value::from("z"));
    }

    #[test]
    fn key_bits_stable_across_segments() {
        let mut c = Column::new(DataType::Float64);
        c.push(Value::Float(1.5)).unwrap();
        c.seal();
        c.push(Value::Float(1.5)).unwrap();
        c.push(Value::Null).unwrap();
        assert_eq!(c.key_bits(0), c.key_bits(1));
        assert_eq!(c.key_bits(2), None);
    }
}
