//! Database-wide cost accounting.
//!
//! Wall-clock time is noisy and machine-dependent; scan and row counters
//! are deterministic. SeeDB's experiments report both, and the *shape* of
//! the paper's optimization claims (e.g. "combining target and comparison
//! halves the work") is asserted in CI using the deterministic counters.
//!
//! The counters are [`seedb_obs::Counter`] handles. A standalone
//! `CostCounters::default()` owns private cells (tests, ad-hoc use);
//! [`CostCounters::registered`] binds the same fields to a registry's
//! `exec.*` cells, so a [`CostSnapshot`] and a full metrics snapshot
//! are two views of one set of atomics, never divergent copies.

use seedb_obs::{Counter, Registry};

use crate::exec::ExecStats;

/// Monotonic counters accumulated across every query a [`crate::Database`]
/// executes. Thread-safe; updated by parallel executions as well.
#[derive(Debug, Default)]
pub struct CostCounters {
    queries: Counter,
    table_scans: Counter,
    rows_scanned: Counter,
    groups_emitted: Counter,
}

impl CostCounters {
    /// Counters backed by `registry`'s `exec.*` cells. Registering the
    /// same names elsewhere (e.g. a metrics snapshot) reads the exact
    /// cells this struct updates.
    pub fn registered(registry: &Registry) -> CostCounters {
        CostCounters {
            queries: registry.register_counter("exec.queries"),
            table_scans: registry.register_counter("exec.table_scans"),
            rows_scanned: registry.register_counter("exec.rows_scanned"),
            groups_emitted: registry.register_counter("exec.groups_emitted"),
        }
    }

    /// Record one execution.
    pub fn record(&self, stats: &ExecStats) {
        self.queries.inc();
        self.table_scans.add(stats.table_scans);
        self.rows_scanned.add(stats.rows_scanned);
        self.groups_emitted.add(stats.groups_emitted);
    }

    /// Snapshot the current totals.
    pub fn snapshot(&self) -> CostSnapshot {
        CostSnapshot {
            queries: self.queries.get(),
            table_scans: self.table_scans.get(),
            rows_scanned: self.rows_scanned.get(),
            groups_emitted: self.groups_emitted.get(),
        }
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.queries.reset();
        self.table_scans.reset();
        self.rows_scanned.reset();
        self.groups_emitted.reset();
    }
}

/// A point-in-time copy of [`CostCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostSnapshot {
    /// Queries executed.
    pub queries: u64,
    /// Table scans performed.
    pub table_scans: u64,
    /// Rows scanned.
    pub rows_scanned: u64,
    /// Groups emitted.
    pub groups_emitted: u64,
}

impl CostSnapshot {
    /// Counter deltas between two snapshots (`self` taken after `earlier`).
    pub fn since(&self, earlier: &CostSnapshot) -> CostSnapshot {
        CostSnapshot {
            queries: self.queries - earlier.queries,
            table_scans: self.table_scans - earlier.table_scans,
            rows_scanned: self.rows_scanned - earlier.rows_scanned,
            groups_emitted: self.groups_emitted - earlier.groups_emitted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn stats(rows: u64, scans: u64, groups: u64) -> ExecStats {
        ExecStats {
            rows_scanned: rows,
            table_scans: scans,
            groups_emitted: groups,
            elapsed: Duration::ZERO,
            ..ExecStats::default()
        }
    }

    #[test]
    fn record_and_snapshot() {
        let c = CostCounters::default();
        c.record(&stats(100, 1, 5));
        c.record(&stats(200, 1, 7));
        let s = c.snapshot();
        assert_eq!(s.queries, 2);
        assert_eq!(s.table_scans, 2);
        assert_eq!(s.rows_scanned, 300);
        assert_eq!(s.groups_emitted, 12);
    }

    #[test]
    fn since_computes_delta() {
        let c = CostCounters::default();
        c.record(&stats(100, 1, 5));
        let before = c.snapshot();
        c.record(&stats(50, 1, 2));
        let delta = c.snapshot().since(&before);
        assert_eq!(delta.queries, 1);
        assert_eq!(delta.rows_scanned, 50);
    }

    #[test]
    fn reset_zeroes() {
        let c = CostCounters::default();
        c.record(&stats(1, 1, 1));
        c.reset();
        assert_eq!(c.snapshot(), CostSnapshot::default());
    }

    #[test]
    fn registered_counters_share_registry_cells() {
        let registry = Registry::new();
        let c = CostCounters::registered(&registry);
        c.record(&stats(100, 2, 5));
        let snap = registry.snapshot();
        assert_eq!(snap.counters.get("exec.queries"), Some(&1));
        assert_eq!(snap.counters.get("exec.table_scans"), Some(&2));
        assert_eq!(snap.counters.get("exec.rows_scanned"), Some(&100));
        assert_eq!(snap.counters.get("exec.groups_emitted"), Some(&5));
        // Same cells, both directions.
        registry.register_counter("exec.queries").inc();
        assert_eq!(c.snapshot().queries, 2);
    }

    #[test]
    fn concurrent_recording() {
        let c = std::sync::Arc::new(CostCounters::default());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.record(&stats(1, 1, 1));
                    }
                });
            }
        });
        assert_eq!(c.snapshot().queries, 4000);
        assert_eq!(c.snapshot().rows_scanned, 4000);
    }
}
