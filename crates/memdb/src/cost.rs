//! Database-wide cost accounting.
//!
//! Wall-clock time is noisy and machine-dependent; scan and row counters
//! are deterministic. SeeDB's experiments report both, and the *shape* of
//! the paper's optimization claims (e.g. "combining target and comparison
//! halves the work") is asserted in CI using the deterministic counters.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::exec::ExecStats;

/// Monotonic counters accumulated across every query a [`crate::Database`]
/// executes. Thread-safe; updated by parallel executions as well.
#[derive(Debug, Default)]
pub struct CostCounters {
    queries: AtomicU64,
    table_scans: AtomicU64,
    rows_scanned: AtomicU64,
    groups_emitted: AtomicU64,
}

impl CostCounters {
    /// Record one execution.
    pub fn record(&self, stats: &ExecStats) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.table_scans
            .fetch_add(stats.table_scans, Ordering::Relaxed);
        self.rows_scanned
            .fetch_add(stats.rows_scanned, Ordering::Relaxed);
        self.groups_emitted
            .fetch_add(stats.groups_emitted, Ordering::Relaxed);
    }

    /// Snapshot the current totals.
    pub fn snapshot(&self) -> CostSnapshot {
        CostSnapshot {
            queries: self.queries.load(Ordering::Relaxed),
            table_scans: self.table_scans.load(Ordering::Relaxed),
            rows_scanned: self.rows_scanned.load(Ordering::Relaxed),
            groups_emitted: self.groups_emitted.load(Ordering::Relaxed),
        }
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.queries.store(0, Ordering::Relaxed);
        self.table_scans.store(0, Ordering::Relaxed);
        self.rows_scanned.store(0, Ordering::Relaxed);
        self.groups_emitted.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`CostCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostSnapshot {
    /// Queries executed.
    pub queries: u64,
    /// Table scans performed.
    pub table_scans: u64,
    /// Rows scanned.
    pub rows_scanned: u64,
    /// Groups emitted.
    pub groups_emitted: u64,
}

impl CostSnapshot {
    /// Counter deltas between two snapshots (`self` taken after `earlier`).
    pub fn since(&self, earlier: &CostSnapshot) -> CostSnapshot {
        CostSnapshot {
            queries: self.queries - earlier.queries,
            table_scans: self.table_scans - earlier.table_scans,
            rows_scanned: self.rows_scanned - earlier.rows_scanned,
            groups_emitted: self.groups_emitted - earlier.groups_emitted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn stats(rows: u64, scans: u64, groups: u64) -> ExecStats {
        ExecStats {
            rows_scanned: rows,
            table_scans: scans,
            groups_emitted: groups,
            elapsed: Duration::ZERO,
        }
    }

    #[test]
    fn record_and_snapshot() {
        let c = CostCounters::default();
        c.record(&stats(100, 1, 5));
        c.record(&stats(200, 1, 7));
        let s = c.snapshot();
        assert_eq!(s.queries, 2);
        assert_eq!(s.table_scans, 2);
        assert_eq!(s.rows_scanned, 300);
        assert_eq!(s.groups_emitted, 12);
    }

    #[test]
    fn since_computes_delta() {
        let c = CostCounters::default();
        c.record(&stats(100, 1, 5));
        let before = c.snapshot();
        c.record(&stats(50, 1, 2));
        let delta = c.snapshot().since(&before);
        assert_eq!(delta.queries, 1);
        assert_eq!(delta.rows_scanned, 50);
    }

    #[test]
    fn reset_zeroes() {
        let c = CostCounters::default();
        c.record(&stats(1, 1, 1));
        c.reset();
        assert_eq!(c.snapshot(), CostSnapshot::default());
    }

    #[test]
    fn concurrent_recording() {
        let c = std::sync::Arc::new(CostCounters::default());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.record(&stats(1, 1, 1));
                    }
                });
            }
        });
        assert_eq!(c.snapshot().queries, 4000);
        assert_eq!(c.snapshot().rows_scanned, 4000);
    }
}
