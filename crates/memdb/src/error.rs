//! Error types for the memdb engine.

use std::fmt;

/// Errors produced by the memdb engine.
///
/// All fallible public APIs in this crate return [`DbResult`]. Variants are
/// deliberately coarse-grained: callers (SeeDB's backend) typically either
/// surface the message to the analyst or treat any error as "view failed".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// Referenced a table that does not exist in the catalog.
    UnknownTable(String),
    /// Referenced a column that does not exist in the table schema.
    UnknownColumn(String),
    /// An operation was applied to a column of an incompatible type
    /// (e.g. `SUM` over a string column).
    TypeMismatch {
        /// What the operation expected ("numeric", "string", ...).
        expected: String,
        /// What it actually found.
        found: String,
        /// Additional context, usually the column name.
        context: String,
    },
    /// The SQL text could not be tokenized or parsed.
    Parse(String),
    /// A query referenced rows/values inconsistently (internal invariant
    /// violations surface here rather than panicking).
    Internal(String),
    /// Schema violation when building or mutating tables (e.g. appending a
    /// row with the wrong arity).
    Schema(String),
    /// Invalid query construction (e.g. empty grouping set list).
    InvalidQuery(String),
    /// An operating-system I/O failure in the durable store (message
    /// carries the path and the OS error).
    Io(String),
    /// On-disk data failed validation: a checksum mismatch, bad magic,
    /// or a structural inconsistency in a segment file, manifest, or
    /// WAL. Surfaced as a typed error so recovery never serves a
    /// silently wrong answer (and never panics on bad bytes).
    Corrupt(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            DbError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            DbError::TypeMismatch {
                expected,
                found,
                context,
            } => write!(
                f,
                "type mismatch in {context}: expected {expected}, found {found}"
            ),
            DbError::Parse(msg) => write!(f, "SQL parse error: {msg}"),
            DbError::Internal(msg) => write!(f, "internal error: {msg}"),
            DbError::Schema(msg) => write!(f, "schema error: {msg}"),
            DbError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            DbError::Io(msg) => write!(f, "I/O error: {msg}"),
            DbError::Corrupt(msg) => write!(f, "corrupt store: {msg}"),
        }
    }
}

impl std::error::Error for DbError {}

/// Convenience alias used across the crate.
pub type DbResult<T> = Result<T, DbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_unknown_table() {
        let e = DbError::UnknownTable("sales".into());
        assert_eq!(e.to_string(), "unknown table: sales");
    }

    #[test]
    fn display_type_mismatch_mentions_context() {
        let e = DbError::TypeMismatch {
            expected: "numeric".into(),
            found: "string".into(),
            context: "SUM(store)".into(),
        };
        let s = e.to_string();
        assert!(s.contains("SUM(store)"));
        assert!(s.contains("numeric"));
        assert!(s.contains("string"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&DbError::Parse("x".into()));
    }
}
