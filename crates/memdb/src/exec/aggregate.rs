//! Group-by aggregation kernels.
//!
//! The kernels are built around one idea that SeeDB's optimizer exploits:
//! a single scan can serve many logical queries at once. Each
//! [`AggRequest`] may carry its own row predicate (this is how a *target*
//! view — aggregate over the filtered subset — and a *comparison* view —
//! aggregate over everything — share one scan), and
//! [`grouping_sets_scan`] maintains one hash table per grouping set so
//! view queries with different group-by attributes also share the scan.

use std::collections::HashMap;

use crate::column::StrDict;
use crate::error::{DbError, DbResult};
use crate::exec::exactsum::ExactSum;
use crate::expr::BoundExpr;
use crate::table::Table;
use crate::value::{DataType, Value};

/// Aggregate functions supported by the engine (SeeDB's `F`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Row count (`COUNT(*)` when the column is absent, else non-null count).
    Count,
    /// Sum of a numeric column.
    Sum,
    /// Mean of a numeric column.
    Avg,
    /// Minimum of a numeric column.
    Min,
    /// Maximum of a numeric column.
    Max,
}

impl AggFunc {
    /// SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }

    /// All aggregate functions, in a stable order.
    pub fn all() -> [AggFunc; 5] {
        [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
        ]
    }
}

/// One aggregate to compute during a scan.
#[derive(Debug, Clone)]
pub struct AggRequest {
    /// The function.
    pub func: AggFunc,
    /// Input column index; `None` only for `COUNT(*)`.
    pub column: Option<usize>,
    /// Optional per-aggregate row predicate. Rows failing it contribute
    /// nothing to this aggregate (but still contribute to others). This is
    /// the mechanism behind SeeDB's combined target/comparison queries.
    pub predicate: Option<BoundExpr>,
}

/// Mergeable running state for one (group, aggregate) pair.
///
/// This is the unit of SeeDB's partitioned parallel execution: each
/// worker accumulates one `AggState` per (group, aggregate) over its row
/// range, and [`AggState::merge`] combines partitions. Because the sum
/// component is an [`ExactSum`] (order-independent exact summation) and
/// count/min/max are associative, merging per-partition states in any
/// partition shape finalizes to exactly the same [`Value`]s as one
/// sequential scan — the bit-for-bit guarantee behind
/// [`crate::parallel::run_partitioned`].
#[derive(Debug, Clone, Copy)]
pub struct AggState {
    count: u64,
    sum: ExactSum,
    min: f64,
    max: f64,
}

impl Default for AggState {
    fn default() -> Self {
        AggState::EMPTY
    }
}

impl AggState {
    /// The state before any row has contributed.
    pub const EMPTY: AggState = AggState {
        count: 0,
        sum: ExactSum::ZERO,
        min: f64::INFINITY,
        max: f64::NEG_INFINITY,
    };

    /// Fold one value in.
    #[inline]
    pub fn update(&mut self, v: f64) {
        self.count += 1;
        self.sum.add(v);
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Fold one `COUNT(*)`-style contribution in (no value).
    #[inline]
    pub fn count_only(&mut self) {
        self.count += 1;
    }

    /// Combine another partition's state into this one. Uses the same
    /// strict comparisons as [`AggState::update`] so ties (notably
    /// `0.0` vs `-0.0`, which compare equal but differ in bits) keep
    /// the earlier operand — exactly the first-seen value a sequential
    /// scan keeps when partitions merge in ascending row order.
    pub fn merge(&mut self, other: &AggState) {
        self.count += other.count;
        self.sum.merge(&other.sum);
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Rows that contributed (non-null inputs passing the predicate).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The finalized value under `func` (`Null` for empty non-count
    /// states, per SQL semantics).
    pub fn finalize(&self, func: AggFunc) -> Value {
        match func {
            AggFunc::Count => Value::Int(self.count as i64),
            AggFunc::Sum => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum.value())
                }
            }
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum.value() / self.count as f64)
                }
            }
            AggFunc::Min => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.min)
                }
            }
            AggFunc::Max => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.max)
                }
            }
        }
    }
}

/// Output of an aggregation scan for one grouping set: group labels plus
/// one finalized value per aggregate, sorted by group label.
#[derive(Debug, Clone, PartialEq)]
pub struct Grouped {
    /// One label tuple per group (the grouping-attribute values).
    pub keys: Vec<Vec<Value>>,
    /// `values[g][a]` = aggregate `a` for group `g`.
    pub values: Vec<Vec<Value>>,
}

impl Grouped {
    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.keys.len()
    }
}

/// Hashable group key: one part per grouping column.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum KeyPart {
    Null,
    U(u64),
}

#[inline]
fn key_part(table: &Table, col: usize, row: usize) -> KeyPart {
    // Dictionary code / raw bits — stable across appends (segments are
    // shared and the dictionary is append-only), so keys computed
    // against version v compare correctly against keys from any
    // append-descendant version v'.
    match table.column_at(col).key_bits(row) {
        None => KeyPart::Null,
        Some(bits) => KeyPart::U(bits),
    }
}

/// Per-grouping-set accumulator used inside a scan. Also the per-set
/// payload of a partial (unfinalized) execution: two `SetAcc`s built
/// over disjoint row ranges of the same table merge via
/// [`SetAcc::merge`].
#[derive(Debug, Clone)]
pub(crate) struct SetAcc {
    cols: Vec<usize>,
    /// Group key -> dense group index.
    index: HashMap<Vec<KeyPart>, u32>,
    /// Fast path: single dictionary-encoded string column; group index is
    /// `code + 1` (slot 0 is the null group), no hashing at all.
    fast_dict: Option<usize>,
    fast_slots: Vec<u32>, // code+1 -> group idx + 1 (0 = unseen)
    /// Representative row per group (for label materialization).
    rep_rows: Vec<u32>,
    /// `states[g * num_aggs + a]`.
    states: Vec<AggState>,
    num_aggs: usize,
}

impl SetAcc {
    fn new(table: &Table, cols: Vec<usize>, num_aggs: usize) -> Self {
        let fast_dict = if cols.len() == 1 {
            table.column_at(cols[0]).str_dict().map(StrDict::len)
        } else {
            None
        };
        let fast_slots = match fast_dict {
            Some(n) => vec![0u32; n + 1],
            None => Vec::new(),
        };
        SetAcc {
            cols,
            index: HashMap::new(),
            fast_dict: fast_dict.map(|_| 0),
            fast_slots,
            rep_rows: Vec::new(),
            states: Vec::new(),
            num_aggs,
        }
    }

    #[inline]
    fn group_index(&mut self, table: &Table, row: usize) -> usize {
        if self.fast_dict.is_some() {
            let col = self.cols[0];
            // Slot 0 is the null group; code `c` maps to slot `c + 1`.
            let slot = match table.column_at(col).code_at(row) {
                None => 0,
                Some(code) => code as usize + 1,
            };
            if slot >= self.fast_slots.len() {
                // Merging state built against an append-descendant
                // version whose dictionary grew past this accumulator's
                // sizing: grow the slot table on demand.
                self.fast_slots.resize(slot + 1, 0);
            }
            let entry = self.fast_slots[slot];
            if entry != 0 {
                return (entry - 1) as usize;
            }
            let g = self.rep_rows.len();
            self.fast_slots[slot] = g as u32 + 1;
            self.rep_rows.push(row as u32);
            self.states
                .extend(std::iter::repeat_n(AggState::EMPTY, self.num_aggs));
            return g;
        }
        let key: Vec<KeyPart> = self.cols.iter().map(|&c| key_part(table, c, row)).collect();
        if let Some(&g) = self.index.get(&key) {
            return g as usize;
        }
        let g = self.rep_rows.len();
        self.index.insert(key, g as u32);
        self.rep_rows.push(row as u32);
        self.states
            .extend(std::iter::repeat_n(AggState::EMPTY, self.num_aggs));
        g
    }

    /// Number of groups discovered so far.
    pub(crate) fn num_groups(&self) -> usize {
        self.rep_rows.len()
    }

    /// Grouping-attribute values of group `g` (materialized from its
    /// representative row).
    pub(crate) fn group_label(&self, g: usize, table: &Table) -> Vec<Value> {
        self.cols
            .iter()
            .map(|&c| table.column_at(c).get(self.rep_rows[g] as usize))
            .collect()
    }

    /// Per-aggregate states of group `g`, in aggregate order.
    pub(crate) fn group_states(&self, g: usize) -> &[AggState] {
        &self.states[g * self.num_aggs..(g + 1) * self.num_aggs]
    }

    /// Fold `other` (built over a different row range of the same
    /// `table`) into this accumulator. Groups are matched by key; keys
    /// are reconstructed from each group's representative row, so no
    /// extra per-group storage is needed. Iterating `other`'s groups in
    /// dense (first-seen) order keeps the merged group-creation order
    /// identical to a sequential scan when partitions are merged in
    /// ascending row order.
    fn merge(&mut self, other: &SetAcc, table: &Table) {
        debug_assert_eq!(self.cols, other.cols);
        debug_assert_eq!(self.num_aggs, other.num_aggs);
        for g in 0..other.rep_rows.len() {
            let row = other.rep_rows[g] as usize;
            let sg = self.group_index(table, row);
            let (dst, src) = (sg * self.num_aggs, g * self.num_aggs);
            for a in 0..self.num_aggs {
                self.states[dst + a].merge(&other.states[src + a]);
            }
            // Keep the earliest representative row (what a sequential
            // scan would have seen first).
            if row < self.rep_rows[sg] as usize {
                self.rep_rows[sg] = row as u32;
            }
        }
    }

    /// A copy of this accumulator keeping only the aggregates at
    /// `agg_indices` (in the given order). Group structure — keys,
    /// discovery order, representative rows — is aggregate-independent,
    /// so the projection is exactly the accumulator a scan computing
    /// only those aggregates over the same row domain would have built.
    pub(crate) fn project_aggs(&self, agg_indices: &[usize]) -> SetAcc {
        let mut states = Vec::with_capacity(self.rep_rows.len() * agg_indices.len());
        for g in 0..self.rep_rows.len() {
            let base = g * self.num_aggs;
            for &a in agg_indices {
                states.push(self.states[base + a]);
            }
        }
        SetAcc {
            cols: self.cols.clone(),
            index: self.index.clone(),
            fast_dict: self.fast_dict,
            fast_slots: self.fast_slots.clone(),
            rep_rows: self.rep_rows.clone(),
            states,
            num_aggs: agg_indices.len(),
        }
    }

    fn into_grouped(self, table: &Table, aggs: &[AggRequest]) -> Grouped {
        let mut order: Vec<usize> = (0..self.rep_rows.len()).collect();
        // Deterministic output: sort groups by label tuple.
        let labels: Vec<Vec<Value>> = self
            .rep_rows
            .iter()
            .map(|&r| {
                self.cols
                    .iter()
                    .map(|&c| table.column_at(c).get(r as usize))
                    .collect()
            })
            .collect();
        order.sort_by(|&a, &b| cmp_label_tuple(&labels[a], &labels[b]));
        let mut keys = Vec::with_capacity(order.len());
        let mut values = Vec::with_capacity(order.len());
        for &g in &order {
            keys.push(labels[g].clone());
            let base = g * self.num_aggs;
            values.push(
                aggs.iter()
                    .enumerate()
                    .map(|(a, req)| self.states[base + a].finalize(req.func))
                    .collect(),
            );
        }
        Grouped { keys, values }
    }
}

/// Total order over label tuples: NULL first, then by SQL comparison,
/// falling back to rendered text for cross-type labels.
pub(crate) fn cmp_label_tuple(a: &[Value], b: &[Value]) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    for (x, y) in a.iter().zip(b.iter()) {
        let ord = match (x.is_null(), y.is_null()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            (false, false) => x.sql_cmp(y).unwrap_or_else(|| x.render().cmp(&y.render())),
        };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    a.len().cmp(&b.len())
}

fn check_agg_types(table: &Table, aggs: &[AggRequest]) -> DbResult<()> {
    for req in aggs {
        match (req.func, req.column) {
            (AggFunc::Count, _) => {}
            (f, None) => {
                return Err(DbError::InvalidQuery(format!(
                    "{} requires a column argument",
                    f.sql()
                )))
            }
            (f, Some(c)) => {
                let dt = table.schema().column_at(c).dtype;
                if !dt.is_numeric() {
                    return Err(DbError::TypeMismatch {
                        expected: "numeric".to_string(),
                        found: dt.name().to_string(),
                        context: format!("{}({})", f.sql(), table.schema().column_at(c).name),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Scan `rows` of `table` once, computing every grouping set in `sets`
/// with every aggregate in `aggs`.
///
/// Returns one [`Grouped`] per grouping set, in input order. `rows` is the
/// scan domain (e.g. all rows, or a sample); per-aggregate predicates
/// further restrict which rows feed each aggregate.
///
/// # Errors
/// Type errors for non-numeric aggregate inputs, `InvalidQuery` for empty
/// `sets`/missing aggregate columns.
pub fn grouping_sets_scan(
    table: &Table,
    rows: &[u32],
    sets: &[Vec<usize>],
    aggs: &[AggRequest],
) -> DbResult<Vec<Grouped>> {
    let accs = grouping_sets_scan_partial(table, rows, sets, aggs)?;
    Ok(finalize_accs(accs, table, aggs))
}

/// The partial (unfinalized) form of [`grouping_sets_scan`]: one
/// mergeable [`SetAcc`] per grouping set. Partitioned execution runs
/// this per row range, merges the accumulators, and finalizes once.
pub(crate) fn grouping_sets_scan_partial(
    table: &Table,
    rows: &[u32],
    sets: &[Vec<usize>],
    aggs: &[AggRequest],
) -> DbResult<Vec<SetAcc>> {
    if sets.is_empty() {
        return Err(DbError::InvalidQuery("no grouping sets".to_string()));
    }
    if aggs.is_empty() {
        return Err(DbError::InvalidQuery("no aggregates".to_string()));
    }
    check_agg_types(table, aggs)?;

    let mut accs: Vec<SetAcc> = sets
        .iter()
        .map(|cols| SetAcc::new(table, cols.clone(), aggs.len()))
        .collect();

    // Pre-evaluate per-aggregate predicates row-by-row inside the scan.
    for &r in rows {
        let row = r as usize;
        // Evaluate each aggregate's input once per row, shared across sets.
        // inputs[a] = Some(contribution) if the row feeds aggregate a.
        let mut inputs: Vec<Option<Option<f64>>> = Vec::with_capacity(aggs.len());
        for req in aggs {
            let passes = match &req.predicate {
                None => true,
                Some(p) => p.eval_bool(table, row) == Some(true),
            };
            if !passes {
                inputs.push(None);
                continue;
            }
            match req.column {
                None => inputs.push(Some(None)), // COUNT(*)
                Some(c) => {
                    let col = table.column_at(c);
                    match col.f64_at(row) {
                        Some(v) => inputs.push(Some(Some(v))),
                        // NULL input: does not feed the aggregate at all
                        // (SQL semantics: COUNT(col) skips nulls too).
                        None => inputs.push(None),
                    }
                }
            }
        }
        for acc in &mut accs {
            let g = acc.group_index(table, row);
            let base = g * aggs.len();
            for (a, input) in inputs.iter().enumerate() {
                match input {
                    None => {}
                    Some(None) => acc.states[base + a].count_only(),
                    Some(Some(v)) => acc.states[base + a].update(*v),
                }
            }
        }
    }

    Ok(accs)
}

/// Finalize per-set accumulators into sorted [`Grouped`] outputs.
pub(crate) fn finalize_accs(accs: Vec<SetAcc>, table: &Table, aggs: &[AggRequest]) -> Vec<Grouped> {
    accs.into_iter()
        .map(|acc| acc.into_grouped(table, aggs))
        .collect()
}

/// Merge per-set accumulators from two partitions (pairwise, in set
/// order). Both must come from the same table, sets, and aggregates.
pub(crate) fn merge_accs(into: &mut [SetAcc], from: &[SetAcc], table: &Table) {
    debug_assert_eq!(into.len(), from.len());
    for (a, b) in into.iter_mut().zip(from) {
        a.merge(b, table);
    }
}

/// Single-grouping-set convenience wrapper over [`grouping_sets_scan`].
///
/// # Errors
/// Same as [`grouping_sets_scan`].
pub fn aggregate_scan(
    table: &Table,
    rows: &[u32],
    group_cols: &[usize],
    aggs: &[AggRequest],
) -> DbResult<Grouped> {
    let mut out = grouping_sets_scan(table, rows, &[group_cols.to_vec()], aggs)?;
    Ok(out.pop().expect("one grouping set in, one result out"))
}

/// Data type of an aggregate's output.
pub fn agg_output_type(func: AggFunc) -> DataType {
    match func {
        AggFunc::Count => DataType::Int64,
        _ => DataType::Float64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::schema::{ColumnDef, Schema};
    use crate::value::DataType;

    fn sales() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::dimension("store", DataType::Str),
            ColumnDef::dimension("product", DataType::Str),
            ColumnDef::measure("amount", DataType::Float64),
            ColumnDef::measure("qty", DataType::Int64),
        ])
        .unwrap();
        let mut t = Table::new("sales", schema);
        let rows = [
            ("MA", "Laserwave", 10.0, 1),
            ("MA", "Saberwave", 20.0, 2),
            ("WA", "Laserwave", 30.0, 3),
            ("WA", "Laserwave", 40.0, 4),
            ("NY", "Saberwave", 50.0, 5),
        ];
        for (s, p, a, q) in rows {
            t.push_row(vec![s.into(), p.into(), a.into(), Value::Int(q)])
                .unwrap();
        }
        t
    }

    fn all_rows(t: &Table) -> Vec<u32> {
        (0..t.num_rows() as u32).collect()
    }

    #[test]
    fn sum_by_store() {
        let t = sales();
        let aggs = [AggRequest {
            func: AggFunc::Sum,
            column: Some(2),
            predicate: None,
        }];
        let g = aggregate_scan(&t, &all_rows(&t), &[0], &aggs).unwrap();
        assert_eq!(
            g.keys,
            vec![
                vec![Value::from("MA")],
                vec![Value::from("NY")],
                vec![Value::from("WA")],
            ]
        );
        assert_eq!(
            g.values,
            vec![
                vec![Value::Float(30.0)],
                vec![Value::Float(50.0)],
                vec![Value::Float(70.0)],
            ]
        );
    }

    #[test]
    fn count_star_and_count_col() {
        let t = sales();
        let aggs = [
            AggRequest {
                func: AggFunc::Count,
                column: None,
                predicate: None,
            },
            AggRequest {
                func: AggFunc::Count,
                column: Some(2),
                predicate: None,
            },
        ];
        let g = aggregate_scan(&t, &all_rows(&t), &[1], &aggs).unwrap();
        // Laserwave: 3 rows, Saberwave: 2 rows.
        assert_eq!(g.values[0], vec![Value::Int(3), Value::Int(3)]);
        assert_eq!(g.values[1], vec![Value::Int(2), Value::Int(2)]);
    }

    #[test]
    fn avg_min_max() {
        let t = sales();
        let aggs: Vec<AggRequest> = [AggFunc::Avg, AggFunc::Min, AggFunc::Max]
            .iter()
            .map(|&f| AggRequest {
                func: f,
                column: Some(2),
                predicate: None,
            })
            .collect();
        let g = aggregate_scan(&t, &all_rows(&t), &[1], &aggs).unwrap();
        // Laserwave amounts: 10, 30, 40.
        assert_eq!(
            g.values[0],
            vec![
                Value::Float(80.0 / 3.0),
                Value::Float(10.0),
                Value::Float(40.0)
            ]
        );
    }

    #[test]
    fn predicate_splits_target_and_comparison() {
        let t = sales();
        let filter = Expr::col("product")
            .eq("Laserwave")
            .bind(t.schema())
            .unwrap();
        let aggs = [
            // target: SUM(amount) over Laserwave rows only
            AggRequest {
                func: AggFunc::Sum,
                column: Some(2),
                predicate: Some(filter),
            },
            // comparison: SUM(amount) over all rows
            AggRequest {
                func: AggFunc::Sum,
                column: Some(2),
                predicate: None,
            },
        ];
        let g = aggregate_scan(&t, &all_rows(&t), &[0], &aggs).unwrap();
        // MA: target 10 (one Laserwave row), comparison 30.
        assert_eq!(g.values[0], vec![Value::Float(10.0), Value::Float(30.0)]);
        // NY: no Laserwave rows -> NULL target, comparison 50.
        assert_eq!(g.values[1], vec![Value::Null, Value::Float(50.0)]);
        // WA: target 70, comparison 70.
        assert_eq!(g.values[2], vec![Value::Float(70.0), Value::Float(70.0)]);
    }

    #[test]
    fn multiple_grouping_sets_one_scan() {
        let t = sales();
        let aggs = [AggRequest {
            func: AggFunc::Sum,
            column: Some(2),
            predicate: None,
        }];
        let out = grouping_sets_scan(&t, &all_rows(&t), &[vec![0], vec![1]], &aggs).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].num_groups(), 3); // stores
        assert_eq!(out[1].num_groups(), 2); // products
        assert_eq!(out[1].values[0], vec![Value::Float(80.0)]); // Laserwave
    }

    #[test]
    fn multi_column_grouping() {
        let t = sales();
        let aggs = [AggRequest {
            func: AggFunc::Count,
            column: None,
            predicate: None,
        }];
        let g = aggregate_scan(&t, &all_rows(&t), &[0, 1], &aggs).unwrap();
        assert_eq!(g.num_groups(), 4); // (MA,L), (MA,S), (NY,S), (WA,L)
        assert_eq!(g.keys[0], vec![Value::from("MA"), Value::from("Laserwave")]);
    }

    #[test]
    fn restricted_row_domain() {
        let t = sales();
        let aggs = [AggRequest {
            func: AggFunc::Sum,
            column: Some(2),
            predicate: None,
        }];
        // Only rows 0 and 4.
        let g = aggregate_scan(&t, &[0, 4], &[0], &aggs).unwrap();
        assert_eq!(g.num_groups(), 2);
        assert_eq!(g.keys[0], vec![Value::from("MA")]);
        assert_eq!(g.values[0], vec![Value::Float(10.0)]);
    }

    #[test]
    fn nulls_form_their_own_group_and_sort_first() {
        let schema = Schema::new(vec![
            ColumnDef::dimension("d", DataType::Str),
            ColumnDef::measure("m", DataType::Float64),
        ])
        .unwrap();
        let mut t = Table::new("t", schema);
        t.push_row(vec![Value::Null, 1.0.into()]).unwrap();
        t.push_row(vec!["a".into(), 2.0.into()]).unwrap();
        t.push_row(vec![Value::Null, 3.0.into()]).unwrap();
        let aggs = [AggRequest {
            func: AggFunc::Sum,
            column: Some(1),
            predicate: None,
        }];
        let g = aggregate_scan(&t, &all_rows(&t), &[0], &aggs).unwrap();
        assert_eq!(g.num_groups(), 2);
        assert_eq!(g.keys[0], vec![Value::Null]);
        assert_eq!(g.values[0], vec![Value::Float(4.0)]);
    }

    #[test]
    fn null_measures_skipped_by_aggregates() {
        let schema = Schema::new(vec![
            ColumnDef::dimension("d", DataType::Str),
            ColumnDef::measure("m", DataType::Float64),
        ])
        .unwrap();
        let mut t = Table::new("t", schema);
        t.push_row(vec!["a".into(), 2.0.into()]).unwrap();
        t.push_row(vec!["a".into(), Value::Null]).unwrap();
        let aggs = [
            AggRequest {
                func: AggFunc::Count,
                column: Some(1),
                predicate: None,
            },
            AggRequest {
                func: AggFunc::Count,
                column: None,
                predicate: None,
            },
            AggRequest {
                func: AggFunc::Avg,
                column: Some(1),
                predicate: None,
            },
        ];
        let g = aggregate_scan(&t, &all_rows(&t), &[0], &aggs).unwrap();
        assert_eq!(
            g.values[0],
            vec![Value::Int(1), Value::Int(2), Value::Float(2.0)]
        );
    }

    #[test]
    fn sum_over_string_rejected() {
        let t = sales();
        let aggs = [AggRequest {
            func: AggFunc::Sum,
            column: Some(0),
            predicate: None,
        }];
        assert!(aggregate_scan(&t, &all_rows(&t), &[1], &aggs).is_err());
    }

    #[test]
    fn empty_sets_rejected() {
        let t = sales();
        let aggs = [AggRequest {
            func: AggFunc::Count,
            column: None,
            predicate: None,
        }];
        assert!(grouping_sets_scan(&t, &all_rows(&t), &[], &aggs).is_err());
        assert!(grouping_sets_scan(&t, &all_rows(&t), &[vec![0]], &[]).is_err());
    }

    #[test]
    fn empty_group_by_is_global_aggregate() {
        let t = sales();
        let aggs = [AggRequest {
            func: AggFunc::Sum,
            column: Some(2),
            predicate: None,
        }];
        let g = aggregate_scan(&t, &all_rows(&t), &[], &aggs).unwrap();
        assert_eq!(g.num_groups(), 1);
        assert_eq!(g.keys[0], Vec::<Value>::new());
        assert_eq!(g.values[0], vec![Value::Float(150.0)]);
    }

    #[test]
    fn group_by_int_column() {
        let t = sales();
        let aggs = [AggRequest {
            func: AggFunc::Count,
            column: None,
            predicate: None,
        }];
        let g = aggregate_scan(&t, &all_rows(&t), &[3], &aggs).unwrap();
        assert_eq!(g.num_groups(), 5);
        assert_eq!(g.keys[0], vec![Value::Int(1)]);
    }
}
