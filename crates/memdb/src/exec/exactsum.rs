//! Exact, order-independent `f64` summation.
//!
//! Partitioned execution (see [`crate::parallel::run_partitioned`])
//! promises results **byte-identical** to a single-threaded scan, but
//! float addition is not associative: folding per-partition subtotals
//! re-associates the sum and perturbs the last bits. [`ExactSum`] makes
//! SUM/AVG mergeable anyway by never rounding during accumulation.
//!
//! Every finite double is an integer multiple of 2⁻¹⁰⁷⁴ spanning at
//! most 2098 bits, so the running sum is kept as a wide fixed-point
//! integer in 32-bit limbs (stored in `i64` lanes, leaving 31 bits of
//! headroom so carries only need propagating every ~2³⁰ additions).
//! Integer addition is associative and commutative, so accumulating
//! row-by-row, phase-by-phase, or merging per-partition states in any
//! order all represent the *same* exact value; [`ExactSum::value`]
//! rounds it to the nearest double (ties-to-even) exactly once. Non-
//! finite inputs are rare enough to escape the fixed-point path: they
//! are folded into a separate IEEE accumulator that dominates the
//! result, matching a naive fold's inf/NaN propagation.

/// Number of 32-bit limbs: 2098 bits of double range rounded up, plus
/// two limbs of headroom for intermediate magnitudes beyond `f64::MAX`
/// (a sum may overflow the double range and must round to infinity).
const LIMBS: usize = 68;

/// Propagate carries once this many raw additions have accumulated in
/// the limbs; keeps every `i64` lane below 2⁶² (each addition deposits
/// less than 2³² per lane).
const RENORM_EVERY: u32 = 1 << 29;

const LIMB_MASK: i64 = 0xFFFF_FFFF;

/// An exact `f64` summation state: add in any order, merge partials in
/// any order, and [`value`](ExactSum::value) always returns the same
/// correctly rounded double.
#[derive(Debug, Clone, Copy)]
pub struct ExactSum {
    limbs: [i64; LIMBS],
    /// Additions since the last carry propagation.
    pending: u32,
    /// Naive fold of non-finite addends (`±inf`, NaN); dominates the
    /// rounded value when present.
    specials: f64,
    has_specials: bool,
}

impl Default for ExactSum {
    fn default() -> Self {
        ExactSum::ZERO
    }
}

impl ExactSum {
    /// The empty sum.
    pub const ZERO: ExactSum = ExactSum {
        limbs: [0; LIMBS],
        pending: 0,
        specials: 0.0,
        has_specials: false,
    };

    /// Add one value to the sum.
    #[inline]
    pub fn add(&mut self, v: f64) {
        if !v.is_finite() {
            self.specials += v;
            self.has_specials = true;
            return;
        }
        if v == 0.0 {
            return;
        }
        let bits = v.to_bits();
        let sign: i64 = if bits >> 63 == 1 { -1 } else { 1 };
        let exp = ((bits >> 52) & 0x7FF) as usize;
        let frac = bits & ((1u64 << 52) - 1);
        // value = sign · m · 2^(e − 1074), bit offset e from the bottom
        // of the accumulator (e = 0 for subnormals).
        let (m, e) = if exp == 0 {
            (frac, 0)
        } else {
            (frac | (1u64 << 52), exp - 1)
        };
        let limb = e / 32;
        let shift = (e % 32) as u32;
        let wide = (m as u128) << shift; // ≤ 84 bits → 3 limbs
        self.limbs[limb] += sign * ((wide & LIMB_MASK as u128) as i64);
        self.limbs[limb + 1] += sign * (((wide >> 32) & LIMB_MASK as u128) as i64);
        self.limbs[limb + 2] += sign * (((wide >> 64) & LIMB_MASK as u128) as i64);
        self.pending += 1;
        if self.pending >= RENORM_EVERY {
            self.propagate();
        }
    }

    /// Fold another sum into this one. Exact: merging partitions in any
    /// order yields the same rounded value as one sequential pass.
    pub fn merge(&mut self, other: &ExactSum) {
        // Propagate first so both operands' lanes fit in 33 bits and
        // the pairwise addition cannot overflow.
        self.propagate();
        let mut theirs = *other;
        theirs.propagate();
        for (a, b) in self.limbs.iter_mut().zip(theirs.limbs) {
            *a += b;
        }
        if other.has_specials {
            self.specials += other.specials;
            self.has_specials = true;
        }
    }

    /// Reduce every lane to its low 32 bits, pushing carries upward.
    /// Representation-only: the value is unchanged. The top lane keeps
    /// the full (sign-extended) carry.
    fn propagate(&mut self) {
        self.pending = 0;
        let mut carry: i64 = 0;
        for (i, l) in self.limbs.iter_mut().enumerate() {
            let t = *l + carry;
            if i == LIMBS - 1 {
                *l = t;
            } else {
                *l = t & LIMB_MASK;
                carry = t >> 32; // arithmetic: keeps the sign
            }
        }
    }

    /// The sum, rounded once to the nearest double (ties to even).
    pub fn value(&self) -> f64 {
        if self.has_specials {
            // Inf/NaN dominate any finite contribution, as in a naive
            // fold (inf + finite = inf, inf + -inf = NaN, NaN sticks).
            return self.specials;
        }
        let mut s = *self;
        s.propagate();
        // Extract the sign, reducing to a non-negative magnitude.
        let negative = s.limbs[LIMBS - 1] < 0;
        if negative {
            let mut carry: i64 = 1;
            for (i, l) in s.limbs.iter_mut().enumerate() {
                let t = ((!*l) & LIMB_MASK) + carry;
                if i == LIMBS - 1 {
                    *l = t;
                } else {
                    *l = t & LIMB_MASK;
                    carry = t >> 32;
                }
            }
            s.limbs[LIMBS - 1] &= LIMB_MASK;
        }
        let sign = if negative { -1.0 } else { 1.0 };

        // Highest set bit (offset from the 2⁻¹⁰⁷⁴ bottom).
        let Some(hi) = s.limbs.iter().rposition(|&l| l != 0) else {
            return 0.0;
        };
        let top = 32 * hi + (63 - (s.limbs[hi] as u64).leading_zeros() as usize);

        if top <= 52 {
            // At most 53 bits above the bottom: exactly representable
            // (subnormal or smallest normals) — no rounding.
            let m = (s.limbs[1] as u64) << 32 | s.limbs[0] as u64;
            return sign * (m as f64) * f64::from_bits(1); // m · 2⁻¹⁰⁷⁴
        }

        // 53-bit mantissa from bits [top−52, top], then round to
        // nearest, ties to even, on the guard/sticky bits below.
        let mut mantissa = bit_range_53(&s.limbs, top - 52);
        let guard = bit_at(&s.limbs, top - 53);
        let sticky = any_bit_below(&s.limbs, top - 53);
        let mut top = top;
        if guard && (sticky || mantissa & 1 == 1) {
            mantissa += 1;
            if mantissa == 1 << 53 {
                mantissa >>= 1;
                top += 1;
            }
        }
        // value = mantissa · 2^(top − 52 − 1074), with mantissa in
        // [2^52, 2^53) — a normal double whenever it is in range.
        let scale_exp = top as i64 - 52 - 1074;
        if scale_exp > 1023 - 52 {
            return sign * f64::INFINITY;
        }
        let m = mantissa as f64; // < 2^53: exact
        let v = if scale_exp >= -1022 {
            // 2^scale_exp is itself a normal double; one exact multiply.
            m * f64::from_bits(((scale_exp + 1023) as u64) << 52)
        } else {
            // scale_exp ∈ [−1073, −1023]: the *result* is still normal
            // (≥ 2^(top−1074) ≥ 2^−1021) but the scale alone would be
            // subnormal, so split into two exact multiplications by
            // normal powers of two.
            let rest = scale_exp + 1022; // ∈ [−51, −1]
            m * f64::from_bits(((rest + 1023) as u64) << 52) * f64::from_bits(1u64 << 52)
        };
        sign * v
    }

    /// Whether nothing has been added (merge of empties included).
    pub fn is_zero(&self) -> bool {
        !self.has_specials && self.limbs.iter().all(|&l| l == 0)
    }
}

/// The 53 bits starting at offset `lo` (inclusive), from propagated
/// non-negative limbs.
fn bit_range_53(limbs: &[i64; LIMBS], lo: usize) -> u64 {
    let limb = lo / 32;
    let shift = (lo % 32) as u32;
    let mut wide: u128 = 0;
    for i in (0..3).rev() {
        wide = (wide << 32) | limbs[(limb + i).min(LIMBS - 1)] as u128;
    }
    ((wide >> shift) & ((1u128 << 53) - 1)) as u64
}

fn bit_at(limbs: &[i64; LIMBS], pos: usize) -> bool {
    (limbs[pos / 32] >> (pos % 32)) & 1 == 1
}

fn any_bit_below(limbs: &[i64; LIMBS], pos: usize) -> bool {
    let limb = pos / 32;
    let shift = (pos % 32) as u32;
    if limbs[limb] & ((1i64 << shift) - 1) != 0 {
        return true;
    }
    limbs[..limb].iter().any(|&l| l != 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact(values: &[f64]) -> f64 {
        let mut s = ExactSum::ZERO;
        for &v in values {
            s.add(v);
        }
        s.value()
    }

    #[test]
    fn simple_sums_match_naive() {
        assert_eq!(exact(&[]), 0.0);
        assert_eq!(exact(&[1.0]), 1.0);
        assert_eq!(exact(&[1.5, 2.25, -0.75]), 3.0);
        assert_eq!(exact(&[10.0, 20.0, 30.0, 40.0]), 100.0);
        assert_eq!(exact(&[-1.0, 1.0]), 0.0);
    }

    #[test]
    fn catastrophic_cancellation_is_exact() {
        // Naive left-to-right loses the small term entirely.
        assert_eq!(exact(&[1e100, 1.0, -1e100]), 1.0);
        assert_eq!(exact(&[1e16, 1.0, -1e16, 1.0]), 2.0);
    }

    #[test]
    fn subnormals_and_extremes() {
        let tiny = f64::from_bits(1); // 2⁻¹⁰⁷⁴
        assert_eq!(exact(&[tiny]), tiny);
        assert_eq!(exact(&[tiny, tiny]), 2.0 * tiny);
        assert_eq!(exact(&[tiny, -tiny]), 0.0);
        assert_eq!(exact(&[f64::MAX]), f64::MAX);
        assert_eq!(exact(&[f64::MIN_POSITIVE, -f64::MIN_POSITIVE]), 0.0);
        // Sum beyond the double range rounds to infinity.
        assert_eq!(exact(&[f64::MAX, f64::MAX]), f64::INFINITY);
        assert_eq!(exact(&[-f64::MAX, -f64::MAX]), f64::NEG_INFINITY);
        // ... unless it cancels back into range.
        assert_eq!(exact(&[f64::MAX, f64::MAX, -f64::MAX]), f64::MAX);
    }

    /// Regression: results with magnitude in [2⁻¹⁰²¹, ~2⁻⁹⁷¹) go
    /// through the rounding path with a scale exponent below −1022;
    /// the old single `from_bits` scale wrapped and produced garbage.
    #[test]
    fn tiny_normal_results_round_trip() {
        for e in [-1021i32, -1020, -1000, -980, -972] {
            let v = 2f64.powi(e) * 1.5;
            assert_eq!(exact(&[v]).to_bits(), v.to_bits(), "2^{e} · 1.5");
            assert_eq!(exact(&[-v]).to_bits(), (-v).to_bits());
        }
        // A 53-bit window that straddles the small-normal boundary:
        // 2⁻¹⁰²⁰ + 2⁻¹⁰⁷⁰ is exactly representable (50-bit gap).
        let v = 2f64.powi(-1020) + 2f64.powi(-1070);
        assert_eq!(
            exact(&[2f64.powi(-1020), 2f64.powi(-1070)]).to_bits(),
            v.to_bits()
        );
        // And one that genuinely rounds there: 2⁻¹⁰²⁰ + 2⁻¹⁰⁷⁴ has a
        // 54-bit gap, so the tiny addend is rounding noise.
        let tiny = f64::from_bits(1);
        assert_eq!(
            exact(&[2f64.powi(-1020), tiny]).to_bits(),
            2f64.powi(-1020).to_bits()
        );
    }

    /// Every representable magnitude round-trips through a single add:
    /// sweep the full exponent range including subnormals and odd
    /// mantissas.
    #[test]
    fn single_value_round_trips_across_all_exponents() {
        let mut state = 0x9E3779B97F4A7C15u64;
        for exp_field in 0..2047u64 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let mantissa = state & ((1u64 << 52) - 1);
            for &m in &[0u64, 1, mantissa, (1 << 52) - 1] {
                let bits = (exp_field << 52) | m;
                let v = f64::from_bits(bits);
                if v == 0.0 {
                    continue;
                }
                assert_eq!(exact(&[v]).to_bits(), v.to_bits(), "bits {bits:#x}");
                assert_eq!(exact(&[-v]).to_bits(), (-v).to_bits(), "-bits {bits:#x}");
            }
        }
    }

    #[test]
    fn specials_dominate() {
        assert_eq!(exact(&[1.0, f64::INFINITY]), f64::INFINITY);
        assert_eq!(exact(&[f64::NEG_INFINITY, 5.0]), f64::NEG_INFINITY);
        assert!(exact(&[f64::INFINITY, f64::NEG_INFINITY]).is_nan());
        assert!(exact(&[f64::NAN, 1.0]).is_nan());
    }

    #[test]
    fn negative_zero_sums_to_positive_zero() {
        // IEEE round-to-nearest: (+0) + (−0) = +0, as a naive fold
        // seeded with +0 would produce.
        let v = exact(&[-0.0, -0.0]);
        assert_eq!(v, 0.0);
        assert_eq!(v.to_bits(), 0.0f64.to_bits());
    }

    /// Deterministic pseudo-random doubles across many magnitudes.
    fn mixed_values(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let mag = ((state >> 60) as i32) - 8; // 2^(-8·3) .. 2^(7·3)
                let frac = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                frac * (2f64).powi(mag * 3)
            })
            .collect()
    }

    #[test]
    fn order_independent_and_merge_equals_sequential() {
        for seed in [3u64, 17, 99, 1234] {
            let vals = mixed_values(500, seed);
            let forward = exact(&vals);
            let mut rev = vals.clone();
            rev.reverse();
            assert_eq!(forward.to_bits(), exact(&rev).to_bits());

            // Any partitioning, merged in any order, is identical.
            for cut in [1usize, 7, 250, 499] {
                let mut a = ExactSum::ZERO;
                let mut b = ExactSum::ZERO;
                for &v in &vals[..cut] {
                    a.add(v);
                }
                for &v in &vals[cut..] {
                    b.add(v);
                }
                let mut ab = a;
                ab.merge(&b);
                let mut ba = b;
                ba.merge(&a);
                assert_eq!(forward.to_bits(), ab.value().to_bits());
                assert_eq!(forward.to_bits(), ba.value().to_bits());
            }
        }
    }

    #[test]
    fn matches_i128_reference_on_same_scale_values() {
        // Values that are exact multiples of 2⁻²⁰: compare against an
        // exact integer reference.
        let mut state = 5u64;
        let vals: Vec<f64> = (0..2000)
            .map(|_| {
                state = state
                    .wrapping_mul(2862933555777941757)
                    .wrapping_add(3037000493);
                ((state >> 30) as i64 - (1 << 33)) as f64 / (1 << 20) as f64
            })
            .collect();
        let reference: i128 = vals.iter().map(|&v| (v * (1 << 20) as f64) as i128).sum();
        assert_eq!(exact(&vals), reference as f64 / (1 << 20) as f64);
    }

    #[test]
    fn rounding_is_to_nearest_even() {
        // 2⁵³ + 1 is not representable; the sum must round to 2⁵³
        // (even), not 2⁵³ + 2.
        let big = (1u64 << 53) as f64;
        assert_eq!(exact(&[big, 1.0]), big);
        // 2⁵³ + 2 is representable.
        assert_eq!(exact(&[big, 2.0]), big + 2.0);
        // 2⁵³ + 1 + 1 = 2⁵³ + 2 exactly (a naive fold gets 2⁵³!).
        assert_eq!(exact(&[big, 1.0, 1.0]), big + 2.0);
        // Guard set, sticky set: rounds up past the tie.
        let tiny = f64::from_bits(1);
        assert_eq!(exact(&[big, 1.0, tiny]), big + 2.0);
    }

    #[test]
    fn many_additions_renormalize_safely() {
        let mut s = ExactSum::ZERO;
        let n = (RENORM_EVERY as usize) + 1000;
        for _ in 0..n {
            s.add(1.0);
        }
        assert_eq!(s.value(), n as f64);
        assert!(!s.is_zero());
    }
}
