//! Query representation and execution.
//!
//! A [`Query`] is a single `SELECT ... FROM t [WHERE ...] [GROUP BY ...]`
//! over one table; a [`SetsQuery`] is the shared-scan variant that
//! evaluates several grouping sets in one pass (SeeDB's "combine multiple
//! group-bys" rewrite). Execution returns a [`ResultSet`] plus
//! [`ExecStats`] for cost accounting.

pub mod aggregate;
pub mod exactsum;

use std::time::{Duration, Instant};

pub use aggregate::{agg_output_type, AggFunc, AggRequest, AggState, Grouped};
pub use exactsum::ExactSum;

use crate::error::{DbError, DbResult};
use crate::expr::Expr;
use crate::sample::{sample_rows, SampleSpec};
use crate::table::Table;
use crate::value::Value;

/// One aggregate in a query's SELECT list.
#[derive(Debug, Clone)]
pub struct AggSpec {
    /// Aggregate function.
    pub func: AggFunc,
    /// Input column name; `None` only for `COUNT(*)`.
    pub column: Option<String>,
    /// Optional per-aggregate predicate (rows failing it do not feed this
    /// aggregate). This is how a combined target/comparison query is
    /// expressed: the target aggregate carries the analyst's filter, the
    /// comparison aggregate carries none.
    pub filter: Option<Expr>,
    /// Output column name; defaults to `FUNC(col)` (with a `_target`
    /// suffix convention applied by SeeDB's query generator, not here).
    pub alias: Option<String>,
}

impl AggSpec {
    /// `func(column)` with no per-aggregate filter.
    pub fn new(func: AggFunc, column: &str) -> Self {
        AggSpec {
            func,
            column: Some(column.to_string()),
            filter: None,
            alias: None,
        }
    }

    /// `COUNT(*)`.
    pub fn count_star() -> Self {
        AggSpec {
            func: AggFunc::Count,
            column: None,
            filter: None,
            alias: None,
        }
    }

    /// Attach a per-aggregate filter (builder style).
    pub fn with_filter(mut self, filter: Expr) -> Self {
        self.filter = Some(filter);
        self
    }

    /// Attach an output alias (builder style).
    pub fn with_alias(mut self, alias: &str) -> Self {
        self.alias = Some(alias.to_string());
        self
    }

    /// The output column name.
    pub fn output_name(&self) -> String {
        if let Some(a) = &self.alias {
            return a.clone();
        }
        match &self.column {
            Some(c) => format!("{}({})", self.func.sql(), c),
            None => format!("{}(*)", self.func.sql()),
        }
    }

    /// Identity of the *accumulated state* this aggregate produces:
    /// (function, input column, per-aggregate predicate). Two specs with
    /// equal state keys accumulate bit-identical [`AggState`]s over the
    /// same scan — the alias only labels the output column. This is the
    /// key the serving layer dedupes merged-scan aggregates by and that
    /// [`crate::PartialAggState::project_for`] matches against; both
    /// must agree, so it lives here.
    pub fn state_key(&self) -> (AggFunc, Option<&str>, Option<String>) {
        (
            self.func,
            self.column.as_deref(),
            self.filter.as_ref().map(Expr::to_sql),
        )
    }
}

/// A single-grouping query over one table.
#[derive(Debug, Clone)]
pub struct Query {
    /// Target table name.
    pub table: String,
    /// Scan-level filter (`WHERE`): rows failing it contribute to nothing.
    pub filter: Option<Expr>,
    /// Grouping attributes; empty = one global group.
    pub group_by: Vec<String>,
    /// Aggregates to compute.
    pub aggregates: Vec<AggSpec>,
    /// Optional sampling of the scan domain.
    pub sample: Option<SampleSpec>,
}

impl Query {
    /// `SELECT <aggs> FROM table GROUP BY <group_by>`.
    pub fn aggregate(table: &str, group_by: Vec<&str>, aggregates: Vec<AggSpec>) -> Self {
        Query {
            table: table.to_string(),
            filter: None,
            group_by: group_by.into_iter().map(str::to_string).collect(),
            aggregates,
            sample: None,
        }
    }

    /// Attach a WHERE filter (builder style).
    pub fn with_filter(mut self, filter: Expr) -> Self {
        self.filter = Some(filter);
        self
    }

    /// Attach sampling (builder style).
    pub fn with_sample(mut self, sample: SampleSpec) -> Self {
        self.sample = Some(sample);
        self
    }

    /// Render as SQL text (for logs and the demo frontend).
    pub fn to_sql(&self) -> String {
        let mut select: Vec<String> = self.group_by.clone();
        for a in &self.aggregates {
            let base = match &a.column {
                Some(c) => format!("{}({})", a.func.sql(), c),
                None => format!("{}(*)", a.func.sql()),
            };
            let expr = match &a.filter {
                Some(f) => format!("{base} FILTER (WHERE {})", f.to_sql()),
                None => base,
            };
            match &a.alias {
                Some(al) => select.push(format!("{expr} AS {al}")),
                None => select.push(expr),
            }
        }
        let mut sql = format!("SELECT {} FROM {}", select.join(", "), self.table);
        if let Some(f) = &self.filter {
            sql.push_str(&format!(" WHERE {}", f.to_sql()));
        }
        if !self.group_by.is_empty() {
            sql.push_str(&format!(" GROUP BY {}", self.group_by.join(", ")));
        }
        sql
    }

    /// All column names this query touches (for access-frequency stats).
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut out: Vec<String> = self.group_by.clone();
        for a in &self.aggregates {
            if let Some(c) = &a.column {
                out.push(c.clone());
            }
            if let Some(f) = &a.filter {
                out.extend(f.referenced_columns().iter().map(|s| s.to_string()));
            }
        }
        if let Some(f) = &self.filter {
            out.extend(f.referenced_columns().iter().map(|s| s.to_string()));
        }
        out
    }
}

/// A shared-scan query evaluating several grouping sets at once.
#[derive(Debug, Clone)]
pub struct SetsQuery {
    /// Target table name.
    pub table: String,
    /// Scan-level filter.
    pub filter: Option<Expr>,
    /// The grouping sets; each produces its own [`ResultSet`].
    pub sets: Vec<Vec<String>>,
    /// Aggregates (computed for every set).
    pub aggregates: Vec<AggSpec>,
    /// Optional sampling of the scan domain.
    pub sample: Option<SampleSpec>,
}

/// Tabular query output.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Output column names: grouping attributes then aggregates.
    pub columns: Vec<String>,
    /// Row-major values.
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Index of an output column.
    ///
    /// # Errors
    /// `UnknownColumn` if absent.
    pub fn column_index(&self, name: &str) -> DbResult<usize> {
        self.columns
            .iter()
            .position(|c| c == name)
            .ok_or_else(|| DbError::UnknownColumn(name.to_string()))
    }

    /// Render as an aligned text table (for examples and the demo).
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Value::render).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
            .collect();
        out.push_str(&header.join(" | "));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("-+-"),
        );
        out.push('\n');
        for row in &rendered {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
                .collect();
            out.push_str(&line.join(" | "));
            out.push('\n');
        }
        out
    }
}

/// How the serving layer's cache treated the execution (stamped by the
/// cache above the engine; plain engine executions stay [`Uncached`]).
///
/// [`Uncached`]: CacheOutcome::Uncached
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CacheOutcome {
    /// No cache probe — direct engine execution.
    #[default]
    Uncached,
    /// Served from a cached state without touching the table.
    Hit,
    /// A cached state was brought current by scanning only delta rows.
    Refreshed,
    /// Probe missed: computed by a fresh scan (and cached).
    Miss,
}

impl std::fmt::Display for CacheOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CacheOutcome::Uncached => "uncached",
            CacheOutcome::Hit => "hit",
            CacheOutcome::Refreshed => "refreshed",
            CacheOutcome::Miss => "miss",
        })
    }
}

/// Per-execution cost figures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Rows in the scan domain (full table, or sample size).
    pub rows_scanned: u64,
    /// Rows surviving the scan-level filter (≤ `rows_scanned`).
    pub rows_matched: u64,
    /// Table scans performed (1 per execution — shared scans are the point).
    pub table_scans: u64,
    /// Total groups emitted across all grouping sets.
    pub groups_emitted: u64,
    /// Partition tasks that contributed (1 for a single-threaded scan;
    /// the worker count after a partitioned merge).
    pub partitions: u64,
    /// Time spent merging partial states, per the injected clock (0 for
    /// single-partition executions).
    pub merge_ns: u64,
    /// Cache probe outcome for the request this execution served.
    pub cache: CacheOutcome,
    /// Wall-clock time.
    pub elapsed: Duration,
}

impl ExecStats {
    /// Accumulate another execution's stats into this one. Numeric
    /// fields sum; the cache outcome is adopted from `other` only if
    /// this side hasn't recorded one (merged partitions of one request
    /// share a single probe).
    pub fn merge(&mut self, other: &ExecStats) {
        self.rows_scanned += other.rows_scanned;
        self.rows_matched += other.rows_matched;
        self.table_scans += other.table_scans;
        self.groups_emitted += other.groups_emitted;
        self.partitions += other.partitions;
        self.merge_ns += other.merge_ns;
        if self.cache == CacheOutcome::Uncached {
            self.cache = other.cache;
        }
        self.elapsed += other.elapsed;
    }
}

/// Result + stats for a single-grouping query.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// The result table.
    pub result: ResultSet,
    /// Cost figures.
    pub stats: ExecStats,
}

/// Results + stats for a shared-scan multi-set query.
#[derive(Debug, Clone)]
pub struct SetsOutput {
    /// One result per grouping set, in input order.
    pub results: Vec<ResultSet>,
    /// Cost figures for the one shared scan.
    pub stats: ExecStats,
}

pub(crate) fn resolve_aggs(table: &Table, aggs: &[AggSpec]) -> DbResult<Vec<AggRequest>> {
    aggs.iter()
        .map(|a| {
            let column = match &a.column {
                Some(c) => Some(table.schema().index_of(c)?),
                None => None,
            };
            let predicate = match &a.filter {
                Some(f) => Some(f.bind(table.schema())?),
                None => None,
            };
            Ok(AggRequest {
                func: a.func,
                column,
                predicate,
            })
        })
        .collect()
}

fn scan_domain(
    table: &Table,
    filter: Option<&Expr>,
    sample: Option<&SampleSpec>,
    row_range: Option<(usize, usize)>,
) -> DbResult<(Vec<u32>, u64)> {
    // The scan domain is (optionally) sliced to a row range, then
    // sampled, then filtered; the cost charged is the number of rows the
    // engine had to look at, which is the domain size before filtering
    // (the filter is evaluated inside the same scan).
    let (lo, hi) = match row_range {
        None => (0, table.num_rows()),
        Some((lo, hi)) => (lo.min(table.num_rows()), hi.min(table.num_rows())),
    };
    let base: Vec<u32> = match sample {
        None => (lo as u32..hi as u32).collect(),
        Some(s) => sample_rows(hi.saturating_sub(lo), s)
            .into_iter()
            .map(|r| r + lo as u32)
            .collect(),
    };
    let scanned = base.len() as u64;
    let rows = match filter {
        None => base,
        Some(f) => {
            let bound = f.bind(table.schema())?;
            base.into_iter()
                .filter(|&r| bound.eval_bool(table, r as usize) == Some(true))
                .collect()
        }
    };
    Ok((rows, scanned))
}

pub(crate) fn grouped_to_result(group_by: &[String], aggs: &[AggSpec], g: Grouped) -> ResultSet {
    let mut columns: Vec<String> = group_by.to_vec();
    columns.extend(aggs.iter().map(AggSpec::output_name));
    let rows = g
        .keys
        .into_iter()
        .zip(g.values)
        .map(|(mut k, v)| {
            k.extend(v);
            k
        })
        .collect();
    ResultSet { columns, rows }
}

/// Execute a [`Query`] against a table.
///
/// # Errors
/// Unknown columns, type errors, or invalid query shapes.
pub fn execute(table: &Table, q: &Query) -> DbResult<QueryOutput> {
    execute_ranged(table, q, None)
}

/// Execute a [`Query`] over an optional row slice of the table (the
/// plan layer's scan-domain restriction; see [`crate::plan`]).
///
/// # Errors
/// Unknown columns, type errors, or invalid query shapes.
pub fn execute_ranged(
    table: &Table,
    q: &Query,
    row_range: Option<(usize, usize)>,
) -> DbResult<QueryOutput> {
    let start = Instant::now();
    let group_cols: Vec<usize> = q
        .group_by
        .iter()
        .map(|c| table.schema().index_of(c))
        .collect::<DbResult<_>>()?;
    let aggs = resolve_aggs(table, &q.aggregates)?;
    if aggs.is_empty() {
        return Err(DbError::InvalidQuery(
            "queries must compute at least one aggregate".to_string(),
        ));
    }
    let (rows, scanned) = scan_domain(table, q.filter.as_ref(), q.sample.as_ref(), row_range)?;
    let matched = rows.len() as u64;
    let grouped = aggregate::aggregate_scan(table, &rows, &group_cols, &aggs)?;
    let groups = grouped.num_groups() as u64;
    let result = grouped_to_result(&q.group_by, &q.aggregates, grouped);
    Ok(QueryOutput {
        result,
        stats: ExecStats {
            rows_scanned: scanned,
            rows_matched: matched,
            table_scans: 1,
            groups_emitted: groups,
            partitions: 1,
            elapsed: start.elapsed(),
            ..ExecStats::default()
        },
    })
}

/// Unfinalized output of a partial execution: mergeable per-set
/// accumulators plus the scan's cost figures.
pub(crate) struct RawPartial {
    pub(crate) accs: Vec<aggregate::SetAcc>,
    pub(crate) stats: ExecStats,
}

fn check_not_sampled(sample: Option<&SampleSpec>) -> DbResult<()> {
    if sample.is_some() {
        return Err(DbError::InvalidQuery(
            "sampled queries cannot be executed partially: the sampled row domain \
             depends on the scanned range, so per-partition samples do not compose"
                .to_string(),
        ));
    }
    Ok(())
}

/// Execute a [`Query`] over a row slice *without finalizing*: returns
/// mergeable per-group aggregate state (one grouping set).
///
/// # Errors
/// Unknown columns, type errors, invalid query shapes, or a sampled
/// query (sampling does not compose across partitions).
pub(crate) fn execute_partial_ranged(
    table: &Table,
    q: &Query,
    row_range: Option<(usize, usize)>,
) -> DbResult<RawPartial> {
    let start = Instant::now();
    check_not_sampled(q.sample.as_ref())?;
    let group_cols: Vec<usize> = q
        .group_by
        .iter()
        .map(|c| table.schema().index_of(c))
        .collect::<DbResult<_>>()?;
    let aggs = resolve_aggs(table, &q.aggregates)?;
    if aggs.is_empty() {
        return Err(DbError::InvalidQuery(
            "queries must compute at least one aggregate".to_string(),
        ));
    }
    let (rows, scanned) = scan_domain(table, q.filter.as_ref(), None, row_range)?;
    let matched = rows.len() as u64;
    let accs = aggregate::grouping_sets_scan_partial(table, &rows, &[group_cols], &aggs)?;
    Ok(RawPartial {
        accs,
        stats: ExecStats {
            rows_scanned: scanned,
            rows_matched: matched,
            table_scans: 1,
            groups_emitted: 0,
            partitions: 1,
            elapsed: start.elapsed(),
            ..ExecStats::default()
        },
    })
}

/// Execute a [`SetsQuery`] over a row slice *without finalizing*.
///
/// # Errors
/// Same as [`execute_partial_ranged`].
pub(crate) fn execute_sets_partial_ranged(
    table: &Table,
    q: &SetsQuery,
    row_range: Option<(usize, usize)>,
) -> DbResult<RawPartial> {
    let start = Instant::now();
    check_not_sampled(q.sample.as_ref())?;
    let sets: Vec<Vec<usize>> = q
        .sets
        .iter()
        .map(|set| {
            set.iter()
                .map(|c| table.schema().index_of(c))
                .collect::<DbResult<Vec<usize>>>()
        })
        .collect::<DbResult<_>>()?;
    let aggs = resolve_aggs(table, &q.aggregates)?;
    let (rows, scanned) = scan_domain(table, q.filter.as_ref(), None, row_range)?;
    let matched = rows.len() as u64;
    let accs = aggregate::grouping_sets_scan_partial(table, &rows, &sets, &aggs)?;
    Ok(RawPartial {
        accs,
        stats: ExecStats {
            rows_scanned: scanned,
            rows_matched: matched,
            table_scans: 1,
            groups_emitted: 0,
            partitions: 1,
            elapsed: start.elapsed(),
            ..ExecStats::default()
        },
    })
}

/// Execute a [`SetsQuery`]: one scan, many grouping sets.
///
/// # Errors
/// Unknown columns, type errors, or invalid query shapes.
pub fn execute_sets(table: &Table, q: &SetsQuery) -> DbResult<SetsOutput> {
    execute_sets_ranged(table, q, None)
}

/// Execute a [`SetsQuery`] over an optional row slice of the table.
///
/// # Errors
/// Unknown columns, type errors, or invalid query shapes.
pub fn execute_sets_ranged(
    table: &Table,
    q: &SetsQuery,
    row_range: Option<(usize, usize)>,
) -> DbResult<SetsOutput> {
    let start = Instant::now();
    let sets: Vec<Vec<usize>> = q
        .sets
        .iter()
        .map(|set| {
            set.iter()
                .map(|c| table.schema().index_of(c))
                .collect::<DbResult<Vec<usize>>>()
        })
        .collect::<DbResult<_>>()?;
    let aggs = resolve_aggs(table, &q.aggregates)?;
    let (rows, scanned) = scan_domain(table, q.filter.as_ref(), q.sample.as_ref(), row_range)?;
    let matched = rows.len() as u64;
    let grouped = aggregate::grouping_sets_scan(table, &rows, &sets, &aggs)?;
    let groups: u64 = grouped.iter().map(|g| g.num_groups() as u64).sum();
    let results = q
        .sets
        .iter()
        .zip(grouped)
        .map(|(set, g)| grouped_to_result(set, &q.aggregates, g))
        .collect();
    Ok(SetsOutput {
        results,
        stats: ExecStats {
            rows_scanned: scanned,
            rows_matched: matched,
            table_scans: 1,
            groups_emitted: groups,
            partitions: 1,
            elapsed: start.elapsed(),
            ..ExecStats::default()
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, Schema};
    use crate::value::DataType;

    fn sales() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::dimension("store", DataType::Str),
            ColumnDef::dimension("product", DataType::Str),
            ColumnDef::measure("amount", DataType::Float64),
        ])
        .unwrap();
        let mut t = Table::new("sales", schema);
        for (s, p, a) in [
            ("MA", "Laserwave", 10.0),
            ("MA", "Saberwave", 20.0),
            ("WA", "Laserwave", 30.0),
            ("NY", "Saberwave", 50.0),
        ] {
            t.push_row(vec![s.into(), p.into(), a.into()]).unwrap();
        }
        t
    }

    #[test]
    fn basic_group_by_query() {
        let t = sales();
        let q = Query::aggregate(
            "sales",
            vec!["store"],
            vec![AggSpec::new(AggFunc::Sum, "amount")],
        );
        let out = execute(&t, &q).unwrap();
        assert_eq!(out.result.columns, vec!["store", "SUM(amount)"]);
        assert_eq!(out.result.num_rows(), 3);
        assert_eq!(out.stats.rows_scanned, 4);
        assert_eq!(out.stats.table_scans, 1);
        assert_eq!(out.stats.groups_emitted, 3);
    }

    #[test]
    fn where_filter_restricts_groups() {
        let t = sales();
        let q = Query::aggregate(
            "sales",
            vec!["store"],
            vec![AggSpec::new(AggFunc::Sum, "amount")],
        )
        .with_filter(Expr::col("product").eq("Laserwave"));
        let out = execute(&t, &q).unwrap();
        assert_eq!(out.result.num_rows(), 2); // MA, WA only
                                              // Cost: the filter is evaluated inside the scan, so all 4 rows
                                              // are charged.
        assert_eq!(out.stats.rows_scanned, 4);
    }

    #[test]
    fn aliases_and_filtered_aggregates() {
        let t = sales();
        let q = Query::aggregate(
            "sales",
            vec!["store"],
            vec![
                AggSpec::new(AggFunc::Sum, "amount")
                    .with_filter(Expr::col("product").eq("Laserwave"))
                    .with_alias("target"),
                AggSpec::new(AggFunc::Sum, "amount").with_alias("comparison"),
            ],
        );
        let out = execute(&t, &q).unwrap();
        assert_eq!(out.result.columns, vec!["store", "target", "comparison"]);
        let ma = &out.result.rows[0];
        assert_eq!(ma[1], Value::Float(10.0));
        assert_eq!(ma[2], Value::Float(30.0));
    }

    #[test]
    fn sets_query_shares_one_scan() {
        let t = sales();
        let q = SetsQuery {
            table: "sales".into(),
            filter: None,
            sets: vec![vec!["store".into()], vec!["product".into()]],
            aggregates: vec![AggSpec::new(AggFunc::Sum, "amount")],
            sample: None,
        };
        let out = execute_sets(&t, &q).unwrap();
        assert_eq!(out.results.len(), 2);
        assert_eq!(out.stats.table_scans, 1);
        assert_eq!(out.stats.rows_scanned, 4);
        assert_eq!(out.stats.groups_emitted, 3 + 2);
    }

    #[test]
    fn sql_rendering_roundtrip_shape() {
        let q = Query::aggregate(
            "sales",
            vec!["store"],
            vec![AggSpec::new(AggFunc::Sum, "amount")],
        )
        .with_filter(Expr::col("product").eq("Laserwave"));
        assert_eq!(
            q.to_sql(),
            "SELECT store, SUM(amount) FROM sales WHERE product = 'Laserwave' GROUP BY store"
        );
    }

    #[test]
    fn no_aggregates_rejected() {
        let t = sales();
        let q = Query::aggregate("sales", vec!["store"], vec![]);
        assert!(execute(&t, &q).is_err());
    }

    #[test]
    fn result_set_text_rendering() {
        let t = sales();
        let q = Query::aggregate(
            "sales",
            vec!["store"],
            vec![AggSpec::new(AggFunc::Sum, "amount")],
        );
        let out = execute(&t, &q).unwrap();
        let text = out.result.to_text();
        assert!(text.contains("store"));
        assert!(text.contains("MA"));
        assert!(text.lines().count() >= 5);
    }

    #[test]
    fn referenced_columns_cover_all_clauses() {
        let q = Query::aggregate(
            "sales",
            vec!["store"],
            vec![AggSpec::new(AggFunc::Sum, "amount").with_filter(Expr::col("product").eq("x"))],
        )
        .with_filter(Expr::col("region").eq("east"));
        let mut cols = q.referenced_columns();
        cols.sort();
        assert_eq!(cols, vec!["amount", "product", "region", "store"]);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = ExecStats {
            rows_scanned: 10,
            rows_matched: 8,
            table_scans: 1,
            groups_emitted: 3,
            partitions: 1,
            merge_ns: 100,
            cache: CacheOutcome::Uncached,
            elapsed: Duration::from_millis(5),
        };
        let b = ExecStats {
            rows_scanned: 20,
            rows_matched: 15,
            table_scans: 2,
            groups_emitted: 4,
            partitions: 1,
            merge_ns: 50,
            cache: CacheOutcome::Miss,
            elapsed: Duration::from_millis(7),
        };
        a.merge(&b);
        assert_eq!(a.rows_scanned, 30);
        assert_eq!(a.rows_matched, 23);
        assert_eq!(a.table_scans, 3);
        assert_eq!(a.groups_emitted, 7);
        assert_eq!(a.partitions, 2);
        assert_eq!(a.merge_ns, 150);
        assert_eq!(a.cache, CacheOutcome::Miss);
        assert_eq!(a.elapsed, Duration::from_millis(12));
    }

    #[test]
    fn stats_merge_keeps_existing_cache_outcome() {
        let mut a = ExecStats {
            cache: CacheOutcome::Hit,
            ..ExecStats::default()
        };
        let b = ExecStats {
            cache: CacheOutcome::Miss,
            ..ExecStats::default()
        };
        a.merge(&b);
        assert_eq!(a.cache, CacheOutcome::Hit);
    }

    #[test]
    fn execute_reports_rows_matched_under_filter() {
        let t = sales();
        let q = Query::aggregate(
            "sales",
            vec!["store"],
            vec![AggSpec::new(AggFunc::Sum, "amount")],
        )
        .with_filter(Expr::col("product").eq("Laserwave"));
        let out = execute(&t, &q).unwrap();
        assert_eq!(out.stats.rows_scanned, 4);
        assert_eq!(out.stats.rows_matched, 2);
        assert_eq!(out.stats.partitions, 1);
        assert_eq!(out.stats.cache, CacheOutcome::Uncached);
    }
}
