//! Predicate expressions for `WHERE` clauses.
//!
//! [`Expr`] is the user-facing AST (also produced by the SQL parser);
//! binding it against a schema yields a [`BoundExpr`] with resolved column
//! indices, which evaluates row-at-a-time with SQL three-valued logic.

use std::cmp::Ordering;

use crate::error::{DbError, DbResult};
use crate::schema::Schema;
use crate::table::Table;
use crate::value::Value;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn matches(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }

    /// SQL spelling of the operator.
    pub fn sql(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// A predicate expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to a column by name.
    Column(String),
    /// A literal value.
    Literal(Value),
    /// Binary comparison.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Logical AND (three-valued).
    And(Box<Expr>, Box<Expr>),
    /// Logical OR (three-valued).
    Or(Box<Expr>, Box<Expr>),
    /// Logical NOT (three-valued).
    Not(Box<Expr>),
    /// `expr IN (v1, v2, ...)` / `expr NOT IN (...)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Value>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
}

impl Expr {
    /// Column reference.
    pub fn col(name: &str) -> Expr {
        Expr::Column(name.to_string())
    }

    /// Literal value.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    fn cmp(self, op: CmpOp, rhs: Expr) -> Expr {
        Expr::Cmp {
            op,
            left: Box::new(self),
            right: Box::new(rhs),
        }
    }

    /// `self = rhs`
    pub fn eq(self, rhs: impl Into<Value>) -> Expr {
        self.cmp(CmpOp::Eq, Expr::Literal(rhs.into()))
    }
    /// `self <> rhs`
    pub fn ne(self, rhs: impl Into<Value>) -> Expr {
        self.cmp(CmpOp::Ne, Expr::Literal(rhs.into()))
    }
    /// `self < rhs`
    pub fn lt(self, rhs: impl Into<Value>) -> Expr {
        self.cmp(CmpOp::Lt, Expr::Literal(rhs.into()))
    }
    /// `self <= rhs`
    pub fn le(self, rhs: impl Into<Value>) -> Expr {
        self.cmp(CmpOp::Le, Expr::Literal(rhs.into()))
    }
    /// `self > rhs`
    pub fn gt(self, rhs: impl Into<Value>) -> Expr {
        self.cmp(CmpOp::Gt, Expr::Literal(rhs.into()))
    }
    /// `self >= rhs`
    pub fn ge(self, rhs: impl Into<Value>) -> Expr {
        self.cmp(CmpOp::Ge, Expr::Literal(rhs.into()))
    }
    /// `self AND rhs`
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(rhs))
    }
    /// `self OR rhs`
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(rhs))
    }
    /// `NOT self`
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }
    /// `self IN (list)`
    pub fn in_list(self, list: Vec<Value>) -> Expr {
        Expr::InList {
            expr: Box::new(self),
            list,
            negated: false,
        }
    }
    /// `self IS NULL`
    pub fn is_null(self) -> Expr {
        Expr::IsNull {
            expr: Box::new(self),
            negated: false,
        }
    }

    /// Resolve column references against `schema`.
    ///
    /// # Errors
    /// `UnknownColumn` if any referenced column is missing.
    pub fn bind(&self, schema: &Schema) -> DbResult<BoundExpr> {
        Ok(match self {
            Expr::Column(name) => BoundExpr::Column(schema.index_of(name)?),
            Expr::Literal(v) => BoundExpr::Literal(v.clone()),
            Expr::Cmp { op, left, right } => BoundExpr::Cmp {
                op: *op,
                left: Box::new(left.bind(schema)?),
                right: Box::new(right.bind(schema)?),
            },
            Expr::And(a, b) => BoundExpr::And(Box::new(a.bind(schema)?), Box::new(b.bind(schema)?)),
            Expr::Or(a, b) => BoundExpr::Or(Box::new(a.bind(schema)?), Box::new(b.bind(schema)?)),
            Expr::Not(e) => BoundExpr::Not(Box::new(e.bind(schema)?)),
            Expr::InList {
                expr,
                list,
                negated,
            } => BoundExpr::InList {
                expr: Box::new(expr.bind(schema)?),
                list: list.clone(),
                negated: *negated,
            },
            Expr::IsNull { expr, negated } => BoundExpr::IsNull {
                expr: Box::new(expr.bind(schema)?),
                negated: *negated,
            },
        })
    }

    /// Column names referenced by this expression (with duplicates),
    /// used by SeeDB's access-frequency tracker.
    pub fn referenced_columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Column(name) => out.push(name),
            Expr::Literal(_) => {}
            Expr::Cmp { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Expr::Not(e) => e.collect_columns(out),
            Expr::InList { expr, .. } => expr.collect_columns(out),
            Expr::IsNull { expr, .. } => expr.collect_columns(out),
        }
    }

    /// Render as SQL text (round-trips through the parser).
    pub fn to_sql(&self) -> String {
        match self {
            Expr::Column(name) => name.clone(),
            Expr::Literal(v) => match v {
                Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
                other => other.render(),
            },
            Expr::Cmp { op, left, right } => {
                format!("{} {} {}", left.to_sql(), op.sql(), right.to_sql())
            }
            Expr::And(a, b) => format!("({} AND {})", a.to_sql(), b.to_sql()),
            Expr::Or(a, b) => format!("({} OR {})", a.to_sql(), b.to_sql()),
            Expr::Not(e) => format!("(NOT {})", e.to_sql()),
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let items: Vec<String> = list
                    .iter()
                    .map(|v| match v {
                        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
                        other => other.render(),
                    })
                    .collect();
                format!(
                    "{} {}IN ({})",
                    expr.to_sql(),
                    if *negated { "NOT " } else { "" },
                    items.join(", ")
                )
            }
            Expr::IsNull { expr, negated } => format!(
                "{} IS {}NULL",
                expr.to_sql(),
                if *negated { "NOT " } else { "" }
            ),
        }
    }
}

/// An [`Expr`] with column references resolved to indices.
#[derive(Debug, Clone)]
pub enum BoundExpr {
    /// Column by index.
    Column(usize),
    /// Literal.
    Literal(Value),
    /// Comparison.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        left: Box<BoundExpr>,
        /// Right operand.
        right: Box<BoundExpr>,
    },
    /// AND.
    And(Box<BoundExpr>, Box<BoundExpr>),
    /// OR.
    Or(Box<BoundExpr>, Box<BoundExpr>),
    /// NOT.
    Not(Box<BoundExpr>),
    /// IN list.
    InList {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// Candidates.
        list: Vec<Value>,
        /// NOT IN.
        negated: bool,
    },
    /// IS (NOT) NULL.
    IsNull {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// IS NOT NULL.
        negated: bool,
    },
}

impl BoundExpr {
    /// Evaluate this expression as a value at row `i`.
    fn eval_value(&self, table: &Table, i: usize) -> Value {
        match self {
            BoundExpr::Column(idx) => table.column_at(*idx).get(i),
            BoundExpr::Literal(v) => v.clone(),
            // Nested predicates used as values evaluate to booleans.
            other => match other.eval_bool(table, i) {
                Some(b) => Value::Bool(b),
                None => Value::Null,
            },
        }
    }

    /// Evaluate as a predicate at row `i` with three-valued logic:
    /// `Some(true)` match, `Some(false)` no match, `None` unknown (NULL).
    pub fn eval_bool(&self, table: &Table, i: usize) -> Option<bool> {
        match self {
            BoundExpr::Column(idx) => table.column_at(*idx).get(i).as_bool(),
            BoundExpr::Literal(v) => v.as_bool(),
            BoundExpr::Cmp { op, left, right } => {
                let l = left.eval_value(table, i);
                let r = right.eval_value(table, i);
                l.sql_cmp(&r).map(|ord| op.matches(ord))
            }
            BoundExpr::And(a, b) => match (a.eval_bool(table, i), b.eval_bool(table, i)) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            },
            BoundExpr::Or(a, b) => match (a.eval_bool(table, i), b.eval_bool(table, i)) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            },
            BoundExpr::Not(e) => e.eval_bool(table, i).map(|b| !b),
            BoundExpr::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval_value(table, i);
                if v.is_null() {
                    return None;
                }
                let mut saw_null = false;
                for item in list {
                    match v.sql_cmp(item) {
                        Some(Ordering::Equal) => return Some(!negated),
                        None if item.is_null() => saw_null = true,
                        _ => {}
                    }
                }
                if saw_null {
                    None
                } else {
                    Some(*negated)
                }
            }
            BoundExpr::IsNull { expr, negated } => {
                let v = expr.eval_value(table, i);
                Some(v.is_null() != *negated)
            }
        }
    }

    /// Evaluate the predicate over every row, returning matching row ids.
    pub fn selection(&self, table: &Table) -> Vec<u32> {
        let n = table.num_rows();
        let mut out = Vec::new();
        for i in 0..n {
            if self.eval_bool(table, i) == Some(true) {
                out.push(i as u32);
            }
        }
        out
    }
}

/// Evaluate an optional filter over `table`: `None` selects all rows.
///
/// # Errors
/// Binding errors (unknown columns) are propagated.
pub fn selection_for(table: &Table, filter: Option<&Expr>) -> DbResult<Vec<u32>> {
    match filter {
        None => Ok((0..table.num_rows() as u32).collect()),
        Some(f) => {
            let bound = f.bind(table.schema())?;
            Ok(bound.selection(table))
        }
    }
}

/// Guard that an expression only references existing columns.
///
/// # Errors
/// `UnknownColumn` for the first missing reference.
pub fn validate(expr: &Expr, schema: &Schema) -> DbResult<()> {
    for c in expr.referenced_columns() {
        if schema.index_of(c).is_err() {
            return Err(DbError::UnknownColumn(c.to_string()));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, Schema};
    use crate::value::DataType;

    fn table() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::dimension("product", DataType::Str),
            ColumnDef::dimension("region", DataType::Str),
            ColumnDef::measure("amount", DataType::Float64),
        ])
        .unwrap();
        let mut t = Table::new("sales", schema);
        let rows: Vec<(Value, Value, Value)> = vec![
            ("Laserwave".into(), "east".into(), 10.0.into()),
            ("Saberwave".into(), "west".into(), 20.0.into()),
            ("Laserwave".into(), "west".into(), 30.0.into()),
            (Value::Null, "east".into(), 40.0.into()),
        ];
        for (p, r, a) in rows {
            t.push_row(vec![p, r, a]).unwrap();
        }
        t
    }

    #[test]
    fn eq_filter_selects_matching_rows() {
        let t = table();
        let e = Expr::col("product").eq("Laserwave");
        let sel = selection_for(&t, Some(&e)).unwrap();
        assert_eq!(sel, vec![0, 2]);
    }

    #[test]
    fn null_rows_never_match() {
        let t = table();
        let e = Expr::col("product").ne("Laserwave");
        let sel = selection_for(&t, Some(&e)).unwrap();
        // Row 3 has NULL product: excluded by three-valued logic.
        assert_eq!(sel, vec![1]);
    }

    #[test]
    fn and_or_combination() {
        let t = table();
        let e = Expr::col("product")
            .eq("Laserwave")
            .and(Expr::col("region").eq("west"));
        assert_eq!(selection_for(&t, Some(&e)).unwrap(), vec![2]);
        let e = Expr::col("region")
            .eq("east")
            .or(Expr::col("amount").gt(25.0));
        assert_eq!(selection_for(&t, Some(&e)).unwrap(), vec![0, 2, 3]);
    }

    #[test]
    fn numeric_range() {
        let t = table();
        let e = Expr::col("amount")
            .ge(20.0)
            .and(Expr::col("amount").lt(40.0));
        assert_eq!(selection_for(&t, Some(&e)).unwrap(), vec![1, 2]);
    }

    #[test]
    fn in_list_and_negation() {
        let t = table();
        let e = Expr::col("region").in_list(vec!["east".into()]);
        assert_eq!(selection_for(&t, Some(&e)).unwrap(), vec![0, 3]);
        let e = Expr::InList {
            expr: Box::new(Expr::col("product")),
            list: vec!["Laserwave".into()],
            negated: true,
        };
        // NULL product row excluded from NOT IN as well.
        assert_eq!(selection_for(&t, Some(&e)).unwrap(), vec![1]);
    }

    #[test]
    fn is_null_predicates() {
        let t = table();
        let e = Expr::col("product").is_null();
        assert_eq!(selection_for(&t, Some(&e)).unwrap(), vec![3]);
        let e = Expr::IsNull {
            expr: Box::new(Expr::col("product")),
            negated: true,
        };
        assert_eq!(selection_for(&t, Some(&e)).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn none_filter_selects_everything() {
        let t = table();
        assert_eq!(selection_for(&t, None).unwrap().len(), 4);
    }

    #[test]
    fn unknown_column_errors() {
        let t = table();
        let e = Expr::col("nope").eq(1);
        assert!(selection_for(&t, Some(&e)).is_err());
        assert!(validate(&e, t.schema()).is_err());
        assert!(validate(&Expr::col("region").eq("east"), t.schema()).is_ok());
    }

    #[test]
    fn to_sql_rendering() {
        let e = Expr::col("product")
            .eq("O'Brien")
            .and(Expr::col("amount").gt(5.0));
        assert_eq!(e.to_sql(), "(product = 'O''Brien' AND amount > 5.0)");
    }

    #[test]
    fn not_flips_known_values_only() {
        let t = table();
        let e = Expr::col("product").eq("Laserwave").not();
        // NULL stays unknown under NOT: row 3 still excluded.
        assert_eq!(selection_for(&t, Some(&e)).unwrap(), vec![1]);
    }

    #[test]
    fn referenced_columns_collects_all() {
        let e = Expr::col("a")
            .eq(1)
            .and(Expr::col("b").lt(2).or(Expr::col("a").is_null()));
        let mut cols = e.referenced_columns();
        cols.sort_unstable();
        assert_eq!(cols, vec!["a", "a", "b"]);
    }
}
