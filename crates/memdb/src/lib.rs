//! # memdb — the relational substrate SeeDB wraps
//!
//! An in-memory, columnar, analytical database engine built from scratch
//! for the SeeDB reproduction. SeeDB (VLDB 2014) is "a layer on top of a
//! traditional relational database system"; this crate is that system.
//! It provides exactly the capabilities SeeDB's backend relies on:
//!
//! * typed, dictionary-encoded, *segmented* columnar tables with
//!   snowflake-style dimension/measure roles ([`schema`],
//!   [`column`](mod@column), [`segment`], [`table`]) — appends publish
//!   a new table version sharing all sealed segments with the old one
//!   ([`Database::append_rows`]), so snapshots are free and caches can
//!   refresh from just the delta rows;
//! * filtered scans with SQL three-valued logic ([`expr`]);
//! * group-by aggregation with **per-aggregate predicates** and
//!   **grouping sets sharing one scan** ([`exec`]) — the two primitives
//!   behind SeeDB's combined target/comparison and combined group-by
//!   rewrites;
//! * Bernoulli and reservoir sampling ([`sample`]);
//! * a typed logical/physical plan layer the optimizer targets, lowering
//!   onto those shared-scan primitives ([`plan`]);
//! * parallel batch execution of plans ([`parallel`]);
//! * table/column statistics and association measures ([`stats`]);
//! * deterministic cost accounting ([`cost`]);
//! * a SQL subset parser for the analyst-facing text box ([`sql`]);
//! * a durable on-disk store — checksummed segment files, an atomic
//!   manifest, an ingest WAL, and crash recovery ([`store`],
//!   [`Database::save`]/[`Database::open`]).
//!
//! ## Example
//!
//! ```
//! use memdb::{Database, Table, Schema, ColumnDef, DataType, Query, AggSpec, AggFunc, Expr};
//!
//! let schema = Schema::new(vec![
//!     ColumnDef::dimension("store", DataType::Str),
//!     ColumnDef::dimension("product", DataType::Str),
//!     ColumnDef::measure("amount", DataType::Float64),
//! ]).unwrap();
//! let mut sales = Table::new("sales", schema);
//! sales.push_row(vec!["Cambridge, MA".into(), "Laserwave".into(), 180.55.into()]).unwrap();
//! sales.push_row(vec!["Seattle, WA".into(), "Laserwave".into(), 145.50.into()]).unwrap();
//!
//! let db = Database::new();
//! db.register(sales);
//!
//! let q = Query::aggregate("sales", vec!["store"], vec![AggSpec::new(AggFunc::Sum, "amount")])
//!     .with_filter(Expr::col("product").eq("Laserwave"));
//! let out = db.run(&q).unwrap();
//! assert_eq!(out.result.num_rows(), 2);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod binning;
pub mod catalog;
pub mod column;
pub mod cost;
pub mod error;
pub mod exec;
pub mod expr;
pub mod metrics;
pub mod parallel;
pub mod plan;
pub mod sample;
pub mod schema;
pub mod segment;
pub mod sql;
pub mod stats;
#[cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
pub mod store;
pub mod sync;
pub mod table;
pub mod value;

pub use binning::{with_binned_column, BinStrategy, Binning};
pub use catalog::Database;
pub use column::{Column, StrDict};
pub use cost::{CostCounters, CostSnapshot};
pub use error::{DbError, DbResult};
pub use exec::{
    AggFunc, AggSpec, AggState, CacheOutcome, ExactSum, ExecStats, Query, QueryOutput, ResultSet,
    SetsOutput, SetsQuery,
};
pub use expr::{CmpOp, Expr};
pub use metrics::{ExecMetrics, StoreMetrics};
pub use parallel::{
    run_batch, run_partitioned, run_partitioned_partial, run_partitioned_partial_obs, BatchOutput,
};
pub use plan::{LogicalPlan, PartialAggState, PhysicalPlan, PlanOutput};
pub use sample::{sample_rows, SampleSpec};
pub use schema::{ColumnDef, Role, Schema, Semantic};
pub use segment::{ColumnSegment, SegmentData, Validity};
pub use sql::{parse_query, parse_selection, Selection};
pub use stats::{cramers_v, ColumnStats, TableStats};
pub use store::{DurabilityConfig, DurabilitySummary};
pub use sync::{MutexExt, RwLockExt};
pub use table::Table;
pub use value::{DataType, Value};
