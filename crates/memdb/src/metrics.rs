//! Registry-backed metric handles for the DBMS layers.
//!
//! Each struct bundles the handles one layer updates, registered once
//! against the [`Database`](crate::Database)'s [`seedb_obs::Obs`]
//! registry. Because registering a name twice returns the same cell,
//! any other view of these numbers (`CostSnapshot`, a full registry
//! snapshot, `obs-report.json`) reads the exact same atomics — one
//! number, one cell. All timing flows through the bundle's injected
//! [`Clock`], never the wall clock directly.

use std::sync::Arc;

use seedb_obs::{Clock, Counter, Gauge, Histogram, Obs};

/// Handles the partitioned executor updates ([`crate::parallel`]).
#[derive(Debug, Clone)]
pub struct ExecMetrics {
    /// The injected clock merge time is measured on.
    pub(crate) clock: Arc<dyn Clock>,
    /// `exec.partial_partitions`: partition tasks fanned out.
    pub partial_partitions: Counter,
    /// `exec.partial_merges`: partial-state merges performed.
    pub partial_merges: Counter,
}

impl ExecMetrics {
    /// Register the exec-layer handles against `obs`.
    pub fn new(obs: &Obs) -> ExecMetrics {
        let r = obs.registry();
        ExecMetrics {
            clock: obs.clock().clone(),
            partial_partitions: r.register_counter("exec.partial_partitions"),
            partial_merges: r.register_counter("exec.partial_merges"),
        }
    }
}

/// Handles the durable store updates ([`crate::store`]).
#[derive(Debug, Clone)]
pub struct StoreMetrics {
    /// The injected clock fsync latency is measured on.
    pub(crate) clock: Arc<dyn Clock>,
    /// `store.wal.appends`: WAL records appended (acknowledged).
    pub wal_appends: Counter,
    /// `store.wal.fsyncs`: fsyncs issued by acknowledged appends.
    pub wal_fsyncs: Counter,
    /// `store.wal.bytes`: framed bytes appended to the WAL, total.
    pub wal_bytes: Counter,
    /// `store.wal.bytes_pending`: WAL bytes awaiting the next
    /// checkpoint (gauge; falls to 0 when a checkpoint seals them).
    pub wal_bytes_pending: Gauge,
    /// `store.wal.fsync_ns`: latency of the WAL append+fsync pair.
    pub wal_fsync_ns: Histogram,
    /// `store.wal.torn_tail_repairs`: torn tails repaired — at
    /// recovery (truncated on open) or by an append retrying a failed
    /// predecessor's repair.
    pub torn_tail_repairs: Counter,
    /// `store.checkpoints`: successful checkpoints.
    pub checkpoints: Counter,
    /// `store.checkpoint.bytes`: WAL bytes drained by checkpoints.
    pub checkpoint_bytes: Counter,
    /// `store.manifest.publishes`: manifests atomically published
    /// (save, checkpoint, registration).
    pub manifest_publishes: Counter,
    /// `store.recovery.replayed_records`: WAL records re-applied by
    /// recovery (records the manifest already covered are not counted).
    pub recovery_replayed: Counter,
}

impl StoreMetrics {
    /// Register the store-layer handles against `obs`.
    pub fn new(obs: &Obs) -> StoreMetrics {
        let r = obs.registry();
        StoreMetrics {
            clock: obs.clock().clone(),
            wal_appends: r.register_counter("store.wal.appends"),
            wal_fsyncs: r.register_counter("store.wal.fsyncs"),
            wal_bytes: r.register_counter("store.wal.bytes"),
            wal_bytes_pending: r.register_gauge("store.wal.bytes_pending"),
            wal_fsync_ns: r.register_histogram("store.wal.fsync_ns"),
            torn_tail_repairs: r.register_counter("store.wal.torn_tail_repairs"),
            checkpoints: r.register_counter("store.checkpoints"),
            checkpoint_bytes: r.register_counter("store.checkpoint.bytes"),
            manifest_publishes: r.register_counter("store.manifest.publishes"),
            recovery_replayed: r.register_counter("store.recovery.replayed_records"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_cells_with_the_registry() {
        let obs = Obs::default();
        let m = StoreMetrics::new(&obs);
        m.wal_appends.add(3);
        m.wal_bytes_pending.set(17);
        let snap = obs.registry().snapshot();
        assert_eq!(snap.counters.get("store.wal.appends"), Some(&3));
        assert_eq!(snap.gauges.get("store.wal.bytes_pending"), Some(&17));
        let e = ExecMetrics::new(&obs);
        e.partial_merges.inc();
        assert_eq!(
            obs.registry()
                .snapshot()
                .counters
                .get("exec.partial_merges"),
            Some(&1)
        );
    }
}
