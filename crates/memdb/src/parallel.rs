//! Parallel batch execution of logical plans.
//!
//! SeeDB's final optimization (§3.3) issues view queries to the DBMS in
//! parallel: "as the number of queries executed in parallel increases, the
//! total latency decreases at the cost of increased per query execution
//! time". [`run_batch`] reproduces exactly that trade-off with a fixed
//! worker pool pulling plans from a shared queue: each [`LogicalPlan`] is
//! lowered to its physical operator and executed, and outputs come back
//! in input order regardless of completion order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crate::catalog::Database;
use crate::error::DbResult;
use crate::plan::{LogicalPlan, PlanOutput};

/// Result of running a batch.
#[derive(Debug)]
pub struct BatchOutput {
    /// Per-plan outcomes, in input order.
    pub outputs: Vec<DbResult<PlanOutput>>,
    /// Total wall-clock time for the whole batch.
    pub total_elapsed: Duration,
}

impl BatchOutput {
    /// Mean per-query execution time over successful queries.
    pub fn mean_query_time(&self) -> Duration {
        let times: Vec<Duration> = self
            .outputs
            .iter()
            .filter_map(|r| r.as_ref().ok().map(PlanOutput::elapsed))
            .collect();
        if times.is_empty() {
            return Duration::ZERO;
        }
        times.iter().sum::<Duration>() / times.len() as u32
    }
}

/// Execute `plans` against `db` using `workers` threads.
///
/// `workers == 1` degenerates to sequential execution (the paper's
/// baseline). Outputs preserve input order regardless of completion
/// order; lowering and execution errors are reported per plan.
pub fn run_batch(db: &Database, plans: &[LogicalPlan], workers: usize) -> BatchOutput {
    let start = Instant::now();
    let n = plans.len();
    let workers = workers.max(1).min(n.max(1));
    let mut outputs: Vec<Option<DbResult<PlanOutput>>> = Vec::with_capacity(n);
    outputs.resize_with(n, || None);

    if workers <= 1 {
        for (i, plan) in plans.iter().enumerate() {
            outputs[i] = Some(db.execute_plan(plan));
        }
    } else {
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((i, db.execute_plan(&plans[i])));
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                for (i, out) in handle.join().expect("worker thread panicked") {
                    outputs[i] = Some(out);
                }
            }
        });
    }

    BatchOutput {
        outputs: outputs
            .into_iter()
            .map(|o| o.expect("every slot filled"))
            .collect(),
        total_elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{AggFunc, AggSpec};
    use crate::schema::{ColumnDef, Schema};
    use crate::table::Table;
    use crate::value::{DataType, Value};

    fn db() -> Database {
        let schema = Schema::new(vec![
            ColumnDef::dimension("d1", DataType::Str),
            ColumnDef::dimension("d2", DataType::Str),
            ColumnDef::measure("m", DataType::Float64),
        ])
        .unwrap();
        let mut t = Table::new("t", schema);
        for i in 0..1000 {
            t.push_row(vec![
                Value::from(format!("a{}", i % 7)),
                Value::from(format!("b{}", i % 11)),
                Value::Float(i as f64),
            ])
            .unwrap();
        }
        let db = Database::new();
        db.register(t);
        db
    }

    fn plans(n: usize) -> Vec<LogicalPlan> {
        (0..n)
            .map(|i| {
                LogicalPlan::scan("t").aggregate(
                    vec![if i % 2 == 0 { "d1".into() } else { "d2".into() }],
                    vec![AggSpec::new(AggFunc::Sum, "m")],
                )
            })
            .collect()
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let db = db();
        let ps = plans(8);
        let seq = run_batch(&db, &ps, 1);
        let par = run_batch(&db, &ps, 4);
        assert_eq!(seq.outputs.len(), 8);
        for (a, b) in seq.outputs.iter().zip(par.outputs.iter()) {
            match (a.as_ref().unwrap(), b.as_ref().unwrap()) {
                (PlanOutput::Aggregate(x), PlanOutput::Aggregate(y)) => {
                    assert_eq!(x.result, y.result);
                }
                _ => panic!("shape mismatch"),
            }
        }
    }

    #[test]
    fn errors_are_per_plan() {
        let db = db();
        let mut ps = plans(2);
        ps.push(LogicalPlan::scan("missing").aggregate(vec![], vec![AggSpec::count_star()]));
        // A malformed plan (lowering error) is also reported in place.
        ps.push(LogicalPlan::scan("t"));
        let out = run_batch(&db, &ps, 2);
        assert!(out.outputs[0].is_ok());
        assert!(out.outputs[1].is_ok());
        assert!(out.outputs[2].is_err());
        assert!(out.outputs[3].is_err());
    }

    #[test]
    fn empty_batch() {
        let db = db();
        let out = run_batch(&db, &[], 4);
        assert!(out.outputs.is_empty());
        assert_eq!(out.mean_query_time(), Duration::ZERO);
    }

    #[test]
    fn grouping_sets_plans_in_batch() {
        let db = db();
        let ps = vec![LogicalPlan::scan("t").grouping_sets(
            vec![vec!["d1".into()], vec!["d2".into()]],
            vec![AggSpec::new(AggFunc::Sum, "m")],
        )];
        let out = run_batch(&db, &ps, 2);
        match out.outputs[0].as_ref().unwrap() {
            PlanOutput::GroupingSets(s) => assert_eq!(s.results.len(), 2),
            _ => panic!("expected grouping-sets output"),
        }
    }

    #[test]
    fn worker_count_does_not_affect_cost_counters() {
        let db = db();
        let ps = plans(6);
        db.reset_cost();
        run_batch(&db, &ps, 1);
        let seq_cost = db.cost();
        db.reset_cost();
        run_batch(&db, &ps, 3);
        let par_cost = db.cost();
        assert_eq!(seq_cost, par_cost);
    }
}
