//! Parallel execution of logical plans: across plans and within one.
//!
//! SeeDB's final optimization (§3.3) issues view queries to the DBMS in
//! parallel: "as the number of queries executed in parallel increases, the
//! total latency decreases at the cost of increased per query execution
//! time". [`run_batch`] reproduces exactly that trade-off with a fixed
//! worker pool pulling plans from a shared queue: each [`LogicalPlan`] is
//! lowered to its physical operator and executed, and outputs come back
//! in input order regardless of completion order.
//!
//! [`run_partitioned`] is the complementary *intra*-plan axis: one
//! shared-scan plan is split into contiguous row ranges, each range is
//! executed on its own `std::thread::scope` worker via
//! [`PhysicalPlan::execute_partial`], and the per-partition
//! [`PartialAggState`]s are merged in ascending partition order before a
//! single finalize. Because every aggregate component is associative
//! (SUM/AVG through exact order-independent summation,
//! [`crate::exec::ExactSum`]), the output is **byte-identical** to
//! single-threaded [`PhysicalPlan::execute`] for every worker count and
//! partition shape — `tests/plan_equivalence.rs` holds it to that.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use seedb_obs::Span;

use crate::catalog::Database;
use crate::error::DbResult;
use crate::metrics::ExecMetrics;
use crate::plan::{LogicalPlan, PartialAggState, PhysicalPlan, PlanOutput};
use crate::table::Table;

/// Result of running a batch.
#[derive(Debug)]
pub struct BatchOutput {
    /// Per-plan outcomes, in input order.
    pub outputs: Vec<DbResult<PlanOutput>>,
    /// Total wall-clock time for the whole batch.
    pub total_elapsed: Duration,
}

impl BatchOutput {
    /// Mean per-query execution time over successful queries.
    pub fn mean_query_time(&self) -> Duration {
        let times: Vec<Duration> = self
            .outputs
            .iter()
            .filter_map(|r| r.as_ref().ok().map(PlanOutput::elapsed))
            .collect();
        if times.is_empty() {
            return Duration::ZERO;
        }
        times.iter().sum::<Duration>() / times.len() as u32
    }
}

/// Execute `plans` against `db` using `workers` threads.
///
/// `workers == 1` degenerates to sequential execution (the paper's
/// baseline). Outputs preserve input order regardless of completion
/// order; lowering and execution errors are reported per plan.
pub fn run_batch(db: &Database, plans: &[LogicalPlan], workers: usize) -> BatchOutput {
    let start = Instant::now();
    let n = plans.len();
    let workers = workers.max(1).min(n.max(1));
    let mut outputs: Vec<Option<DbResult<PlanOutput>>> = Vec::with_capacity(n);
    outputs.resize_with(n, || None);

    if workers <= 1 {
        for (i, plan) in plans.iter().enumerate() {
            outputs[i] = Some(db.execute_plan(plan));
        }
    } else {
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((i, db.execute_plan(&plans[i])));
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                for (i, out) in handle.join().expect("worker thread panicked") {
                    outputs[i] = Some(out);
                }
            }
        });
    }

    BatchOutput {
        outputs: outputs
            .into_iter()
            .map(|o| o.expect("every slot filled"))
            .collect(),
        total_elapsed: start.elapsed(),
    }
}

/// Execute one already-lowered plan across `workers` row partitions,
/// merging partial aggregate states in partition order, without
/// finalizing. This is the reusable core of [`run_partitioned`]; phased
/// execution (`seedb-core`) folds the returned state into its per-view
/// accumulators directly instead of re-parsing finalized rows.
///
/// # Errors
/// Unknown columns, type errors, or a sampled plan (sampling does not
/// compose across partitions — callers should fall back to
/// [`PhysicalPlan::execute`]).
pub fn run_partitioned_partial(
    table: &Table,
    plan: &PhysicalPlan,
    workers: usize,
) -> DbResult<PartialAggState> {
    run_partitioned_partial_obs(table, plan, workers, None, &Span::none())
}

/// [`run_partitioned_partial`] with observability: each partition's
/// `execute_partial` gets a child span under `span` (carrying its
/// partition index and row count), the ascending merge gets one `merge`
/// span, and partition fan-out / merge counts land in `metrics`. Both
/// are free to be absent (`None` / [`Span::none`]) — the plain entry
/// point delegates here with exactly that.
///
/// # Errors
/// Same as [`run_partitioned_partial`].
pub fn run_partitioned_partial_obs(
    table: &Table,
    plan: &PhysicalPlan,
    workers: usize,
    metrics: Option<&ExecMetrics>,
    span: &Span,
) -> DbResult<PartialAggState> {
    let (lo, hi) = plan.scan_range(table);
    let rows = hi - lo;
    let workers = workers.max(1).min(rows.max(1));
    // Contiguous, ascending, near-equal partitions of [lo, hi).
    let bounds: Vec<(usize, usize)> = (0..workers)
        .map(|w| (lo + rows * w / workers, lo + rows * (w + 1) / workers))
        .collect();
    if let Some(m) = metrics {
        m.partial_partitions.add(workers as u64);
    }
    if workers <= 1 {
        let part = span.child("execute_partial");
        part.attr("partition", 0);
        part.attr("rows", rows);
        return plan.execute_partial(table, (lo, hi));
    }
    let partials: Vec<DbResult<PartialAggState>> = std::thread::scope(|s| {
        let handles: Vec<_> = bounds
            .iter()
            .enumerate()
            .map(|(w, &range)| {
                let part = span.child("execute_partial");
                part.attr("partition", w);
                part.attr("rows", range.1 - range.0);
                s.spawn(move || {
                    // Moved into the worker so its end time stamps when
                    // the partition actually finishes.
                    let _part = part;
                    plan.execute_partial(table, range)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("partition worker panicked"))
            .collect()
    });
    let merge_span = span.child("merge");
    merge_span.attr("partitions", workers);
    let merge_start = metrics.map(|m| m.clock.now_ns());
    let mut merged: Option<PartialAggState> = None;
    for partial in partials {
        let partial = partial?;
        match &mut merged {
            None => merged = Some(partial),
            Some(m) => {
                m.merge(partial, table)?;
                if let Some(em) = metrics {
                    em.partial_merges.inc();
                }
            }
        }
    }
    let mut merged = merged.expect("at least one partition");
    if let (Some(m), Some(t0)) = (metrics, merge_start) {
        merged.add_merge_ns(m.clock.now_ns().saturating_sub(t0));
    }
    Ok(merged)
}

/// Execute a single plan with intra-plan parallelism: the scan is split
/// into `workers` contiguous row ranges executed concurrently, and the
/// partial aggregate states are merged deterministically (ascending
/// partition order) before one finalize. The result is byte-identical
/// to single-threaded execution; cost counters record the full scan
/// domain. Sampled plans cannot be partitioned and fall back to a
/// plain single-threaded execution.
///
/// # Errors
/// Malformed plans (`InvalidQuery`), unknown table/columns, type errors.
pub fn run_partitioned(db: &Database, plan: &LogicalPlan, workers: usize) -> DbResult<PlanOutput> {
    let phys = plan.lower()?;
    if phys.is_sampled() || workers <= 1 {
        return db.run_physical(&phys);
    }
    let start = Instant::now();
    let table = db.table(phys.table())?;
    let mut out = run_partitioned_partial(&table, &phys, workers)?.finalize(&table)?;
    // Merged stats carry summed per-worker scan time; report the
    // actual wall clock like a single-threaded execution would.
    out.stats_mut().elapsed = start.elapsed();
    db.record_stats(out.stats());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{AggFunc, AggSpec};
    use crate::schema::{ColumnDef, Schema};
    use crate::table::Table;
    use crate::value::{DataType, Value};

    fn db() -> Database {
        let schema = Schema::new(vec![
            ColumnDef::dimension("d1", DataType::Str),
            ColumnDef::dimension("d2", DataType::Str),
            ColumnDef::measure("m", DataType::Float64),
        ])
        .unwrap();
        let mut t = Table::new("t", schema);
        for i in 0..1000 {
            t.push_row(vec![
                Value::from(format!("a{}", i % 7)),
                Value::from(format!("b{}", i % 11)),
                Value::Float(i as f64),
            ])
            .unwrap();
        }
        let db = Database::new();
        db.register(t);
        db
    }

    fn plans(n: usize) -> Vec<LogicalPlan> {
        (0..n)
            .map(|i| {
                LogicalPlan::scan("t").aggregate(
                    vec![if i % 2 == 0 { "d1".into() } else { "d2".into() }],
                    vec![AggSpec::new(AggFunc::Sum, "m")],
                )
            })
            .collect()
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let db = db();
        let ps = plans(8);
        let seq = run_batch(&db, &ps, 1);
        let par = run_batch(&db, &ps, 4);
        assert_eq!(seq.outputs.len(), 8);
        for (a, b) in seq.outputs.iter().zip(par.outputs.iter()) {
            match (a.as_ref().unwrap(), b.as_ref().unwrap()) {
                (PlanOutput::Aggregate(x), PlanOutput::Aggregate(y)) => {
                    assert_eq!(x.result, y.result);
                }
                _ => panic!("shape mismatch"),
            }
        }
    }

    #[test]
    fn errors_are_per_plan() {
        let db = db();
        let mut ps = plans(2);
        ps.push(LogicalPlan::scan("missing").aggregate(vec![], vec![AggSpec::count_star()]));
        // A malformed plan (lowering error) is also reported in place.
        ps.push(LogicalPlan::scan("t"));
        let out = run_batch(&db, &ps, 2);
        assert!(out.outputs[0].is_ok());
        assert!(out.outputs[1].is_ok());
        assert!(out.outputs[2].is_err());
        assert!(out.outputs[3].is_err());
    }

    #[test]
    fn empty_batch() {
        let db = db();
        let out = run_batch(&db, &[], 4);
        assert!(out.outputs.is_empty());
        assert_eq!(out.mean_query_time(), Duration::ZERO);
    }

    #[test]
    fn grouping_sets_plans_in_batch() {
        let db = db();
        let ps = vec![LogicalPlan::scan("t").grouping_sets(
            vec![vec!["d1".into()], vec!["d2".into()]],
            vec![AggSpec::new(AggFunc::Sum, "m")],
        )];
        let out = run_batch(&db, &ps, 2);
        match out.outputs[0].as_ref().unwrap() {
            PlanOutput::GroupingSets(s) => assert_eq!(s.results.len(), 2),
            _ => panic!("expected grouping-sets output"),
        }
    }

    fn assert_outputs_bitwise_eq(a: &PlanOutput, b: &PlanOutput) {
        assert_eq!(a.num_result_sets(), b.num_result_sets());
        for s in 0..a.num_result_sets() {
            let (ra, rb) = (a.result_set(s).unwrap(), b.result_set(s).unwrap());
            assert_eq!(ra.columns, rb.columns);
            assert_eq!(ra.rows.len(), rb.rows.len());
            for (x, y) in ra.rows.iter().zip(&rb.rows) {
                for (va, vb) in x.iter().zip(y) {
                    match (va, vb) {
                        (Value::Float(f), Value::Float(g)) => {
                            assert_eq!(f.to_bits(), g.to_bits(), "{va:?} vs {vb:?}")
                        }
                        _ => assert_eq!(va, vb),
                    }
                }
            }
        }
    }

    #[test]
    fn partitioned_matches_single_threaded_bitwise() {
        let db = db();
        let table = db.table("t").unwrap();
        let filtered = LogicalPlan::scan("t")
            .filter(crate::expr::Expr::col("d1").eq("a3"))
            .aggregate(
                vec!["d2".into()],
                vec![
                    AggSpec::new(AggFunc::Sum, "m"),
                    AggSpec::new(AggFunc::Avg, "m")
                        .with_filter(crate::expr::Expr::col("d1").eq("a3")),
                    AggSpec::count_star(),
                ],
            );
        let sets = LogicalPlan::scan("t").grouping_sets(
            vec![vec!["d1".into()], vec!["d2".into()], vec![]],
            vec![
                AggSpec::new(AggFunc::Sum, "m"),
                AggSpec::new(AggFunc::Min, "m"),
                AggSpec::new(AggFunc::Max, "m"),
            ],
        );
        let sliced = LogicalPlan::scan("t")
            .aggregate(vec!["d1".into()], vec![AggSpec::new(AggFunc::Sum, "m")])
            .sliced(123, 789);
        for plan in [filtered, sets, sliced] {
            let single = plan.lower().unwrap().execute(&table).unwrap();
            for workers in [2usize, 3, 4, 7, 1000] {
                let partitioned = run_partitioned(&db, &plan, workers).unwrap();
                assert_outputs_bitwise_eq(&single, &partitioned);
            }
        }
    }

    /// Signed zeros compare equal but differ in bits: MIN/MAX merges
    /// must keep the first-seen zero like a sequential scan does.
    #[test]
    fn signed_zero_min_max_is_bitwise_stable_across_partitions() {
        let schema = Schema::new(vec![
            ColumnDef::dimension("d", DataType::Str),
            ColumnDef::measure("m", DataType::Float64),
        ])
        .unwrap();
        let mut t = Table::new("z", schema);
        for i in 0..64 {
            // Alternate 0.0 / -0.0 so every partition boundary splits a
            // run of equal-comparing, bitwise-distinct values.
            let z = if i % 2 == 0 { 0.0f64 } else { -0.0 };
            t.push_row(vec![Value::from("g"), Value::Float(z)]).unwrap();
        }
        let db = Database::new();
        db.register(t);
        let table = db.table("z").unwrap();
        for flip in [false, true] {
            let plan = LogicalPlan::scan("z").aggregate(
                vec!["d".into()],
                vec![
                    AggSpec::new(AggFunc::Min, "m"),
                    AggSpec::new(AggFunc::Max, "m"),
                ],
            );
            // `flip` swaps which zero comes first via a slice offset.
            let plan = if flip { plan.sliced(1, 64) } else { plan };
            let single = plan.lower().unwrap().execute(&table).unwrap();
            for workers in [2usize, 3, 7] {
                let partitioned = run_partitioned(&db, &plan, workers).unwrap();
                assert_outputs_bitwise_eq(&single, &partitioned);
            }
        }
    }

    #[test]
    fn degenerate_slices_match_single_threaded_empty_output() {
        let db = db();
        let table = db.table("t").unwrap();
        let base = LogicalPlan::scan("t")
            .aggregate(vec!["d1".into()], vec![AggSpec::new(AggFunc::Sum, "m")]);
        // Inverted slice, and a slice entirely past the table.
        for (lo, hi) in [(500usize, 300usize), (1200, 900), (5000, 9000)] {
            let plan = base.clone().sliced(lo, hi);
            let single = plan.lower().unwrap().execute(&table).unwrap();
            let partitioned = run_partitioned(&db, &plan, 4).unwrap();
            assert_eq!(single.result_set(0).unwrap().num_rows(), 0);
            assert_outputs_bitwise_eq(&single, &partitioned);
        }
    }

    #[test]
    fn partitioned_records_full_scan_cost_once() {
        let db = db();
        let plan = LogicalPlan::scan("t")
            .aggregate(vec!["d1".into()], vec![AggSpec::new(AggFunc::Sum, "m")]);
        db.reset_cost();
        run_partitioned(&db, &plan, 4).unwrap();
        let cost = db.cost();
        assert_eq!(cost.queries, 1);
        assert_eq!(cost.rows_scanned, 1000);
        // One *logical* shared scan, regardless of worker count: the
        // counter must not scale with intra-plan parallelism.
        assert_eq!(cost.table_scans, 1);
    }

    #[test]
    fn sampled_plans_fall_back_to_single_threaded() {
        let db = db();
        let plan = LogicalPlan::scan("t")
            .aggregate(vec!["d1".into()], vec![AggSpec::new(AggFunc::Sum, "m")])
            .sampled(Some(crate::sample::SampleSpec::Bernoulli {
                fraction: 0.5,
                seed: 7,
            }));
        let single = db.execute_plan(&plan).unwrap();
        let partitioned = run_partitioned(&db, &plan, 4).unwrap();
        assert_outputs_bitwise_eq(&single, &partitioned);
    }

    #[test]
    fn partial_merge_rejects_mismatched_shapes() {
        let db = db();
        let table = db.table("t").unwrap();
        let a = LogicalPlan::scan("t")
            .aggregate(vec!["d1".into()], vec![AggSpec::new(AggFunc::Sum, "m")])
            .lower()
            .unwrap();
        let b = LogicalPlan::scan("t")
            .grouping_sets(
                vec![vec!["d1".into()], vec!["d2".into()]],
                vec![AggSpec::new(AggFunc::Sum, "m")],
            )
            .lower()
            .unwrap();
        let mut pa = a.execute_partial(&table, (0, 500)).unwrap();
        let pb = b.execute_partial(&table, (500, 1000)).unwrap();
        assert!(pa.merge(pb, &table).is_err());

        // Same arity but different grouping column / aggregate: must
        // also be rejected, not silently merged.
        let c = LogicalPlan::scan("t")
            .aggregate(vec!["d2".into()], vec![AggSpec::new(AggFunc::Sum, "m")])
            .lower()
            .unwrap();
        let d = LogicalPlan::scan("t")
            .aggregate(vec!["d1".into()], vec![AggSpec::new(AggFunc::Avg, "m")])
            .lower()
            .unwrap();
        let pc = c.execute_partial(&table, (500, 1000)).unwrap();
        assert!(pa.merge(pc, &table).is_err(), "different grouping column");
        let mut pa2 = a.execute_partial(&table, (0, 500)).unwrap();
        let pd = d.execute_partial(&table, (500, 1000)).unwrap();
        assert!(pa2.merge(pd, &table).is_err(), "different aggregate func");
    }

    #[test]
    fn worker_count_does_not_affect_cost_counters() {
        let db = db();
        let ps = plans(6);
        db.reset_cost();
        run_batch(&db, &ps, 1);
        let seq_cost = db.cost();
        db.reset_cost();
        run_batch(&db, &ps, 3);
        let par_cost = db.cost();
        assert_eq!(seq_cost, par_cost);
    }
}
