//! Parallel batch execution.
//!
//! SeeDB's final optimization (§3.3) issues view queries to the DBMS in
//! parallel: "as the number of queries executed in parallel increases, the
//! total latency decreases at the cost of increased per query execution
//! time". [`run_batch`] reproduces exactly that trade-off with a fixed
//! worker pool pulling from a shared queue.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crate::catalog::Database;
use crate::error::DbResult;
use crate::exec::{Query, QueryOutput, SetsOutput, SetsQuery};

/// A query of either shape, for heterogeneous batches.
#[derive(Debug, Clone)]
pub enum AnyQuery {
    /// Single-grouping query.
    Single(Query),
    /// Shared-scan multi-grouping-set query.
    Sets(SetsQuery),
}

/// Output matching [`AnyQuery`].
#[derive(Debug, Clone)]
pub enum AnyOutput {
    /// Output of a single-grouping query.
    Single(QueryOutput),
    /// Output of a multi-set query.
    Sets(SetsOutput),
}

impl AnyOutput {
    /// Wall time the query itself took (excluding queue wait).
    pub fn elapsed(&self) -> Duration {
        match self {
            AnyOutput::Single(o) => o.stats.elapsed,
            AnyOutput::Sets(o) => o.stats.elapsed,
        }
    }
}

/// Result of running a batch.
#[derive(Debug)]
pub struct BatchOutput {
    /// Per-query outcomes, in input order.
    pub outputs: Vec<DbResult<AnyOutput>>,
    /// Total wall-clock time for the whole batch.
    pub total_elapsed: Duration,
}

impl BatchOutput {
    /// Mean per-query execution time over successful queries.
    pub fn mean_query_time(&self) -> Duration {
        let times: Vec<Duration> = self
            .outputs
            .iter()
            .filter_map(|r| r.as_ref().ok().map(AnyOutput::elapsed))
            .collect();
        if times.is_empty() {
            return Duration::ZERO;
        }
        times.iter().sum::<Duration>() / times.len() as u32
    }
}

/// Execute `queries` against `db` using `workers` threads.
///
/// `workers == 1` degenerates to sequential execution (the paper's
/// baseline). Outputs preserve input order regardless of completion order.
pub fn run_batch(db: &Database, queries: &[AnyQuery], workers: usize) -> BatchOutput {
    let start = Instant::now();
    let n = queries.len();
    let workers = workers.max(1).min(n.max(1));
    let mut outputs: Vec<Option<DbResult<AnyOutput>>> = Vec::with_capacity(n);
    outputs.resize_with(n, || None);

    if workers <= 1 {
        for (i, q) in queries.iter().enumerate() {
            outputs[i] = Some(run_one(db, q));
        }
    } else {
        let next = AtomicUsize::new(0);
        let slots: Vec<parking_lot::Mutex<Option<DbResult<AnyOutput>>>> =
            (0..n).map(|_| parking_lot::Mutex::new(None)).collect();
        crossbeam::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let out = run_one(db, &queries[i]);
                    *slots[i].lock() = Some(out);
                });
            }
        })
        .expect("worker thread panicked");
        for (i, slot) in slots.into_iter().enumerate() {
            outputs[i] = slot.into_inner();
        }
    }

    BatchOutput {
        outputs: outputs
            .into_iter()
            .map(|o| o.expect("every slot filled"))
            .collect(),
        total_elapsed: start.elapsed(),
    }
}

fn run_one(db: &Database, q: &AnyQuery) -> DbResult<AnyOutput> {
    match q {
        AnyQuery::Single(q) => db.run(q).map(AnyOutput::Single),
        AnyQuery::Sets(q) => db.run_sets(q).map(AnyOutput::Sets),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{AggFunc, AggSpec};
    use crate::schema::{ColumnDef, Schema};
    use crate::table::Table;
    use crate::value::{DataType, Value};

    fn db() -> Database {
        let schema = Schema::new(vec![
            ColumnDef::dimension("d1", DataType::Str),
            ColumnDef::dimension("d2", DataType::Str),
            ColumnDef::measure("m", DataType::Float64),
        ])
        .unwrap();
        let mut t = Table::new("t", schema);
        for i in 0..1000 {
            t.push_row(vec![
                Value::from(format!("a{}", i % 7)),
                Value::from(format!("b{}", i % 11)),
                Value::Float(i as f64),
            ])
            .unwrap();
        }
        let db = Database::new();
        db.register(t);
        db
    }

    fn queries(n: usize) -> Vec<AnyQuery> {
        (0..n)
            .map(|i| {
                AnyQuery::Single(Query::aggregate(
                    "t",
                    vec![if i % 2 == 0 { "d1" } else { "d2" }],
                    vec![AggSpec::new(AggFunc::Sum, "m")],
                ))
            })
            .collect()
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let db = db();
        let qs = queries(8);
        let seq = run_batch(&db, &qs, 1);
        let par = run_batch(&db, &qs, 4);
        assert_eq!(seq.outputs.len(), 8);
        for (a, b) in seq.outputs.iter().zip(par.outputs.iter()) {
            match (a.as_ref().unwrap(), b.as_ref().unwrap()) {
                (AnyOutput::Single(x), AnyOutput::Single(y)) => {
                    assert_eq!(x.result, y.result);
                }
                _ => panic!("shape mismatch"),
            }
        }
    }

    #[test]
    fn errors_are_per_query() {
        let db = db();
        let mut qs = queries(2);
        qs.push(AnyQuery::Single(Query::aggregate(
            "missing",
            vec![],
            vec![AggSpec::count_star()],
        )));
        let out = run_batch(&db, &qs, 2);
        assert!(out.outputs[0].is_ok());
        assert!(out.outputs[1].is_ok());
        assert!(out.outputs[2].is_err());
    }

    #[test]
    fn empty_batch() {
        let db = db();
        let out = run_batch(&db, &[], 4);
        assert!(out.outputs.is_empty());
        assert_eq!(out.mean_query_time(), Duration::ZERO);
    }

    #[test]
    fn sets_queries_in_batch() {
        let db = db();
        let qs = vec![AnyQuery::Sets(SetsQuery {
            table: "t".into(),
            filter: None,
            sets: vec![vec!["d1".into()], vec!["d2".into()]],
            aggregates: vec![AggSpec::new(AggFunc::Sum, "m")],
            sample: None,
        })];
        let out = run_batch(&db, &qs, 2);
        match out.outputs[0].as_ref().unwrap() {
            AnyOutput::Sets(s) => assert_eq!(s.results.len(), 2),
            _ => panic!("expected sets output"),
        }
    }

    #[test]
    fn worker_count_does_not_affect_cost_counters() {
        let db = db();
        let qs = queries(6);
        db.reset_cost();
        run_batch(&db, &qs, 1);
        let seq_cost = db.cost();
        db.reset_cost();
        run_batch(&db, &qs, 3);
        let par_cost = db.cost();
        assert_eq!(seq_cost, par_cost);
    }
}
