//! The logical/physical plan layer between SeeDB's optimizer and the
//! executor.
//!
//! SeeDB's performance story is rewriting many candidate view queries
//! into few shared-scan DBMS queries. This module gives that rewrite a
//! typed target: the optimizer emits [`LogicalPlan`] trees (scan →
//! filter → shared-scan aggregate / grouping sets), [`lower`] validates
//! each tree and picks the physical operator, and
//! [`crate::parallel::run_batch`] (or [`crate::Database::execute_plan`])
//! executes the result. All three paper optimizations — combined
//! target/comparison (per-aggregate predicates), combined aggregates,
//! and combined group-bys — lower onto the same shared-scan aggregation
//! operator in [`crate::exec`].
//!
//! ```
//! use memdb::{plan::LogicalPlan, AggFunc, AggSpec, Expr};
//!
//! // One scan computes both sides of a view: the target aggregate
//! // carries the analyst's predicate, the comparison carries none.
//! let plan = LogicalPlan::scan("sales").aggregate(
//!     vec!["store".into()],
//!     vec![
//!         AggSpec::new(AggFunc::Sum, "amount")
//!             .with_filter(Expr::col("product").eq("Laserwave"))
//!             .with_alias("target"),
//!         AggSpec::new(AggFunc::Sum, "amount").with_alias("comparison"),
//!     ],
//! );
//! assert!(plan.lower().is_ok());
//! ```

use std::time::Duration;

use crate::error::{DbError, DbResult};
use crate::exec::{
    self, AggSpec, AggState, ExecStats, Query, QueryOutput, ResultSet, SetsOutput, SetsQuery,
};
use crate::expr::Expr;
use crate::sample::SampleSpec;
use crate::table::Table;
use crate::value::Value;

/// A leaf scan of one table, optionally sampled and/or restricted to a
/// contiguous row slice (phased execution scans one slice per phase).
#[derive(Debug, Clone)]
pub struct TableScan {
    /// Table name.
    pub table: String,
    /// Optional sampling of the scan domain.
    pub sample: Option<SampleSpec>,
    /// Optional half-open row-id slice `[lo, hi)` of the scan domain.
    pub row_range: Option<(usize, usize)>,
}

/// A scan-level predicate (`WHERE`): rows failing it feed nothing.
#[derive(Debug, Clone)]
pub struct FilterNode {
    /// The node being filtered.
    pub input: Box<LogicalPlan>,
    /// The predicate.
    pub predicate: Expr,
}

/// Shared-scan multi-aggregate over one grouping: every aggregate is
/// computed in the same pass, each optionally carrying its own
/// per-aggregate predicate (SeeDB's combined target/comparison rewrite).
#[derive(Debug, Clone)]
pub struct AggregateNode {
    /// The node being aggregated.
    pub input: Box<LogicalPlan>,
    /// Grouping attributes; empty = one global group.
    pub group_by: Vec<String>,
    /// Aggregates computed in the shared pass.
    pub aggregates: Vec<AggSpec>,
}

/// Shared-scan grouping sets: several group-bys evaluated in one pass
/// (SeeDB's combined group-by rewrite).
#[derive(Debug, Clone)]
pub struct GroupingSetsNode {
    /// The node being aggregated.
    pub input: Box<LogicalPlan>,
    /// The grouping sets; each produces its own result set.
    pub sets: Vec<Vec<String>>,
    /// Aggregates computed for every set in the shared pass.
    pub aggregates: Vec<AggSpec>,
}

/// A typed logical plan: what the optimizer hands the DBMS.
#[derive(Debug, Clone)]
pub enum LogicalPlan {
    /// Leaf table scan.
    Scan(TableScan),
    /// Scan-level filter.
    Filter(FilterNode),
    /// Shared-scan multi-aggregate with per-aggregate predicates.
    Aggregate(AggregateNode),
    /// Shared-scan grouping sets.
    GroupingSets(GroupingSetsNode),
}

impl LogicalPlan {
    /// A full scan of `table`.
    pub fn scan(table: &str) -> LogicalPlan {
        LogicalPlan::Scan(TableScan {
            table: table.to_string(),
            sample: None,
            row_range: None,
        })
    }

    /// Add a scan-level filter on top of this node.
    pub fn filter(self, predicate: Expr) -> LogicalPlan {
        LogicalPlan::Filter(FilterNode {
            input: Box::new(self),
            predicate,
        })
    }

    /// Aggregate this node by `group_by`.
    pub fn aggregate(self, group_by: Vec<String>, aggregates: Vec<AggSpec>) -> LogicalPlan {
        LogicalPlan::Aggregate(AggregateNode {
            input: Box::new(self),
            group_by,
            aggregates,
        })
    }

    /// Aggregate this node over several grouping sets in one pass.
    pub fn grouping_sets(self, sets: Vec<Vec<String>>, aggregates: Vec<AggSpec>) -> LogicalPlan {
        LogicalPlan::GroupingSets(GroupingSetsNode {
            input: Box::new(self),
            sets,
            aggregates,
        })
    }

    /// Attach sampling to the scan leaf (no-op for `None`).
    pub fn sampled(mut self, sample: Option<SampleSpec>) -> LogicalPlan {
        if let Some(scan) = self.scan_leaf_mut() {
            scan.sample = sample;
        }
        self
    }

    /// Restrict the scan leaf to the half-open row slice `[lo, hi)`.
    pub fn sliced(mut self, lo: usize, hi: usize) -> LogicalPlan {
        if let Some(scan) = self.scan_leaf_mut() {
            scan.row_range = Some((lo, hi));
        }
        self
    }

    fn scan_leaf_mut(&mut self) -> Option<&mut TableScan> {
        match self {
            LogicalPlan::Scan(s) => Some(s),
            LogicalPlan::Filter(f) => f.input.scan_leaf_mut(),
            LogicalPlan::Aggregate(a) => a.input.scan_leaf_mut(),
            LogicalPlan::GroupingSets(g) => g.input.scan_leaf_mut(),
        }
    }

    /// The table this plan scans.
    pub fn table(&self) -> &str {
        match self {
            LogicalPlan::Scan(s) => &s.table,
            LogicalPlan::Filter(f) => f.input.table(),
            LogicalPlan::Aggregate(a) => a.input.table(),
            LogicalPlan::GroupingSets(g) => g.input.table(),
        }
    }

    /// Validate this tree and pick the physical operator.
    ///
    /// # Errors
    /// `InvalidQuery` for malformed trees: a bare scan/filter root (no
    /// aggregation), nested aggregations, empty aggregate or set lists.
    pub fn lower(&self) -> DbResult<PhysicalPlan> {
        lower(self)
    }
}

/// Source description shared by both physical operators.
#[derive(Debug, Clone, Default)]
struct Source {
    table: Option<String>,
    filter: Option<Expr>,
    sample: Option<SampleSpec>,
    row_range: Option<(usize, usize)>,
}

fn lower_source(node: &LogicalPlan) -> DbResult<Source> {
    match node {
        LogicalPlan::Scan(s) => Ok(Source {
            table: Some(s.table.clone()),
            filter: None,
            sample: s.sample,
            row_range: s.row_range,
        }),
        LogicalPlan::Filter(f) => {
            let mut src = lower_source(&f.input)?;
            // Stacked filters AND-combine into one scan-level predicate.
            src.filter = Some(match src.filter.take() {
                Some(existing) => existing.and(f.predicate.clone()),
                None => f.predicate.clone(),
            });
            Ok(src)
        }
        LogicalPlan::Aggregate(_) | LogicalPlan::GroupingSets(_) => Err(DbError::InvalidQuery(
            "nested aggregation is not supported: aggregate inputs must be scan/filter chains"
                .to_string(),
        )),
    }
}

/// The physical operator a logical plan lowers to, plus its scan-domain
/// restriction. Wraps the executor's query types.
#[derive(Debug, Clone)]
pub enum PhysicalPlan {
    /// One shared scan, one grouping ([`exec::execute`]).
    Aggregate {
        /// The executable query.
        query: Query,
        /// Optional half-open row slice of the scan domain.
        row_range: Option<(usize, usize)>,
    },
    /// One shared scan, many groupings ([`exec::execute_sets`]).
    GroupingSets {
        /// The executable query.
        query: SetsQuery,
        /// Optional half-open row slice of the scan domain.
        row_range: Option<(usize, usize)>,
    },
}

/// Lower a logical plan to its physical operator.
///
/// A [`LogicalPlan::GroupingSets`] with exactly one set lowers to the
/// simpler single-grouping operator — callers build the general shape
/// and the planner picks the fast path.
///
/// # Errors
/// `InvalidQuery` for malformed trees (see [`LogicalPlan::lower`]).
pub fn lower(plan: &LogicalPlan) -> DbResult<PhysicalPlan> {
    match plan {
        LogicalPlan::Scan(_) | LogicalPlan::Filter(_) => Err(DbError::InvalidQuery(
            "plan root must be an aggregation (bare scans have no output operator)".to_string(),
        )),
        LogicalPlan::Aggregate(a) => {
            if a.aggregates.is_empty() {
                return Err(DbError::InvalidQuery(
                    "aggregate node computes no aggregates".to_string(),
                ));
            }
            let src = lower_source(&a.input)?;
            Ok(PhysicalPlan::Aggregate {
                query: Query {
                    table: src.table.expect("source always has a table"),
                    filter: src.filter,
                    group_by: a.group_by.clone(),
                    aggregates: a.aggregates.clone(),
                    sample: src.sample,
                },
                row_range: src.row_range,
            })
        }
        LogicalPlan::GroupingSets(g) => {
            if g.aggregates.is_empty() {
                return Err(DbError::InvalidQuery(
                    "grouping-sets node computes no aggregates".to_string(),
                ));
            }
            if g.sets.is_empty() {
                return Err(DbError::InvalidQuery(
                    "grouping-sets node has no grouping sets".to_string(),
                ));
            }
            let src = lower_source(&g.input)?;
            let table = src.table.expect("source always has a table");
            if g.sets.len() == 1 {
                // Single-set shared scan degenerates to the plain
                // single-grouping operator.
                return Ok(PhysicalPlan::Aggregate {
                    query: Query {
                        table,
                        filter: src.filter,
                        group_by: g.sets[0].clone(),
                        aggregates: g.aggregates.clone(),
                        sample: src.sample,
                    },
                    row_range: src.row_range,
                });
            }
            Ok(PhysicalPlan::GroupingSets {
                query: SetsQuery {
                    table,
                    filter: src.filter,
                    sets: g.sets.clone(),
                    aggregates: g.aggregates.clone(),
                    sample: src.sample,
                },
                row_range: src.row_range,
            })
        }
    }
}

impl PhysicalPlan {
    /// The table this plan scans.
    pub fn table(&self) -> &str {
        match self {
            PhysicalPlan::Aggregate { query, .. } => &query.table,
            PhysicalPlan::GroupingSets { query, .. } => &query.table,
        }
    }

    /// A canonical fingerprint of everything that determines this plan's
    /// output: table, scan predicate, sampling, row slice, grouping
    /// set(s), and every aggregate (function, column, alias, and
    /// per-aggregate predicate). Two plans with equal fingerprints
    /// produce byte-identical [`PlanOutput`]s against the same table
    /// version — the cache key of the serving layer. Free-text fields
    /// (SQL renderings, names) are length-prefixed so no crafted
    /// identifier can collide across field boundaries.
    pub fn fingerprint(&self) -> String {
        let mut out = String::new();
        let push = |out: &mut String, tag: &str, s: &str| {
            out.push_str(tag);
            out.push(':');
            out.push_str(&s.len().to_string());
            out.push(':');
            out.push_str(s);
            out.push('\n');
        };
        let (table, filter, sample, sets, aggs, row_range, shape) = match self {
            PhysicalPlan::Aggregate { query, row_range } => (
                &query.table,
                &query.filter,
                &query.sample,
                vec![query.group_by.clone()],
                &query.aggregates,
                row_range,
                "agg",
            ),
            PhysicalPlan::GroupingSets { query, row_range } => (
                &query.table,
                &query.filter,
                &query.sample,
                query.sets.clone(),
                &query.aggregates,
                row_range,
                "sets",
            ),
        };
        push(&mut out, "shape", shape);
        push(&mut out, "table", table);
        push(
            &mut out,
            "range",
            &match row_range {
                None => "none".to_string(),
                Some((lo, hi)) => format!("{lo},{hi}"),
            },
        );
        push(
            &mut out,
            "sample",
            &match sample {
                None => "none".to_string(),
                Some(s) => format!("{s:?}"),
            },
        );
        push(
            &mut out,
            "filter",
            &filter.as_ref().map(Expr::to_sql).unwrap_or_default(),
        );
        push(&mut out, "nsets", &sets.len().to_string());
        for set in &sets {
            push(&mut out, "ncols", &set.len().to_string());
            for col in set {
                push(&mut out, "col", col);
            }
        }
        push(&mut out, "naggs", &aggs.len().to_string());
        for a in aggs {
            push(&mut out, "func", a.func.sql());
            push(&mut out, "acol", a.column.as_deref().unwrap_or("*"));
            push(&mut out, "alias", a.alias.as_deref().unwrap_or(""));
            push(
                &mut out,
                "afilter",
                &a.filter.as_ref().map(Expr::to_sql).unwrap_or_default(),
            );
        }
        out
    }

    /// Execute directly against a table (no catalog, no cost recording).
    ///
    /// # Errors
    /// Unknown columns, type errors, or invalid query shapes.
    pub fn execute(&self, table: &Table) -> DbResult<PlanOutput> {
        match self {
            PhysicalPlan::Aggregate { query, row_range } => {
                exec::execute_ranged(table, query, *row_range).map(PlanOutput::Aggregate)
            }
            PhysicalPlan::GroupingSets { query, row_range } => {
                exec::execute_sets_ranged(table, query, *row_range).map(PlanOutput::GroupingSets)
            }
        }
    }

    /// Whether the plan samples its scan (sampled plans cannot be
    /// executed partially: per-partition samples do not compose).
    pub fn is_sampled(&self) -> bool {
        match self {
            PhysicalPlan::Aggregate { query, .. } => query.sample.is_some(),
            PhysicalPlan::GroupingSets { query, .. } => query.sample.is_some(),
        }
    }

    /// The half-open row range this plan scans of `table` (its own
    /// slice restriction clamped to the table). Always well-formed
    /// (`lo <= hi`): an inverted or out-of-range slice degenerates to
    /// an empty range, matching the empty output `execute` produces.
    pub fn scan_range(&self, table: &Table) -> (usize, usize) {
        let row_range = match self {
            PhysicalPlan::Aggregate { row_range, .. } => *row_range,
            PhysicalPlan::GroupingSets { row_range, .. } => *row_range,
        };
        match row_range {
            None => (0, table.num_rows()),
            Some((lo, hi)) => {
                let lo = lo.min(table.num_rows());
                (lo, hi.min(table.num_rows()).max(lo))
            }
        }
    }

    /// Execute this plan over the row slice `range` of `table` without
    /// finalizing, returning mergeable per-(set, group, aggregate)
    /// state. `range` is intersected with the plan's own slice; the
    /// full-plan result is recovered by merging the partial states of a
    /// partition of the scan range and calling
    /// [`PartialAggState::finalize`] — bit-for-bit identical to
    /// [`PhysicalPlan::execute`] for any partition shape.
    ///
    /// # Errors
    /// Unknown columns, type errors, or a sampled plan.
    pub fn execute_partial(
        &self,
        table: &Table,
        range: (usize, usize),
    ) -> DbResult<PartialAggState> {
        let (plan_lo, plan_hi) = self.scan_range(table);
        let eff = (
            range.0.max(plan_lo),
            range.1.min(plan_hi).max(range.0.max(plan_lo)),
        );
        let (raw, single, group_by, aggregates) = match self {
            PhysicalPlan::Aggregate { query, .. } => (
                exec::execute_partial_ranged(table, query, Some(eff))?,
                true,
                vec![query.group_by.clone()],
                query.aggregates.clone(),
            ),
            PhysicalPlan::GroupingSets { query, .. } => (
                exec::execute_sets_partial_ranged(table, query, Some(eff))?,
                false,
                query.sets.clone(),
                query.aggregates.clone(),
            ),
        };
        Ok(PartialAggState {
            accs: raw.accs,
            single,
            group_by,
            aggregates,
            stats: raw.stats,
        })
    }
}

/// Mergeable partial aggregate state: the unfinalized result of
/// executing a physical plan over one row range.
///
/// The contract (see also the README's "partitioned execution"
/// section): partial states produced by [`PhysicalPlan::execute_partial`]
/// over *disjoint* row ranges of the *same* table and plan may be
/// [`merge`](PartialAggState::merge)d in ascending range order and then
/// [`finalize`](PartialAggState::finalize)d; the resulting
/// [`PlanOutput`] is byte-identical to [`PhysicalPlan::execute`] over
/// the union of the ranges, for every partition shape. This holds
/// because every per-(group, aggregate) component is associative —
/// count/min/max trivially, SUM/AVG via exact order-independent
/// summation ([`crate::exec::ExactSum`]).
#[derive(Debug, Clone)]
pub struct PartialAggState {
    accs: Vec<exec::aggregate::SetAcc>,
    single: bool,
    group_by: Vec<Vec<String>>,
    aggregates: Vec<AggSpec>,
    stats: ExecStats,
}

impl PartialAggState {
    /// Fold another partition's state into this one. Cost figures
    /// accumulate (`rows_scanned` sums to the full scan domain;
    /// `table_scans` counts per-partition range scans).
    ///
    /// # Errors
    /// `Internal` if the two states come from different plan shapes:
    /// output shape, grouping columns, and aggregate specs (function,
    /// column, alias, per-aggregate predicate) must all match — same-
    /// arity states from *different* plans must not merge silently.
    pub fn merge(&mut self, other: PartialAggState, table: &Table) -> DbResult<()> {
        let agg_eq = |a: &AggSpec, b: &AggSpec| {
            a.func == b.func
                && a.column == b.column
                && a.alias == b.alias
                && a.filter.as_ref().map(Expr::to_sql) == b.filter.as_ref().map(Expr::to_sql)
        };
        if self.single != other.single
            || self.group_by != other.group_by
            || self.aggregates.len() != other.aggregates.len()
            || !self
                .aggregates
                .iter()
                .zip(&other.aggregates)
                .all(|(a, b)| agg_eq(a, b))
        {
            return Err(DbError::Internal(
                "cannot merge partial states from different plans".to_string(),
            ));
        }
        exec::aggregate::merge_accs(&mut self.accs, &other.accs, table);
        self.stats.merge(&other.stats);
        Ok(())
    }

    /// Number of grouping sets (1 for a single-grouping plan).
    pub fn num_sets(&self) -> usize {
        self.accs.len()
    }

    /// Cost figures of the scan(s) that produced this state.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Add merge time (per the injected clock) to this state's stats —
    /// stamped by the partitioned runner around its merge loop.
    pub(crate) fn add_merge_ns(&mut self, ns: u64) {
        self.stats.merge_ns += ns;
    }

    /// Project this state onto `plan`'s grouping set(s) and aggregates,
    /// yielding the partial state a standalone execution of `plan` over
    /// the *same scan source* would have produced.
    ///
    /// This is the serving layer's batch-split primitive: several plans
    /// sharing one scan source (same table, scan-level predicate, row
    /// range, unsampled) are merged into one grouping-sets superplan,
    /// executed once, and the combined state is projected back per plan.
    /// Group discovery is aggregate-independent and every per-(set,
    /// group, aggregate) state is accumulated independently during the
    /// scan, so the projection is bit-for-bit the state
    /// [`PhysicalPlan::execute_partial`] would have built for `plan`
    /// alone. Aggregates are matched by (function, column, per-aggregate
    /// predicate) — aliases only label output columns and the projected
    /// state carries `plan`'s own aliases.
    ///
    /// **Contract:** `self` must come from a plan with the same scan
    /// source as `plan`; this method can only verify the grouping/
    /// aggregate structure, the caller guarantees the source matches.
    ///
    /// # Errors
    /// `Internal` if a grouping set or aggregate of `plan` is not
    /// covered by this state.
    pub fn project_for(&self, plan: &PhysicalPlan) -> DbResult<PartialAggState> {
        let (single, want_sets, want_aggs) = match plan {
            PhysicalPlan::Aggregate { query, .. } => {
                (true, vec![query.group_by.clone()], query.aggregates.clone())
            }
            PhysicalPlan::GroupingSets { query, .. } => {
                (false, query.sets.clone(), query.aggregates.clone())
            }
        };
        let set_indices: Vec<usize> = want_sets
            .iter()
            .map(|s| {
                self.group_by.iter().position(|g| g == s).ok_or_else(|| {
                    DbError::Internal(format!(
                        "projection target grouping set {s:?} not covered by this state"
                    ))
                })
            })
            .collect::<DbResult<_>>()?;
        let agg_indices: Vec<usize> = want_aggs
            .iter()
            .map(|a| {
                let key = a.state_key();
                self.aggregates
                    .iter()
                    .position(|b| b.state_key() == key)
                    .ok_or_else(|| {
                        DbError::Internal(format!(
                            "projection target aggregate {} not covered by this state",
                            a.output_name()
                        ))
                    })
            })
            .collect::<DbResult<_>>()?;
        let accs = set_indices
            .iter()
            .map(|&si| self.accs[si].project_aggs(&agg_indices))
            .collect();
        Ok(PartialAggState {
            accs,
            single,
            group_by: want_sets,
            aggregates: want_aggs,
            stats: self.stats,
        })
    }

    /// Number of groups discovered so far in set `set`.
    pub fn num_groups(&self, set: usize) -> usize {
        self.accs[set].num_groups()
    }

    /// Grouping-attribute values of group `g` in set `set`.
    pub fn group_label(&self, set: usize, g: usize, table: &Table) -> Vec<Value> {
        self.accs[set].group_label(g, table)
    }

    /// Mergeable per-aggregate states of group `g` in set `set`, in
    /// the plan's aggregate order.
    pub fn group_states(&self, set: usize, g: usize) -> &[AggState] {
        self.accs[set].group_states(g)
    }

    /// Finalize into the same output shape [`PhysicalPlan::execute`]
    /// produces (groups sorted by label, SQL null semantics applied).
    ///
    /// Stats semantics: `rows_scanned` covers the union of the merged
    /// ranges, but `table_scans` is reported as **1** — the partitions
    /// jointly perform one logical shared scan, and the counter's
    /// documented meaning ("shared scans are the point") must not
    /// scale with the worker count. `elapsed` is the summed
    /// per-partition scan time; [`crate::parallel::run_partitioned`]
    /// replaces it with the measured wall clock.
    ///
    /// # Errors
    /// Column resolution errors (impossible for states produced against
    /// the same table).
    pub fn finalize(self, table: &Table) -> DbResult<PlanOutput> {
        let requests = exec::resolve_aggs(table, &self.aggregates)?;
        let grouped = exec::aggregate::finalize_accs(self.accs, table, &requests);
        let mut stats = self.stats;
        stats.table_scans = 1;
        stats.groups_emitted = grouped.iter().map(|g| g.num_groups() as u64).sum();
        if self.single {
            let g = grouped.into_iter().next().expect("one set in, one out");
            let result = exec::grouped_to_result(&self.group_by[0], &self.aggregates, g);
            Ok(PlanOutput::Aggregate(QueryOutput { result, stats }))
        } else {
            let results = self
                .group_by
                .iter()
                .zip(grouped)
                .map(|(set, g)| exec::grouped_to_result(set, &self.aggregates, g))
                .collect();
            Ok(PlanOutput::GroupingSets(SetsOutput { results, stats }))
        }
    }
}

/// Output of an executed plan, matching [`PhysicalPlan`]'s shape.
#[derive(Debug, Clone)]
pub enum PlanOutput {
    /// Output of a single-grouping plan.
    Aggregate(QueryOutput),
    /// Output of a multi-set plan.
    GroupingSets(SetsOutput),
}

impl PlanOutput {
    /// Execution cost figures.
    pub fn stats(&self) -> &ExecStats {
        match self {
            PlanOutput::Aggregate(o) => &o.stats,
            PlanOutput::GroupingSets(o) => &o.stats,
        }
    }

    pub(crate) fn stats_mut(&mut self) -> &mut ExecStats {
        match self {
            PlanOutput::Aggregate(o) => &mut o.stats,
            PlanOutput::GroupingSets(o) => &mut o.stats,
        }
    }

    /// Stamp the cache probe outcome this output was served under. The
    /// serving layer calls this on the per-request copy — a memoized
    /// cached output stays [`CacheOutcome::Uncached`](crate::exec::CacheOutcome::Uncached) so each request
    /// reports its own probe.
    pub fn set_cache(&mut self, outcome: crate::exec::CacheOutcome) {
        self.stats_mut().cache = outcome;
    }

    /// Wall time the query itself took (excluding queue wait).
    pub fn elapsed(&self) -> Duration {
        self.stats().elapsed
    }

    /// The result set at `index`: a single-grouping output has exactly
    /// index 0; a grouping-sets output has one per set.
    ///
    /// # Errors
    /// `Internal` if `index` is out of range for this output's shape (a
    /// plan/executor mismatch is a bug, surfaced as an error).
    pub fn result_set(&self, index: usize) -> DbResult<&ResultSet> {
        match self {
            PlanOutput::Aggregate(o) => {
                if index == 0 {
                    Ok(&o.result)
                } else {
                    Err(DbError::Internal(format!(
                        "result index {index} out of range for single-grouping output"
                    )))
                }
            }
            PlanOutput::GroupingSets(o) => o.results.get(index).ok_or_else(|| {
                DbError::Internal(format!(
                    "result index {} out of range ({} sets)",
                    index,
                    o.results.len()
                ))
            }),
        }
    }

    /// Number of result sets.
    pub fn num_result_sets(&self) -> usize {
        match self {
            PlanOutput::Aggregate(_) => 1,
            PlanOutput::GroupingSets(o) => o.results.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Database;
    use crate::exec::AggFunc;
    use crate::schema::{ColumnDef, Schema};
    use crate::value::{DataType, Value};

    fn sales() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::dimension("store", DataType::Str),
            ColumnDef::dimension("product", DataType::Str),
            ColumnDef::measure("amount", DataType::Float64),
        ])
        .unwrap();
        let mut t = Table::new("sales", schema);
        for (s, p, a) in [
            ("MA", "Laserwave", 10.0),
            ("MA", "Saberwave", 20.0),
            ("WA", "Laserwave", 30.0),
            ("NY", "Saberwave", 50.0),
        ] {
            t.push_row(vec![s.into(), p.into(), a.into()]).unwrap();
        }
        t
    }

    fn sum_amount() -> Vec<AggSpec> {
        vec![AggSpec::new(AggFunc::Sum, "amount")]
    }

    #[test]
    fn aggregate_plan_lowers_and_executes() {
        let t = sales();
        let plan = LogicalPlan::scan("sales").aggregate(vec!["store".into()], sum_amount());
        let out = plan.lower().unwrap().execute(&t).unwrap();
        assert_eq!(out.num_result_sets(), 1);
        assert_eq!(out.result_set(0).unwrap().num_rows(), 3);
        assert!(out.result_set(1).is_err());
    }

    #[test]
    fn filters_collapse_into_the_scan() {
        let t = sales();
        let plan = LogicalPlan::scan("sales")
            .filter(Expr::col("product").eq("Laserwave"))
            .filter(Expr::col("store").eq("MA"))
            .aggregate(vec!["store".into()], sum_amount());
        let phys = plan.lower().unwrap();
        match &phys {
            PhysicalPlan::Aggregate { query, .. } => {
                assert!(query.filter.is_some(), "both filters AND-combined")
            }
            _ => panic!("expected aggregate"),
        }
        let out = phys.execute(&t).unwrap();
        assert_eq!(out.result_set(0).unwrap().num_rows(), 1);
    }

    #[test]
    fn single_set_grouping_sets_lowers_to_aggregate() {
        let plan =
            LogicalPlan::scan("sales").grouping_sets(vec![vec!["store".into()]], sum_amount());
        match plan.lower().unwrap() {
            PhysicalPlan::Aggregate { query, .. } => {
                assert_eq!(query.group_by, vec!["store".to_string()])
            }
            PhysicalPlan::GroupingSets { .. } => panic!("single set should use the fast path"),
        }
    }

    #[test]
    fn multi_set_plan_shares_one_scan() {
        let t = sales();
        let plan = LogicalPlan::scan("sales").grouping_sets(
            vec![vec!["store".into()], vec!["product".into()]],
            sum_amount(),
        );
        let out = plan.lower().unwrap().execute(&t).unwrap();
        assert_eq!(out.num_result_sets(), 2);
        assert_eq!(out.stats().table_scans, 1);
        assert_eq!(out.stats().rows_scanned, 4);
    }

    #[test]
    fn row_slices_restrict_the_scan_domain() {
        let t = sales();
        let full = LogicalPlan::scan("sales").aggregate(vec![], vec![AggSpec::count_star()]);
        let slice = full.clone().sliced(1, 3);
        let out = slice.lower().unwrap().execute(&t).unwrap();
        assert_eq!(out.result_set(0).unwrap().rows[0][0], Value::Int(2));
        assert_eq!(out.stats().rows_scanned, 2);
        // Slices partition: all-phase counts sum to the full count.
        let a = LogicalPlan::scan("sales")
            .aggregate(vec![], vec![AggSpec::count_star()])
            .sliced(0, 2);
        let b = LogicalPlan::scan("sales")
            .aggregate(vec![], vec![AggSpec::count_star()])
            .sliced(2, 4);
        let na = match a
            .lower()
            .unwrap()
            .execute(&t)
            .unwrap()
            .result_set(0)
            .unwrap()
            .rows[0][0]
        {
            Value::Int(n) => n,
            _ => panic!(),
        };
        let nb = match b
            .lower()
            .unwrap()
            .execute(&t)
            .unwrap()
            .result_set(0)
            .unwrap()
            .rows[0][0]
        {
            Value::Int(n) => n,
            _ => panic!(),
        };
        assert_eq!(na + nb, 4);
    }

    #[test]
    fn malformed_plans_are_rejected() {
        // Bare scan: no output operator.
        assert!(LogicalPlan::scan("sales").lower().is_err());
        // Filter root.
        assert!(LogicalPlan::scan("sales")
            .filter(Expr::col("store").eq("MA"))
            .lower()
            .is_err());
        // Empty aggregates.
        assert!(LogicalPlan::scan("sales")
            .aggregate(vec!["store".into()], vec![])
            .lower()
            .is_err());
        // Empty sets.
        assert!(LogicalPlan::scan("sales")
            .grouping_sets(vec![], sum_amount())
            .lower()
            .is_err());
        // Nested aggregation.
        let nested = LogicalPlan::scan("sales")
            .aggregate(vec!["store".into()], sum_amount())
            .aggregate(vec![], sum_amount());
        assert!(nested.lower().is_err());
    }

    #[test]
    fn database_executes_plans_and_records_cost() {
        let db = Database::new();
        db.register(sales());
        let plan = LogicalPlan::scan("sales").aggregate(vec!["store".into()], sum_amount());
        let out = db.execute_plan(&plan).unwrap();
        assert_eq!(out.num_result_sets(), 1);
        assert_eq!(db.cost().queries, 1);
        assert_eq!(db.cost().rows_scanned, 4);
    }

    #[test]
    fn fingerprints_separate_output_determining_fields() {
        let base = || LogicalPlan::scan("sales").aggregate(vec!["store".into()], sum_amount());
        let fp = |p: &LogicalPlan| p.lower().unwrap().fingerprint();
        assert_eq!(fp(&base()), fp(&base()), "fingerprints are deterministic");

        let aliased = LogicalPlan::scan("sales").aggregate(
            vec!["store".into()],
            vec![AggSpec::new(AggFunc::Sum, "amount").with_alias("x")],
        );
        assert_ne!(fp(&base()), fp(&aliased), "aliases rename output columns");

        let filtered = LogicalPlan::scan("sales")
            .filter(Expr::col("product").eq("Laserwave"))
            .aggregate(vec!["store".into()], sum_amount());
        assert_ne!(fp(&base()), fp(&filtered));

        let sliced = base().sliced(0, 2);
        assert_ne!(fp(&base()), fp(&sliced));

        let sampled = base().sampled(Some(SampleSpec::Bernoulli {
            fraction: 0.5,
            seed: 1,
        }));
        assert_ne!(fp(&base()), fp(&sampled));

        let other_group =
            LogicalPlan::scan("sales").aggregate(vec!["product".into()], sum_amount());
        assert_ne!(fp(&base()), fp(&other_group));

        // Length prefixes prevent crafted names from colliding across
        // field boundaries.
        let a = LogicalPlan::scan("sales")
            .grouping_sets(vec![vec!["store".into(), "product".into()]], sum_amount());
        let b = LogicalPlan::scan("sales").grouping_sets(
            vec![vec!["store".into()], vec!["product".into()]],
            sum_amount(),
        );
        assert_ne!(fp(&a), fp(&b));
    }

    #[test]
    fn projection_matches_standalone_partial_execution() {
        let t = sales();
        // Superplan: two grouping sets × three aggregates (one carrying a
        // per-aggregate predicate), as the serving batcher would build.
        let superplan = LogicalPlan::scan("sales")
            .grouping_sets(
                vec![vec!["store".into()], vec!["product".into()], vec![]],
                vec![
                    AggSpec::new(AggFunc::Sum, "amount")
                        .with_filter(Expr::col("product").eq("Laserwave"))
                        .with_alias("t_sum_amount"),
                    AggSpec::new(AggFunc::Sum, "amount").with_alias("c_sum_amount"),
                    AggSpec::count_star(),
                ],
            )
            .lower()
            .unwrap();
        let combined = superplan.execute_partial(&t, (0, t.num_rows())).unwrap();

        // Member plans: a single-grouping plan with a different alias for
        // the same aggregate, and a grouping-sets plan over a subset.
        let member_a = LogicalPlan::scan("sales")
            .aggregate(
                vec!["product".into()],
                vec![AggSpec::new(AggFunc::Sum, "amount").with_alias("renamed")],
            )
            .lower()
            .unwrap();
        let member_b = LogicalPlan::scan("sales")
            .grouping_sets(
                vec![vec![], vec!["store".into()]],
                vec![
                    AggSpec::count_star(),
                    AggSpec::new(AggFunc::Sum, "amount")
                        .with_filter(Expr::col("product").eq("Laserwave")),
                ],
            )
            .lower()
            .unwrap();
        for member in [member_a, member_b] {
            let standalone = member.execute(&t).unwrap();
            let projected = combined.project_for(&member).unwrap().finalize(&t).unwrap();
            assert_eq!(standalone.num_result_sets(), projected.num_result_sets());
            for s in 0..standalone.num_result_sets() {
                let (a, b) = (
                    standalone.result_set(s).unwrap(),
                    projected.result_set(s).unwrap(),
                );
                assert_eq!(a.columns, b.columns);
                assert_eq!(a.rows.len(), b.rows.len());
                for (x, y) in a.rows.iter().zip(&b.rows) {
                    for (va, vb) in x.iter().zip(y) {
                        match (va, vb) {
                            (Value::Float(f), Value::Float(g)) => {
                                assert_eq!(f.to_bits(), g.to_bits())
                            }
                            _ => assert_eq!(va, vb),
                        }
                    }
                }
            }
        }

        // Uncovered targets are rejected, not silently mis-projected.
        let missing_agg = LogicalPlan::scan("sales")
            .aggregate(
                vec!["store".into()],
                vec![AggSpec::new(AggFunc::Min, "amount")],
            )
            .lower()
            .unwrap();
        assert!(combined.project_for(&missing_agg).is_err());
        let missing_set = LogicalPlan::scan("sales")
            .aggregate(vec!["product".into(), "store".into()], sum_amount())
            .lower()
            .unwrap();
        assert!(combined.project_for(&missing_set).is_err());
    }

    #[test]
    fn sample_attaches_to_the_scan_leaf() {
        let plan = LogicalPlan::scan("sales")
            .filter(Expr::col("store").eq("MA"))
            .aggregate(vec!["store".into()], sum_amount())
            .sampled(Some(SampleSpec::Bernoulli {
                fraction: 0.5,
                seed: 1,
            }));
        match plan.lower().unwrap() {
            PhysicalPlan::Aggregate { query, .. } => assert!(query.sample.is_some()),
            _ => panic!("expected aggregate"),
        }
    }
}
