//! Row sampling for approximate query execution.
//!
//! SeeDB's sampling optimization (§3.3) runs all view queries against an
//! in-memory sample of the dataset, trading accuracy for latency. Both
//! techniques here are seeded so experiments are reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How to sample the scan domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SampleSpec {
    /// Keep each row independently with probability `fraction`.
    /// Sample size is binomial around `fraction * n`.
    Bernoulli {
        /// Keep probability in `[0, 1]`.
        fraction: f64,
        /// RNG seed (deterministic sampling).
        seed: u64,
    },
    /// Uniform fixed-size sample without replacement (Vitter's
    /// Algorithm R). Output is sorted by row id to preserve scan locality.
    Reservoir {
        /// Number of rows to keep (capped at the table size).
        size: usize,
        /// RNG seed.
        seed: u64,
    },
}

impl SampleSpec {
    /// Expected number of sampled rows out of `n`.
    pub fn expected_size(&self, n: usize) -> usize {
        match self {
            SampleSpec::Bernoulli { fraction, .. } => {
                (n as f64 * fraction.clamp(0.0, 1.0)).round() as usize
            }
            SampleSpec::Reservoir { size, .. } => (*size).min(n),
        }
    }
}

/// Sample row ids from `0..n_rows` according to `spec`.
pub fn sample_rows(n_rows: usize, spec: &SampleSpec) -> Vec<u32> {
    match *spec {
        SampleSpec::Bernoulli { fraction, seed } => {
            let p = fraction.clamp(0.0, 1.0);
            if p >= 1.0 {
                return (0..n_rows as u32).collect();
            }
            if p <= 0.0 {
                return Vec::new();
            }
            let mut rng = StdRng::seed_from_u64(seed);
            (0..n_rows as u32)
                .filter(|_| rng.gen::<f64>() < p)
                .collect()
        }
        SampleSpec::Reservoir { size, seed } => {
            let k = size.min(n_rows);
            if k == 0 {
                return Vec::new();
            }
            let mut rng = StdRng::seed_from_u64(seed);
            let mut reservoir: Vec<u32> = (0..k as u32).collect();
            for i in k..n_rows {
                let j = rng.gen_range(0..=i);
                if j < k {
                    reservoir[j] = i as u32;
                }
            }
            reservoir.sort_unstable();
            reservoir
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bernoulli_edge_fractions() {
        assert_eq!(
            sample_rows(
                10,
                &SampleSpec::Bernoulli {
                    fraction: 1.0,
                    seed: 1
                }
            )
            .len(),
            10
        );
        assert_eq!(
            sample_rows(
                10,
                &SampleSpec::Bernoulli {
                    fraction: 0.0,
                    seed: 1
                }
            )
            .len(),
            0
        );
        // Out-of-range fractions are clamped rather than panicking.
        assert_eq!(
            sample_rows(
                10,
                &SampleSpec::Bernoulli {
                    fraction: 2.0,
                    seed: 1
                }
            )
            .len(),
            10
        );
    }

    #[test]
    fn bernoulli_is_deterministic_per_seed() {
        let a = sample_rows(
            1000,
            &SampleSpec::Bernoulli {
                fraction: 0.3,
                seed: 42,
            },
        );
        let b = sample_rows(
            1000,
            &SampleSpec::Bernoulli {
                fraction: 0.3,
                seed: 42,
            },
        );
        let c = sample_rows(
            1000,
            &SampleSpec::Bernoulli {
                fraction: 0.3,
                seed: 43,
            },
        );
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn bernoulli_size_near_expectation() {
        let s = sample_rows(
            100_000,
            &SampleSpec::Bernoulli {
                fraction: 0.1,
                seed: 7,
            },
        );
        let n = s.len() as f64;
        assert!((9_000.0..11_000.0).contains(&n), "got {n}");
    }

    #[test]
    fn reservoir_exact_size_and_sorted() {
        let s = sample_rows(10_000, &SampleSpec::Reservoir { size: 100, seed: 5 });
        assert_eq!(s.len(), 100);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(s.iter().all(|&r| r < 10_000));
    }

    #[test]
    fn reservoir_larger_than_table_keeps_everything() {
        let s = sample_rows(10, &SampleSpec::Reservoir { size: 100, seed: 5 });
        assert_eq!(s, (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn reservoir_zero_size() {
        assert!(sample_rows(10, &SampleSpec::Reservoir { size: 0, seed: 5 }).is_empty());
    }

    #[test]
    fn reservoir_is_roughly_uniform() {
        // Sample 1 element from 0..10 many times; each value should appear.
        let mut seen = [0u32; 10];
        for seed in 0..2000 {
            let s = sample_rows(10, &SampleSpec::Reservoir { size: 1, seed });
            seen[s[0] as usize] += 1;
        }
        for (v, &count) in seen.iter().enumerate() {
            assert!(count > 100, "value {v} drawn only {count} times");
        }
    }

    #[test]
    fn expected_size_helper() {
        assert_eq!(
            SampleSpec::Bernoulli {
                fraction: 0.25,
                seed: 0
            }
            .expected_size(1000),
            250
        );
        assert_eq!(
            SampleSpec::Reservoir { size: 50, seed: 0 }.expected_size(20),
            20
        );
    }
}
