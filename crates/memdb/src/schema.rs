//! Table schemas with SeeDB's snowflake-schema attribute roles.
//!
//! SeeDB (§2 of the paper) assumes a database with *dimension attributes*
//! `A` (group-by candidates) and *measure attributes* `M` (aggregation
//! candidates). The role is part of the column definition so the view
//! enumerator can read the view space straight off the schema.

use crate::error::{DbError, DbResult};
use crate::value::DataType;

/// The analytical role an attribute plays in SeeDB's view space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// Grouping candidate (`a ∈ A`): categorical or low-cardinality.
    Dimension,
    /// Aggregation candidate (`m ∈ M`): numeric quantity.
    Measure,
    /// Neither — identifiers, free text, timestamps used only for display.
    Ignore,
}

/// Semantic hint used by the frontend to pick a chart type
/// (paper §3.2: "data type (e.g. ordinal, numeric), ... semantics
/// (e.g. geography vs. time series)").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Semantic {
    /// No special semantics.
    None,
    /// Geographic entity (state, city, region...).
    Geography,
    /// A point or bucket in time (month, quarter, date...).
    Temporal,
    /// Values with a natural order (small/medium/large).
    Ordinal,
}

/// Definition of one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name, unique within the table.
    pub name: String,
    /// Storage type.
    pub dtype: DataType,
    /// SeeDB role (dimension / measure / ignore).
    pub role: Role,
    /// Semantic hint for visualization.
    pub semantic: Semantic,
}

impl ColumnDef {
    /// A dimension column.
    pub fn dimension(name: &str, dtype: DataType) -> Self {
        ColumnDef {
            name: name.to_string(),
            dtype,
            role: Role::Dimension,
            semantic: Semantic::None,
        }
    }

    /// A numeric measure column.
    pub fn measure(name: &str, dtype: DataType) -> Self {
        ColumnDef {
            name: name.to_string(),
            dtype,
            role: Role::Measure,
            semantic: Semantic::None,
        }
    }

    /// A column excluded from the view space.
    pub fn ignored(name: &str, dtype: DataType) -> Self {
        ColumnDef {
            name: name.to_string(),
            dtype,
            role: Role::Ignore,
            semantic: Semantic::None,
        }
    }

    /// Attach a semantic hint (builder style).
    pub fn with_semantic(mut self, semantic: Semantic) -> Self {
        self.semantic = semantic;
        self
    }
}

/// An ordered collection of column definitions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    /// Build a schema from column definitions.
    ///
    /// # Errors
    /// Fails if two columns share a name or a measure column is
    /// non-numeric.
    pub fn new(columns: Vec<ColumnDef>) -> DbResult<Self> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|p| p.name == c.name) {
                return Err(DbError::Schema(format!(
                    "duplicate column name: {}",
                    c.name
                )));
            }
            if c.role == Role::Measure && !c.dtype.is_numeric() {
                return Err(DbError::Schema(format!(
                    "measure column {} must be numeric, got {}",
                    c.name, c.dtype
                )));
            }
        }
        Ok(Schema { columns })
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// All column definitions in order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> DbResult<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| DbError::UnknownColumn(name.to_string()))
    }

    /// Column definition by name.
    pub fn column(&self, name: &str) -> DbResult<&ColumnDef> {
        self.index_of(name).map(|i| &self.columns[i])
    }

    /// Column definition by position.
    pub fn column_at(&self, idx: usize) -> &ColumnDef {
        &self.columns[idx]
    }

    /// Names of all dimension attributes (SeeDB's `A`).
    pub fn dimensions(&self) -> Vec<&str> {
        self.columns
            .iter()
            .filter(|c| c.role == Role::Dimension)
            .map(|c| c.name.as_str())
            .collect()
    }

    /// Names of all measure attributes (SeeDB's `M`).
    pub fn measures(&self) -> Vec<&str> {
        self.columns
            .iter()
            .filter(|c| c.role == Role::Measure)
            .map(|c| c.name.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            ColumnDef::dimension("store", DataType::Str).with_semantic(Semantic::Geography),
            ColumnDef::dimension("month", DataType::Str).with_semantic(Semantic::Temporal),
            ColumnDef::measure("amount", DataType::Float64),
            ColumnDef::ignored("order_id", DataType::Int64),
        ])
        .unwrap()
    }

    #[test]
    fn dimension_and_measure_listing() {
        let s = sample();
        assert_eq!(s.dimensions(), vec!["store", "month"]);
        assert_eq!(s.measures(), vec!["amount"]);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn duplicate_names_rejected() {
        let r = Schema::new(vec![
            ColumnDef::dimension("a", DataType::Str),
            ColumnDef::measure("a", DataType::Int64),
        ]);
        assert!(matches!(r, Err(DbError::Schema(_))));
    }

    #[test]
    fn non_numeric_measure_rejected() {
        let r = Schema::new(vec![ColumnDef::measure("m", DataType::Str)]);
        assert!(matches!(r, Err(DbError::Schema(_))));
    }

    #[test]
    fn index_lookup() {
        let s = sample();
        assert_eq!(s.index_of("amount").unwrap(), 2);
        assert!(matches!(s.index_of("nope"), Err(DbError::UnknownColumn(_))));
    }

    #[test]
    fn semantics_roundtrip() {
        let s = sample();
        assert_eq!(s.column("store").unwrap().semantic, Semantic::Geography);
        assert_eq!(s.column("month").unwrap().semantic, Semantic::Temporal);
        assert_eq!(s.column("amount").unwrap().semantic, Semantic::None);
    }
}
