//! Immutable column segments — the storage unit of live ingest.
//!
//! A [`crate::Column`] is an ordered list of [`ColumnSegment`]s behind
//! `Arc`s. Segments are sealed (frozen) when a table is registered with
//! a [`crate::Database`] and whenever rows are appended through
//! [`crate::Database::append_rows`]: the appended rows form one *new*
//! segment while every existing segment is shared, untouched, with the
//! previous table version. Snapshots therefore cost a handful of
//! refcount bumps, in-flight scans keep reading the version they
//! started on, and the serving layer can refresh cached partial
//! aggregates by scanning only the delta segments (row ids and
//! dictionary codes are stable across appends).
//!
//! String segments store `u32` codes into their column's shared
//! dictionary (one dictionary per column *version*, extended
//! copy-on-write on append so old codes never move).

use crate::value::{DataType, Value};

/// Validity (non-null) mask. `None` means every row is valid, which is
/// the common case and costs nothing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Validity {
    mask: Option<Vec<bool>>,
}

impl Validity {
    /// Rebuild from a stored mask (`None` = all valid). Used by the
    /// durable store to reconstruct segments bit-for-bit.
    pub(crate) fn from_mask(mask: Option<Vec<bool>>) -> Self {
        Validity { mask }
    }

    /// Is row `i` valid (non-null)? Rows beyond the recorded mask are valid.
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        match &self.mask {
            None => true,
            Some(m) => m.get(i).copied().unwrap_or(true),
        }
    }

    /// Record validity for the next row (row index `len`).
    pub(crate) fn push(&mut self, len: usize, valid: bool) {
        match (&mut self.mask, valid) {
            (None, true) => {}
            (None, false) => {
                let mut m = vec![true; len];
                m.push(false);
                self.mask = Some(m);
            }
            (Some(m), v) => m.push(v),
        }
    }

    /// Number of nulls among the first `len` rows.
    pub fn null_count(&self, len: usize) -> usize {
        match &self.mask {
            None => 0,
            Some(m) => m.iter().take(len).filter(|v| !**v).count(),
        }
    }
}

/// Typed payload of one segment. String segments hold dictionary codes;
/// the dictionary itself lives on the owning [`crate::Column`], shared
/// by all of its segments.
#[derive(Debug, Clone)]
pub enum SegmentData {
    /// 64-bit integers (unspecified where invalid).
    Int64(Vec<i64>),
    /// 64-bit floats (unspecified where invalid).
    Float64(Vec<f64>),
    /// Dictionary codes into the owning column's dictionary.
    Str(Vec<u32>),
    /// Booleans (unspecified where invalid).
    Bool(Vec<bool>),
}

/// One immutable, typed chunk of a column: dense values plus a validity
/// mask. Local indices run `0..len()`; the owning column maps logical
/// row ids onto (segment, local index) pairs.
#[derive(Debug, Clone)]
pub struct ColumnSegment {
    data: SegmentData,
    validity: Validity,
}

impl ColumnSegment {
    /// Rebuild a sealed segment from its stored parts (the durable
    /// store's reconstruction path).
    pub(crate) fn from_parts(data: SegmentData, validity: Validity) -> Self {
        ColumnSegment { data, validity }
    }

    /// An empty segment of the given type.
    pub(crate) fn new(dtype: DataType) -> Self {
        ColumnSegment {
            data: match dtype {
                DataType::Int64 => SegmentData::Int64(Vec::new()),
                DataType::Float64 => SegmentData::Float64(Vec::new()),
                DataType::Str => SegmentData::Str(Vec::new()),
                DataType::Bool => SegmentData::Bool(Vec::new()),
            },
            validity: Validity::default(),
        }
    }

    /// An empty segment with pre-reserved capacity.
    pub(crate) fn with_capacity(dtype: DataType, cap: usize) -> Self {
        let mut s = ColumnSegment::new(dtype);
        match &mut s.data {
            SegmentData::Int64(v) => v.reserve(cap),
            SegmentData::Float64(v) => v.reserve(cap),
            SegmentData::Str(v) => v.reserve(cap),
            SegmentData::Bool(v) => v.reserve(cap),
        }
        s
    }

    /// This segment's data type.
    pub fn data_type(&self) -> DataType {
        match &self.data {
            SegmentData::Int64(_) => DataType::Int64,
            SegmentData::Float64(_) => DataType::Float64,
            SegmentData::Str(_) => DataType::Str,
            SegmentData::Bool(_) => DataType::Bool,
        }
    }

    /// Number of rows in this segment.
    pub fn len(&self) -> usize {
        match &self.data {
            SegmentData::Int64(v) => v.len(),
            SegmentData::Float64(v) => v.len(),
            SegmentData::Str(v) => v.len(),
            SegmentData::Bool(v) => v.len(),
        }
    }

    /// True if the segment holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The typed payload (for segment-at-a-time scan loops).
    pub fn data(&self) -> &SegmentData {
        &self.data
    }

    /// Is local row `i` non-null?
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        self.validity.is_valid(i)
    }

    /// Number of null rows.
    pub fn null_count(&self) -> usize {
        self.validity.null_count(self.len())
    }

    /// Numeric view of local row `i`: `None` when null or non-numeric.
    #[inline]
    pub fn f64_at(&self, i: usize) -> Option<f64> {
        if !self.validity.is_valid(i) {
            return None;
        }
        match &self.data {
            SegmentData::Int64(v) => Some(v[i] as f64),
            SegmentData::Float64(v) => Some(v[i]),
            _ => None,
        }
    }

    /// Dictionary code of local row `i` for string segments (`None`
    /// when null or non-string).
    #[inline]
    pub fn code_at(&self, i: usize) -> Option<u32> {
        if !self.validity.is_valid(i) {
            return None;
        }
        match &self.data {
            SegmentData::Str(codes) => Some(codes[i]),
            _ => None,
        }
    }

    /// A 64-bit grouping key for local row `i`: the dictionary code for
    /// strings, the raw bits for ints/floats/bools; `None` when null.
    /// Equal values always produce equal bits within one column, so
    /// this is the hash/equality basis of group-by keys.
    #[inline]
    pub fn key_bits(&self, i: usize) -> Option<u64> {
        if !self.validity.is_valid(i) {
            return None;
        }
        Some(match &self.data {
            SegmentData::Int64(v) => v[i] as u64,
            SegmentData::Float64(v) => v[i].to_bits(),
            SegmentData::Str(codes) => codes[i] as u64,
            SegmentData::Bool(v) => v[i] as u64,
        })
    }

    /// Append one null placeholder.
    pub(crate) fn push_null(&mut self) {
        let len = self.len();
        self.validity.push(len, false);
        match &mut self.data {
            SegmentData::Int64(v) => v.push(0),
            SegmentData::Float64(v) => v.push(0.0),
            SegmentData::Str(v) => v.push(0),
            SegmentData::Bool(v) => v.push(false),
        }
    }

    /// Append one valid int (segment must be `Int64`).
    pub(crate) fn push_int(&mut self, x: i64) {
        let len = self.len();
        self.validity.push(len, true);
        match &mut self.data {
            SegmentData::Int64(v) => v.push(x),
            _ => unreachable!("push_int on non-int segment"),
        }
    }

    /// Append one valid float (segment must be `Float64`).
    pub(crate) fn push_float(&mut self, x: f64) {
        let len = self.len();
        self.validity.push(len, true);
        match &mut self.data {
            SegmentData::Float64(v) => v.push(x),
            _ => unreachable!("push_float on non-float segment"),
        }
    }

    /// Append one valid dictionary code (segment must be `Str`).
    pub(crate) fn push_code(&mut self, code: u32) {
        let len = self.len();
        self.validity.push(len, true);
        match &mut self.data {
            SegmentData::Str(v) => v.push(code),
            _ => unreachable!("push_code on non-str segment"),
        }
    }

    /// Append one valid bool (segment must be `Bool`).
    pub(crate) fn push_bool(&mut self, x: bool) {
        let len = self.len();
        self.validity.push(len, true);
        match &mut self.data {
            SegmentData::Bool(v) => v.push(x),
            _ => unreachable!("push_bool on non-bool segment"),
        }
    }

    /// Materialize local row `i` as a [`Value`], resolving string codes
    /// through `dict` (the owning column's dictionary).
    pub fn value_at(&self, i: usize, dict: Option<&crate::column::StrDict>) -> Value {
        if !self.validity.is_valid(i) {
            return Value::Null;
        }
        match &self.data {
            SegmentData::Int64(v) => Value::Int(v[i]),
            SegmentData::Float64(v) => Value::Float(v[i]),
            SegmentData::Str(codes) => Value::Str(
                dict.expect("string segments require their column dictionary")
                    .value(codes[i])
                    .to_string(),
            ),
            SegmentData::Bool(v) => Value::Bool(v[i]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_pushes_and_reads() {
        let mut s = ColumnSegment::new(DataType::Float64);
        s.push_float(1.5);
        s.push_null();
        s.push_float(2.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.f64_at(0), Some(1.5));
        assert_eq!(s.f64_at(1), None);
        assert_eq!(s.f64_at(2), Some(2.0));
        assert_eq!(s.null_count(), 1);
    }

    #[test]
    fn key_bits_match_value_identity() {
        let mut s = ColumnSegment::new(DataType::Int64);
        s.push_int(-1);
        s.push_int(-1);
        s.push_int(2);
        s.push_null();
        assert_eq!(s.key_bits(0), s.key_bits(1));
        assert_ne!(s.key_bits(0), s.key_bits(2));
        assert_eq!(s.key_bits(3), None);

        let mut f = ColumnSegment::new(DataType::Float64);
        f.push_float(0.0);
        f.push_float(-0.0);
        // Signed zeros are distinct grouping keys at the bits level —
        // matching the pre-segment engine's behavior.
        assert_ne!(f.key_bits(0), f.key_bits(1));
    }

    #[test]
    fn validity_lazily_allocated() {
        let mut s = ColumnSegment::new(DataType::Bool);
        s.push_bool(true);
        assert_eq!(s.null_count(), 0);
        s.push_null();
        assert_eq!(s.null_count(), 1);
        assert!(s.is_valid(0));
        assert!(!s.is_valid(1));
    }
}
