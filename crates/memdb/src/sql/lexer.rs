//! SQL tokenizer.

use crate::error::{DbError, DbResult};

/// SQL keywords recognized by the parser (stored uppercase).
const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "AND", "OR", "NOT", "IN", "IS", "NULL", "AS", "TRUE",
    "FALSE", "COUNT", "SUM", "AVG", "MIN", "MAX",
];

/// A SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword (uppercased).
    Keyword(String),
    /// Identifier (original case preserved).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (quotes removed, `''` unescaped).
    Str(String),
    /// Comparison or arithmetic operator: `=`, `<>`, `!=`, `<`, `<=`, `>`,
    /// `>=`, `-`.
    Op(String),
    /// Single-character symbol: `(`, `)`, `,`, `*`, `;`.
    Symbol(char),
    /// End of input.
    Eof,
}

/// A token plus the 1-based byte position where it starts in the input
/// (Eof carries input length + 1). Parser errors surface this position
/// so the analyst can find the offending token.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Token,
    /// 1-based byte offset of the token's first character.
    pub pos: usize,
}

/// Streaming tokenizer over SQL text.
pub struct Lexer<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// A lexer over `input`.
    pub fn new(input: &'a str) -> Self {
        Lexer {
            input: input.as_bytes(),
            pos: 0,
        }
    }

    /// Tokenize the whole input, recording each token's start position.
    ///
    /// # Errors
    /// `Parse` for unterminated strings, malformed numbers, or unexpected
    /// characters; messages carry the 1-based byte position.
    pub fn tokenize(mut self) -> DbResult<Vec<Spanned>> {
        let mut out = Vec::new();
        loop {
            self.skip_whitespace();
            if self.pos >= self.input.len() {
                break;
            }
            let start = self.pos + 1;
            let c = self.input[self.pos];
            let tok = match c {
                b'(' | b')' | b',' | b'*' | b';' => {
                    self.pos += 1;
                    Token::Symbol(c as char)
                }
                b'=' => {
                    self.pos += 1;
                    Token::Op("=".to_string())
                }
                b'<' => {
                    self.pos += 1;
                    if self.peek_byte() == Some(b'=') {
                        self.pos += 1;
                        Token::Op("<=".to_string())
                    } else if self.peek_byte() == Some(b'>') {
                        self.pos += 1;
                        Token::Op("<>".to_string())
                    } else {
                        Token::Op("<".to_string())
                    }
                }
                b'>' => {
                    self.pos += 1;
                    if self.peek_byte() == Some(b'=') {
                        self.pos += 1;
                        Token::Op(">=".to_string())
                    } else {
                        Token::Op(">".to_string())
                    }
                }
                b'!' => {
                    self.pos += 1;
                    if self.peek_byte() == Some(b'=') {
                        self.pos += 1;
                        Token::Op("!=".to_string())
                    } else {
                        return Err(DbError::Parse(format!(
                            "unexpected '!' at position {start}"
                        )));
                    }
                }
                b'-' => {
                    self.pos += 1;
                    Token::Op("-".to_string())
                }
                b'\'' => self.string()?,
                b'0'..=b'9' => self.number()?,
                c if c.is_ascii_alphabetic() || c == b'_' || c == b'"' => self.word()?,
                other => {
                    return Err(DbError::Parse(format!(
                        "unexpected character '{}' at position {start}",
                        other as char
                    )))
                }
            };
            out.push(Spanned { tok, pos: start });
        }
        if out.is_empty() {
            return Err(DbError::Parse("empty input".to_string()));
        }
        out.push(Spanned {
            tok: Token::Eof,
            pos: self.input.len() + 1,
        });
        Ok(out)
    }

    fn peek_byte(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while self
            .input
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn string(&mut self) -> DbResult<Token> {
        debug_assert_eq!(self.input[self.pos], b'\'');
        let start = self.pos + 1;
        self.pos += 1;
        let mut s = String::new();
        loop {
            match self.input.get(self.pos) {
                None => {
                    return Err(DbError::Parse(format!(
                        "unterminated string literal starting at position {start}"
                    )))
                }
                Some(b'\'') => {
                    // '' escapes a single quote.
                    if self.input.get(self.pos + 1) == Some(&b'\'') {
                        s.push('\'');
                        self.pos += 2;
                    } else {
                        self.pos += 1;
                        return Ok(Token::Str(s));
                    }
                }
                Some(&c) => {
                    s.push(c as char);
                    self.pos += 1;
                }
            }
        }
    }

    fn number(&mut self) -> DbResult<Token> {
        let start = self.pos;
        let mut saw_dot = false;
        let mut saw_exp = false;
        while let Some(&c) = self.input.get(self.pos) {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' if !saw_dot && !saw_exp => {
                    saw_dot = true;
                    self.pos += 1;
                }
                b'e' | b'E' if !saw_exp => {
                    saw_exp = true;
                    self.pos += 1;
                    if matches!(self.peek_byte(), Some(b'+') | Some(b'-')) {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| DbError::Parse("non-utf8 number".to_string()))?;
        if saw_dot || saw_exp {
            text.parse::<f64>().map(Token::Float).map_err(|_| {
                DbError::Parse(format!(
                    "bad float literal: {text} at position {}",
                    start + 1
                ))
            })
        } else {
            text.parse::<i64>().map(Token::Int).map_err(|_| {
                DbError::Parse(format!("bad int literal: {text} at position {}", start + 1))
            })
        }
    }

    fn word(&mut self) -> DbResult<Token> {
        // Double-quoted identifiers keep exact case and allow any chars.
        if self.input[self.pos] == b'"' {
            let open = self.pos + 1;
            self.pos += 1;
            let start = self.pos;
            while let Some(&c) = self.input.get(self.pos) {
                if c == b'"' {
                    let s = std::str::from_utf8(&self.input[start..self.pos])
                        .map_err(|_| DbError::Parse("non-utf8 identifier".to_string()))?;
                    self.pos += 1;
                    return Ok(Token::Ident(s.to_string()));
                }
                self.pos += 1;
            }
            return Err(DbError::Parse(format!(
                "unterminated quoted identifier starting at position {open}"
            )));
        }
        let start = self.pos;
        while self
            .input
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_')
        {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| DbError::Parse("non-utf8 identifier".to_string()))?;
        let upper = s.to_ascii_uppercase();
        if KEYWORDS.contains(&upper.as_str()) {
            Ok(Token::Keyword(upper))
        } else {
            Ok(Token::Ident(s.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(s: &str) -> Vec<Token> {
        Lexer::new(s)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|s| s.tok)
            .collect()
    }

    #[test]
    fn keywords_and_identifiers() {
        let t = lex("SELECT store FROM Sales");
        assert_eq!(
            t,
            vec![
                Token::Keyword("SELECT".into()),
                Token::Ident("store".into()),
                Token::Keyword("FROM".into()),
                Token::Ident("Sales".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn operators() {
        let t = lex("a <= 1 AND b <> 2 AND c != 3 AND d >= 4");
        assert!(t.contains(&Token::Op("<=".into())));
        assert!(t.contains(&Token::Op("<>".into())));
        assert!(t.contains(&Token::Op("!=".into())));
        assert!(t.contains(&Token::Op(">=".into())));
    }

    #[test]
    fn numbers() {
        let t = lex("1 2.5 1e3 1.5E-2");
        assert_eq!(t[0], Token::Int(1));
        assert_eq!(t[1], Token::Float(2.5));
        assert_eq!(t[2], Token::Float(1000.0));
        assert_eq!(t[3], Token::Float(0.015));
    }

    #[test]
    fn strings_with_escapes() {
        let t = lex("'hello' 'O''Brien' ''");
        assert_eq!(t[0], Token::Str("hello".into()));
        assert_eq!(t[1], Token::Str("O'Brien".into()));
        assert_eq!(t[2], Token::Str("".into()));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(Lexer::new("'oops").tokenize().is_err());
    }

    #[test]
    fn quoted_identifiers() {
        let t = lex("\"Group\" \"weird name\"");
        assert_eq!(t[0], Token::Ident("Group".into()));
        assert_eq!(t[1], Token::Ident("weird name".into()));
    }

    #[test]
    fn bare_bang_errors() {
        assert!(Lexer::new("a ! b").tokenize().is_err());
    }

    #[test]
    fn tokens_carry_one_based_positions() {
        let spanned = Lexer::new("SELECT store FROM Sales").tokenize().unwrap();
        let positions: Vec<usize> = spanned.iter().map(|s| s.pos).collect();
        // S=1, store=8, FROM=14, Sales=19, Eof=24.
        assert_eq!(positions, vec![1, 8, 14, 19, 24]);
    }

    #[test]
    fn lex_errors_carry_positions() {
        let e = Lexer::new("a ! b").tokenize().unwrap_err().to_string();
        assert!(e.contains("position 3"), "{e}");
        let e = Lexer::new("x = 'oops").tokenize().unwrap_err().to_string();
        assert!(e.contains("position 5"), "{e}");
    }

    #[test]
    fn case_insensitive_keywords() {
        let t = lex("select Select SELECT");
        assert!(t[..3]
            .iter()
            .all(|tok| *tok == Token::Keyword("SELECT".into())));
    }
}
