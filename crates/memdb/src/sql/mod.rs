//! A SQL subset parser.
//!
//! Covers the query class SeeDB accepts from the analyst (paper §2): a
//! selection over one fact table, optionally already carrying a group-by
//! aggregation:
//!
//! ```sql
//! SELECT store, SUM(amount) AS total
//! FROM sales
//! WHERE product = 'Laserwave' AND amount > 10
//! GROUP BY store
//! ```
//!
//! Supported: `SELECT` lists of columns and aggregates
//! (`COUNT/SUM/AVG/MIN/MAX`, `COUNT(*)`, `AS` aliases, or `*`), `FROM` a
//! single table, `WHERE` with `=`, `<>`, `!=`, `<`, `<=`, `>`, `>=`,
//! `AND`, `OR`, `NOT`, `IN (...)`, `IS [NOT] NULL`, parentheses, string /
//! numeric / boolean / NULL literals, and `GROUP BY`.

mod lexer;

use lexer::{Lexer, Spanned, Token};

use crate::error::{DbError, DbResult};
use crate::exec::{AggFunc, AggSpec, Query};
use crate::expr::{CmpOp, Expr};
use crate::value::Value;

/// Parse a SQL `SELECT` statement into an executable [`Query`].
///
/// A query with no aggregates and no `GROUP BY` (e.g.
/// `SELECT * FROM sales WHERE ...` — the analyst's subset-selection query
/// `Q` in the paper) parses into a `COUNT(*)` global aggregate carrying
/// the filter; SeeDB only ever needs the filter from it. Use
/// [`parse_selection`] to get just the table and filter.
///
/// # Errors
/// `Parse` on malformed input; the message points at the offending token.
pub fn parse_query(sql: &str) -> DbResult<Query> {
    Parser::new(sql)?.query()
}

/// The analyst's subset-selection query: table + optional filter.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// Fact table name.
    pub table: String,
    /// `WHERE` predicate, if any.
    pub filter: Option<Expr>,
}

/// Parse `SELECT * FROM t [WHERE ...]` (or any SELECT — the projection is
/// ignored) into a [`Selection`].
///
/// # Errors
/// `Parse` on malformed input.
pub fn parse_selection(sql: &str) -> DbResult<Selection> {
    let p = Parser::new(sql)?.query_allow_star()?;
    Ok(Selection {
        table: p.table,
        filter: p.filter,
    })
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn new(sql: &str) -> DbResult<Self> {
        let tokens = Lexer::new(sql).tokenize()?;
        Ok(Parser { tokens, pos: 0 })
    }

    fn peek(&self) -> &Token {
        self.tokens
            .get(self.pos)
            .map(|s| &s.tok)
            .unwrap_or(&Token::Eof)
    }

    fn next(&mut self) -> Token {
        let t = self
            .tokens
            .get(self.pos)
            .map(|s| s.tok.clone())
            .unwrap_or(Token::Eof);
        self.pos += 1;
        t
    }

    /// 1-based byte position of the token at `idx` (clamped to Eof).
    fn pos_at(&self, idx: usize) -> usize {
        self.tokens
            .get(idx.min(self.tokens.len().saturating_sub(1)))
            .map(|s| s.pos)
            .unwrap_or(1)
    }

    /// Position of the token `peek` would return.
    fn cur_pos(&self) -> usize {
        self.pos_at(self.pos)
    }

    /// Position of the token `next` just consumed.
    fn prev_pos(&self) -> usize {
        self.pos_at(self.pos.saturating_sub(1))
    }

    fn expect_keyword(&mut self, kw: &str) -> DbResult<()> {
        match self.next() {
            Token::Keyword(k) if k == kw => Ok(()),
            other => Err(DbError::Parse(format!(
                "expected {kw}, found {other:?} at position {}",
                self.prev_pos()
            ))),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Token::Keyword(k) if k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> DbResult<String> {
        match self.next() {
            Token::Ident(s) => Ok(s),
            other => Err(DbError::Parse(format!(
                "expected identifier, found {other:?} at position {}",
                self.prev_pos()
            ))),
        }
    }

    fn query(&mut self) -> DbResult<Query> {
        let q = self.query_allow_star()?;
        Ok(q)
    }

    fn query_allow_star(&mut self) -> DbResult<Query> {
        self.expect_keyword("SELECT")?;

        enum Item {
            Star,
            Column(String),
            Agg(AggSpec),
        }
        let mut items: Vec<Item> = Vec::new();
        loop {
            let item = match self.peek().clone() {
                Token::Symbol('*') => {
                    self.pos += 1;
                    Item::Star
                }
                Token::Keyword(kw) if agg_func(&kw).is_some() => {
                    self.pos += 1;
                    let func = agg_func(&kw).expect("checked above");
                    self.expect_symbol('(')?;
                    let column = match self.peek().clone() {
                        Token::Symbol('*') => {
                            self.pos += 1;
                            if func != AggFunc::Count {
                                return Err(DbError::Parse(format!(
                                    "{}(*) is only valid for COUNT at position {}",
                                    func.sql(),
                                    self.prev_pos()
                                )));
                            }
                            None
                        }
                        _ => Some(self.expect_ident()?),
                    };
                    self.expect_symbol(')')?;
                    let alias = if self.eat_keyword("AS") {
                        Some(self.expect_ident()?)
                    } else {
                        None
                    };
                    Item::Agg(AggSpec {
                        func,
                        column,
                        filter: None,
                        alias,
                    })
                }
                Token::Ident(name) => {
                    self.pos += 1;
                    Item::Column(name)
                }
                other => {
                    return Err(DbError::Parse(format!(
                        "expected select item, found {other:?} at position {}",
                        self.cur_pos()
                    )))
                }
            };
            items.push(item);
            if !self.eat_symbol(',') {
                break;
            }
        }

        self.expect_keyword("FROM")?;
        let table = self.expect_ident()?;

        let filter = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };

        let mut group_by: Vec<String> = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                group_by.push(self.expect_ident()?);
                if !self.eat_symbol(',') {
                    break;
                }
            }
        }

        match self.next() {
            Token::Eof => {}
            Token::Symbol(';') => match self.next() {
                Token::Eof => {}
                other => {
                    return Err(DbError::Parse(format!(
                        "trailing input: {other:?} at position {}",
                        self.prev_pos()
                    )))
                }
            },
            other => {
                return Err(DbError::Parse(format!(
                    "trailing input: {other:?} at position {}",
                    self.prev_pos()
                )))
            }
        }

        // Assemble: plain columns must match GROUP BY (or define it).
        let mut aggregates = Vec::new();
        let mut plain: Vec<String> = Vec::new();
        let mut star = false;
        for item in items {
            match item {
                Item::Star => star = true,
                Item::Column(c) => plain.push(c),
                Item::Agg(a) => aggregates.push(a),
            }
        }
        if star && (!plain.is_empty() || !aggregates.is_empty()) {
            return Err(DbError::Parse(
                "SELECT * cannot be combined with other select items".to_string(),
            ));
        }
        if !group_by.is_empty() {
            for c in &plain {
                if !group_by.contains(c) {
                    return Err(DbError::Parse(format!(
                        "column {c} appears in SELECT but not in GROUP BY"
                    )));
                }
            }
        } else if !plain.is_empty() && !aggregates.is_empty() {
            return Err(DbError::Parse(
                "non-aggregated columns require GROUP BY".to_string(),
            ));
        }
        if aggregates.is_empty() {
            // Subset-selection query (SELECT * / SELECT cols): SeeDB only
            // needs the filter; represent as COUNT(*).
            aggregates.push(AggSpec::count_star());
        }

        Ok(Query {
            table,
            filter,
            group_by,
            aggregates,
            sample: None,
        })
    }

    fn expect_symbol(&mut self, s: char) -> DbResult<()> {
        match self.next() {
            Token::Symbol(c) if c == s => Ok(()),
            other => Err(DbError::Parse(format!(
                "expected '{s}', found {other:?} at position {}",
                self.prev_pos()
            ))),
        }
    }

    fn eat_symbol(&mut self, s: char) -> bool {
        if matches!(self.peek(), Token::Symbol(c) if *c == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expr(&mut self) -> DbResult<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> DbResult<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("OR") {
            let right = self.and_expr()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> DbResult<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_keyword("AND") {
            let right = self.not_expr()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> DbResult<Expr> {
        if self.eat_keyword("NOT") {
            return Ok(self.not_expr()?.not());
        }
        self.comparison()
    }

    fn comparison(&mut self) -> DbResult<Expr> {
        let left = self.operand()?;
        // IS [NOT] NULL
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        // [NOT] IN (...)
        let (in_consumed, negated_in) = if self.eat_keyword("NOT") {
            self.expect_keyword("IN")?;
            (true, true)
        } else {
            (self.eat_keyword("IN"), false)
        };
        if in_consumed {
            self.expect_symbol('(')?;
            let mut list = Vec::new();
            loop {
                list.push(self.literal()?);
                if !self.eat_symbol(',') {
                    break;
                }
            }
            self.expect_symbol(')')?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated: negated_in,
            });
        }
        // Comparison operator.
        if let Some(op) = self.eat_cmp_op() {
            let right = self.operand()?;
            return Ok(Expr::Cmp {
                op,
                left: Box::new(left),
                right: Box::new(right),
            });
        }
        Ok(left)
    }

    fn eat_cmp_op(&mut self) -> Option<CmpOp> {
        let op = match self.peek() {
            Token::Op(s) => match s.as_str() {
                "=" => CmpOp::Eq,
                "<>" | "!=" => CmpOp::Ne,
                "<" => CmpOp::Lt,
                "<=" => CmpOp::Le,
                ">" => CmpOp::Gt,
                ">=" => CmpOp::Ge,
                _ => return None,
            },
            _ => return None,
        };
        self.pos += 1;
        Some(op)
    }

    fn operand(&mut self) -> DbResult<Expr> {
        match self.peek().clone() {
            Token::Symbol('(') => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect_symbol(')')?;
                Ok(e)
            }
            Token::Ident(name) => {
                self.pos += 1;
                Ok(Expr::Column(name))
            }
            _ => Ok(Expr::Literal(self.literal()?)),
        }
    }

    fn literal(&mut self) -> DbResult<Value> {
        match self.next() {
            Token::Int(i) => Ok(Value::Int(i)),
            Token::Float(f) => Ok(Value::Float(f)),
            Token::Str(s) => Ok(Value::Str(s)),
            Token::Keyword(k) if k == "TRUE" => Ok(Value::Bool(true)),
            Token::Keyword(k) if k == "FALSE" => Ok(Value::Bool(false)),
            Token::Keyword(k) if k == "NULL" => Ok(Value::Null),
            Token::Op(op) if op == "-" => match self.next() {
                Token::Int(i) => Ok(Value::Int(-i)),
                Token::Float(f) => Ok(Value::Float(-f)),
                other => Err(DbError::Parse(format!(
                    "expected number after '-', found {other:?} at position {}",
                    self.prev_pos()
                ))),
            },
            other => Err(DbError::Parse(format!(
                "expected literal, found {other:?} at position {}",
                self.prev_pos()
            ))),
        }
    }
}

fn agg_func(kw: &str) -> Option<AggFunc> {
    Some(match kw {
        "COUNT" => AggFunc::Count,
        "SUM" => AggFunc::Sum,
        "AVG" => AggFunc::Avg,
        "MIN" => AggFunc::Min,
        "MAX" => AggFunc::Max,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paper_query_q_prime() {
        let q = parse_query(
            "SELECT store, SUM(amount) FROM Sales WHERE Product = 'Laserwave' GROUP BY store",
        )
        .unwrap();
        assert_eq!(q.table, "Sales");
        assert_eq!(q.group_by, vec!["store"]);
        assert_eq!(q.aggregates.len(), 1);
        assert_eq!(q.aggregates[0].func, AggFunc::Sum);
        assert_eq!(q.aggregates[0].column.as_deref(), Some("amount"));
        assert_eq!(q.filter.as_ref().unwrap().to_sql(), "Product = 'Laserwave'");
    }

    #[test]
    fn parse_paper_query_q_star() {
        let sel = parse_selection("SELECT * FROM Sales WHERE Product = 'Laserwave'").unwrap();
        assert_eq!(sel.table, "Sales");
        assert!(sel.filter.is_some());
    }

    #[test]
    fn parse_count_star_and_alias() {
        let q = parse_query("SELECT region, COUNT(*) AS n FROM t GROUP BY region").unwrap();
        assert_eq!(q.aggregates[0].column, None);
        assert_eq!(q.aggregates[0].alias.as_deref(), Some("n"));
    }

    #[test]
    fn parse_complex_where() {
        let q = parse_query(
            "SELECT COUNT(*) FROM t WHERE (a = 1 OR b <> 'x') AND NOT c >= 2.5 AND d IN (1, 2, 3) AND e IS NOT NULL",
        )
        .unwrap();
        let sql = q.filter.unwrap().to_sql();
        assert!(sql.contains("OR"));
        assert!(sql.contains("NOT"));
        assert!(sql.contains("IN (1, 2, 3)"));
        assert!(sql.contains("IS NOT NULL"));
    }

    #[test]
    fn parse_not_in() {
        let q = parse_query("SELECT COUNT(*) FROM t WHERE a NOT IN ('x', 'y')").unwrap();
        match q.filter.unwrap() {
            Expr::InList { negated, list, .. } => {
                assert!(negated);
                assert_eq!(list.len(), 2);
            }
            other => panic!("expected InList, got {other:?}"),
        }
    }

    #[test]
    fn parse_negative_numbers_and_booleans() {
        let q = parse_query("SELECT COUNT(*) FROM t WHERE a > -5 AND b = TRUE").unwrap();
        let sql = q.filter.unwrap().to_sql();
        assert!(sql.contains("-5"));
        assert!(sql.contains("true"));
    }

    #[test]
    fn select_column_not_in_group_by_rejected() {
        let r = parse_query("SELECT store, SUM(amount) FROM t GROUP BY region");
        assert!(matches!(r, Err(DbError::Parse(_))));
    }

    #[test]
    fn avg_star_rejected() {
        assert!(parse_query("SELECT AVG(*) FROM t").is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_query("SELECT COUNT(*) FROM t LIMIT 5").is_err());
        assert!(parse_query("SELECT COUNT(*) FROM t; extra").is_err());
    }

    #[test]
    fn trailing_semicolon_ok() {
        assert!(parse_query("SELECT COUNT(*) FROM t;").is_ok());
    }

    #[test]
    fn keywords_case_insensitive() {
        let q = parse_query("select store, sum(amount) from sales group by store").unwrap();
        assert_eq!(q.group_by, vec!["store"]);
    }

    #[test]
    fn string_escape() {
        let q = parse_query("SELECT COUNT(*) FROM t WHERE name = 'O''Brien'").unwrap();
        match q.filter.unwrap() {
            Expr::Cmp { right, .. } => {
                assert_eq!(*right, Expr::Literal(Value::from("O'Brien")));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn multiple_aggregates() {
        let q = parse_query(
            "SELECT store, SUM(amount), AVG(qty) AS avg_qty, MIN(amount) FROM t GROUP BY store",
        )
        .unwrap();
        assert_eq!(q.aggregates.len(), 3);
        assert_eq!(q.aggregates[1].alias.as_deref(), Some("avg_qty"));
    }

    #[test]
    fn select_star_with_other_items_rejected() {
        assert!(parse_query("SELECT *, store FROM t").is_err());
    }

    #[test]
    fn bare_columns_without_group_by_is_selection() {
        // SELECT a, b FROM t — projection-only; treated as a selection
        // carrying no aggregates (COUNT(*) placeholder).
        let q = parse_query("SELECT a, b FROM t").unwrap();
        assert!(q.group_by.is_empty());
        assert_eq!(q.aggregates.len(), 1);
        assert_eq!(q.aggregates[0].func, AggFunc::Count);
    }

    #[test]
    fn empty_input_rejected() {
        assert!(parse_query("").is_err());
        assert!(parse_query("   ").is_err());
    }

    #[test]
    fn parse_errors_point_at_offending_token() {
        // A misspelled WHERE lexes as an identifier and surfaces as
        // trailing input — at its own position, not a vague message.
        let e = parse_query("SELECT * FROM sales WHEREE price = 1")
            .unwrap_err()
            .to_string();
        assert!(e.contains("at position 21"), "{e}");

        // Missing right operand: the offending AND is at byte 34.
        let e = parse_query("SELECT COUNT(*) FROM t WHERE a = AND")
            .unwrap_err()
            .to_string();
        assert!(e.contains("at position 34"), "{e}");

        // Missing table name: points at end of input.
        let e = parse_query("SELECT * FROM ").unwrap_err().to_string();
        assert!(e.contains("at position 15"), "{e}");
    }
}
