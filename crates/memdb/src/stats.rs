//! Table and column statistics.
//!
//! These are the "metadata tables" SeeDB's Metadata Collector queries
//! (paper §3.1): table sizes, column types, data distributions, and the
//! inputs to variance-based and correlation-based view pruning.

use std::collections::HashMap;

use crate::column::{Column, StrDict};
use crate::error::{DbError, DbResult};
use crate::segment::SegmentData;
use crate::table::Table;
use crate::value::DataType;

/// Statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Column name.
    pub name: String,
    /// Rows in the table.
    pub row_count: usize,
    /// Null rows.
    pub null_count: usize,
    /// Distinct non-null values (the group count if used as a grouping
    /// attribute).
    pub distinct: usize,
    /// Mean of numeric values (numeric columns only).
    pub mean: Option<f64>,
    /// Population variance of numeric values (numeric columns only).
    pub value_variance: Option<f64>,
    /// Variance of the *relative frequency distribution* over distinct
    /// values. This is the paper's "variance" signal for dimension
    /// attributes: an attribute taking a single value has frequency
    /// distribution {1.0} with variance 0 relative to uniform spread.
    /// Defined as the population variance of per-value frequencies
    /// (each distinct value's share of non-null rows).
    pub frequency_variance: f64,
    /// Shannon entropy (nats) of the frequency distribution — a second
    /// skew signal exposed for pruning policies.
    pub entropy: f64,
}

impl ColumnStats {
    /// Number of groups this column produces as a grouping attribute:
    /// distinct non-null values, plus the NULL group when any row is
    /// null. (Used as `K` in phased execution's confidence bound.)
    pub fn group_count(&self) -> usize {
        self.distinct + usize::from(self.null_count > 0)
    }

    /// Collect statistics for `column` (named `name`).
    pub fn collect(name: &str, column: &Column) -> ColumnStats {
        let n = column.len();
        let null_count = column.null_count();
        let valid = n - null_count;

        // Frequency distribution over distinct values.
        let freqs: Vec<usize> = value_frequencies(column);
        let distinct = freqs.len();
        let (frequency_variance, entropy) = if valid == 0 || distinct == 0 {
            (0.0, 0.0)
        } else {
            let total = valid as f64;
            let probs: Vec<f64> = freqs.iter().map(|&c| c as f64 / total).collect();
            let mean_p = 1.0 / distinct as f64;
            let var = probs.iter().map(|p| (p - mean_p).powi(2)).sum::<f64>() / distinct as f64;
            let ent = -probs
                .iter()
                .filter(|&&p| p > 0.0)
                .map(|&p| p * p.ln())
                .sum::<f64>();
            (var, ent)
        };

        // Numeric moments (Welford), accumulated segment-at-a-time:
        // logical row order equals segment order, so the running
        // moments match a flat scan exactly.
        let (mean, value_variance) = if column.data_type().is_numeric() {
            let mut count = 0usize;
            let mut m = 0.0f64;
            let mut m2 = 0.0f64;
            for (_, seg) in column.segments() {
                for i in 0..seg.len() {
                    if let Some(v) = seg.f64_at(i) {
                        count += 1;
                        let delta = v - m;
                        m += delta / count as f64;
                        m2 += delta * (v - m);
                    }
                }
            }
            if count == 0 {
                (None, None)
            } else {
                (Some(m), Some(m2 / count as f64))
            }
        } else {
            (None, None)
        };

        ColumnStats {
            name: name.to_string(),
            row_count: n,
            null_count,
            distinct,
            mean,
            value_variance,
            frequency_variance,
            entropy,
        }
    }
}

/// Count occurrences of each distinct non-null value, iterating the
/// column's segment list (each segment is one tight typed loop).
fn value_frequencies(column: &Column) -> Vec<usize> {
    match column.data_type() {
        DataType::Str => {
            let mut counts = vec![0usize; column.str_dict().map_or(0, StrDict::len)];
            for (_, seg) in column.segments() {
                if let SegmentData::Str(codes) = seg.data() {
                    for (i, &c) in codes.iter().enumerate() {
                        if seg.is_valid(i) {
                            counts[c as usize] += 1;
                        }
                    }
                }
            }
            counts.into_iter().filter(|&c| c > 0).collect()
        }
        DataType::Int64 => {
            let mut counts: HashMap<i64, usize> = HashMap::new();
            for (_, seg) in column.segments() {
                if let SegmentData::Int64(data) = seg.data() {
                    for (i, &v) in data.iter().enumerate() {
                        if seg.is_valid(i) {
                            *counts.entry(v).or_insert(0) += 1;
                        }
                    }
                }
            }
            counts.into_values().collect()
        }
        DataType::Float64 => {
            let mut counts: HashMap<u64, usize> = HashMap::new();
            for (_, seg) in column.segments() {
                if let SegmentData::Float64(data) = seg.data() {
                    for (i, &v) in data.iter().enumerate() {
                        if seg.is_valid(i) {
                            *counts.entry(v.to_bits()).or_insert(0) += 1;
                        }
                    }
                }
            }
            counts.into_values().collect()
        }
        DataType::Bool => {
            let mut t = 0usize;
            let mut f = 0usize;
            for (_, seg) in column.segments() {
                if let SegmentData::Bool(data) = seg.data() {
                    for (i, &v) in data.iter().enumerate() {
                        if seg.is_valid(i) {
                            if v {
                                t += 1;
                            } else {
                                f += 1;
                            }
                        }
                    }
                }
            }
            [t, f].into_iter().filter(|&c| c > 0).collect()
        }
    }
}

/// Dense code for a row's value in an arbitrary column (for contingency
/// tables). Returns `None` for null rows. Iterates the segment list;
/// string columns reuse their dictionary codes directly (the dictionary
/// is shared across segments).
fn dense_codes(column: &Column) -> (Vec<Option<u32>>, usize) {
    let n = column.len();
    if column.data_type() == DataType::Str {
        let mut out = Vec::with_capacity(n);
        for (_, seg) in column.segments() {
            for i in 0..seg.len() {
                out.push(seg.code_at(i));
            }
        }
        return (out, column.str_dict().map_or(0, StrDict::len));
    }
    let mut map: HashMap<u64, u32> = HashMap::new();
    let mut out = Vec::with_capacity(n);
    for (_, seg) in column.segments() {
        for i in 0..seg.len() {
            match seg.key_bits(i) {
                None => out.push(None),
                Some(bits) => {
                    let next = map.len() as u32;
                    let code = *map.entry(bits).or_insert(next);
                    out.push(Some(code));
                }
            }
        }
    }
    let k = map.len();
    (out, k)
}

/// Cramér's V association between two columns of the same table, in
/// `[0, 1]`: 0 = independent, 1 = perfectly determined.
///
/// This drives SeeDB's correlated-attribute pruning: two dimension
/// attributes with V near 1 (e.g. airport name vs airport code) produce
/// near-identical views, so only one representative needs evaluating.
///
/// # Errors
/// `Internal` if the columns have different lengths.
pub fn cramers_v(a: &Column, b: &Column) -> DbResult<f64> {
    if a.len() != b.len() {
        return Err(DbError::Internal(format!(
            "cramers_v over columns of different lengths ({} vs {})",
            a.len(),
            b.len()
        )));
    }
    let (ca, ka) = dense_codes(a);
    let (cb, kb) = dense_codes(b);
    if ka < 2 || kb < 2 {
        // A constant column is vacuously "determined"; treat as fully
        // correlated so pruning collapses it with anything (a constant
        // grouping attribute is useless regardless).
        return Ok(1.0);
    }
    let mut table = vec![0u64; ka * kb];
    let mut row_tot = vec![0u64; ka];
    let mut col_tot = vec![0u64; kb];
    let mut n = 0u64;
    for (x, y) in ca.iter().zip(cb.iter()) {
        if let (Some(x), Some(y)) = (x, y) {
            table[*x as usize * kb + *y as usize] += 1;
            row_tot[*x as usize] += 1;
            col_tot[*y as usize] += 1;
            n += 1;
        }
    }
    if n == 0 {
        return Ok(0.0);
    }
    let nf = n as f64;
    let mut chi2 = 0.0f64;
    for i in 0..ka {
        if row_tot[i] == 0 {
            continue;
        }
        for j in 0..kb {
            if col_tot[j] == 0 {
                continue;
            }
            let expected = row_tot[i] as f64 * col_tot[j] as f64 / nf;
            let observed = table[i * kb + j] as f64;
            chi2 += (observed - expected).powi(2) / expected;
        }
    }
    let min_dim = (ka.min(kb) - 1) as f64;
    if min_dim == 0.0 {
        return Ok(1.0);
    }
    Ok((chi2 / (nf * min_dim)).sqrt().min(1.0))
}

/// Statistics for a whole table.
#[derive(Debug, Clone)]
pub struct TableStats {
    /// Table name.
    pub table: String,
    /// Row count.
    pub row_count: usize,
    /// Per-column statistics, in schema order.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Collect statistics for every column of `table`.
    pub fn collect(table: &Table) -> TableStats {
        let columns = table
            .schema()
            .columns()
            .iter()
            .enumerate()
            .map(|(i, def)| ColumnStats::collect(&def.name, table.column_at(i)))
            .collect();
        TableStats {
            table: table.name().to_string(),
            row_count: table.num_rows(),
            columns,
        }
    }

    /// Stats for one column by name.
    ///
    /// # Errors
    /// `UnknownColumn` if absent.
    pub fn column(&self, name: &str) -> DbResult<&ColumnStats> {
        self.columns
            .iter()
            .find(|c| c.name == name)
            .ok_or_else(|| DbError::UnknownColumn(name.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, Schema};
    use crate::value::{DataType, Value};

    fn table_with(col: &str, dtype: DataType, values: Vec<Value>) -> Table {
        let schema = Schema::new(vec![ColumnDef::dimension(col, dtype)]).unwrap();
        let mut t = Table::new("t", schema);
        for v in values {
            t.push_row(vec![v]).unwrap();
        }
        t
    }

    #[test]
    fn numeric_moments() {
        let t = table_with(
            "m",
            DataType::Float64,
            vec![1.0.into(), 2.0.into(), 3.0.into(), 4.0.into()],
        );
        let s = ColumnStats::collect("m", t.column("m").unwrap());
        assert_eq!(s.mean, Some(2.5));
        assert!((s.value_variance.unwrap() - 1.25).abs() < 1e-12);
        assert_eq!(s.distinct, 4);
    }

    #[test]
    fn constant_column_has_zero_entropy_and_max_freq_variance_zero() {
        let t = table_with("d", DataType::Str, vec!["a".into(), "a".into(), "a".into()]);
        let s = ColumnStats::collect("d", t.column("d").unwrap());
        assert_eq!(s.distinct, 1);
        assert_eq!(s.entropy, 0.0);
        // Single value: freq dist {1.0}, variance vs uniform(1) = 0.
        assert_eq!(s.frequency_variance, 0.0);
    }

    #[test]
    fn uniform_column_has_zero_frequency_variance() {
        let t = table_with(
            "d",
            DataType::Str,
            vec![
                "a".into(),
                "b".into(),
                "c".into(),
                "a".into(),
                "b".into(),
                "c".into(),
            ],
        );
        let s = ColumnStats::collect("d", t.column("d").unwrap());
        assert!(s.frequency_variance.abs() < 1e-12);
        assert!((s.entropy - 3.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn skewed_column_has_positive_frequency_variance() {
        let mut vals: Vec<Value> = vec!["hot".into(); 98];
        vals.push("cold".into());
        vals.push("warm".into());
        let t = table_with("d", DataType::Str, vals);
        let s = ColumnStats::collect("d", t.column("d").unwrap());
        assert!(s.frequency_variance > 0.1);
        assert!(s.entropy < 0.2);
    }

    #[test]
    fn nulls_excluded_from_stats() {
        let t = table_with(
            "m",
            DataType::Int64,
            vec![Value::Int(2), Value::Null, Value::Int(4)],
        );
        let s = ColumnStats::collect("m", t.column("m").unwrap());
        assert_eq!(s.null_count, 1);
        assert_eq!(s.mean, Some(3.0));
        assert_eq!(s.distinct, 2);
    }

    #[test]
    fn cramers_v_perfect_association() {
        // b is a renaming of a.
        let schema = Schema::new(vec![
            ColumnDef::dimension("a", DataType::Str),
            ColumnDef::dimension("b", DataType::Str),
        ])
        .unwrap();
        let mut t = Table::new("t", schema);
        for (x, y) in [
            ("BOS", "Boston"),
            ("SEA", "Seattle"),
            ("BOS", "Boston"),
            ("SFO", "San Francisco"),
            ("SEA", "Seattle"),
        ] {
            t.push_row(vec![x.into(), y.into()]).unwrap();
        }
        let v = cramers_v(t.column("a").unwrap(), t.column("b").unwrap()).unwrap();
        assert!((v - 1.0).abs() < 1e-9, "got {v}");
    }

    #[test]
    fn cramers_v_independence() {
        // a and b independent by construction (all 4 combos equally often).
        let schema = Schema::new(vec![
            ColumnDef::dimension("a", DataType::Str),
            ColumnDef::dimension("b", DataType::Str),
        ])
        .unwrap();
        let mut t = Table::new("t", schema);
        for x in ["p", "q"] {
            for y in ["u", "v"] {
                for _ in 0..10 {
                    t.push_row(vec![x.into(), y.into()]).unwrap();
                }
            }
        }
        let v = cramers_v(t.column("a").unwrap(), t.column("b").unwrap()).unwrap();
        assert!(v < 1e-9, "got {v}");
    }

    #[test]
    fn cramers_v_mismatched_lengths_error() {
        let t1 = table_with("a", DataType::Str, vec!["x".into()]);
        let t2 = table_with("b", DataType::Str, vec!["x".into(), "y".into()]);
        assert!(cramers_v(t1.column("a").unwrap(), t2.column("b").unwrap()).is_err());
    }

    #[test]
    fn cramers_v_constant_column_is_one() {
        let t1 = table_with("a", DataType::Str, vec!["k".into(), "k".into()]);
        let t2 = table_with("b", DataType::Str, vec!["x".into(), "y".into()]);
        let v = cramers_v(t1.column("a").unwrap(), t2.column("b").unwrap()).unwrap();
        assert_eq!(v, 1.0);
    }

    #[test]
    fn cramers_v_int_columns() {
        let schema = Schema::new(vec![
            ColumnDef::dimension("a", DataType::Int64),
            ColumnDef::dimension("b", DataType::Int64),
        ])
        .unwrap();
        let mut t = Table::new("t", schema);
        for i in 0..40 {
            let a = i % 4;
            t.push_row(vec![Value::Int(a), Value::Int(a * 10)]).unwrap();
        }
        let v = cramers_v(t.column("a").unwrap(), t.column("b").unwrap()).unwrap();
        assert!((v - 1.0).abs() < 1e-9);
    }

    #[test]
    fn table_stats_covers_all_columns() {
        let schema = Schema::new(vec![
            ColumnDef::dimension("d", DataType::Str),
            ColumnDef::measure("m", DataType::Float64),
        ])
        .unwrap();
        let mut t = Table::new("t", schema);
        t.push_row(vec!["a".into(), 1.0.into()]).unwrap();
        let stats = TableStats::collect(&t);
        assert_eq!(stats.row_count, 1);
        assert_eq!(stats.columns.len(), 2);
        assert!(stats.column("m").unwrap().mean.is_some());
        assert!(stats.column("zzz").is_err());
    }
}
