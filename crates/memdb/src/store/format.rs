//! Low-level binary encoding for the durable store: little-endian
//! primitives, length-prefixed strings, CRC32-checksummed sections, and
//! codecs for the handful of engine types the store writes to disk
//! ([`crate::value::Value`], [`crate::expr::Expr`], [`crate::exec::AggSpec`],
//! sample specs).
//!
//! Every on-disk structure is built from *sections*: a `u64` payload
//! length, a CRC32 of the payload, then the payload bytes. Readers
//! verify the checksum before decoding a single field, so a flipped bit
//! anywhere inside a section surfaces as a typed
//! [`DbError::Corrupt`] — never a panic, never a silently wrong value.

use crate::error::{DbError, DbResult};
use crate::exec::{AggFunc, AggSpec};
use crate::expr::{CmpOp, Expr};
use crate::sample::SampleSpec;
use crate::value::{DataType, Value};

/// CRC32 (IEEE 802.3 polynomial, reflected) over `bytes`. Table-free
/// nibble-at-a-time variant: fast enough for checkpoint-sized payloads
/// without a 1 KiB static table.
pub fn crc32(bytes: &[u8]) -> u32 {
    const POLY: u32 = 0xEDB8_8320;
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (POLY & mask);
        }
    }
    !crc
}

/// A corruption error with location context.
pub fn corrupt(what: impl std::fmt::Display) -> DbError {
    DbError::Corrupt(what.to_string())
}

/// Map an I/O error into [`DbError::Io`] with path context.
pub fn io_err(path: &std::path::Path, e: std::io::Error) -> DbError {
    DbError::Io(format!("{}: {e}", path.display()))
}

/// Byte-buffer encoder.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its raw IEEE-754 bits (bit-exact round trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Append a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Append one [`Value`].
    pub fn value(&mut self, v: &Value) {
        match v {
            Value::Null => self.u8(0),
            Value::Int(i) => {
                self.u8(1);
                self.i64(*i);
            }
            Value::Float(f) => {
                self.u8(2);
                self.f64(*f);
            }
            Value::Str(s) => {
                self.u8(3);
                self.str(s);
            }
            Value::Bool(b) => {
                self.u8(4);
                self.u8(*b as u8);
            }
        }
    }

    /// Append one [`Expr`] tree.
    pub fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Column(name) => {
                self.u8(0);
                self.str(name);
            }
            Expr::Literal(v) => {
                self.u8(1);
                self.value(v);
            }
            Expr::Cmp { op, left, right } => {
                self.u8(2);
                self.u8(match op {
                    CmpOp::Eq => 0,
                    CmpOp::Ne => 1,
                    CmpOp::Lt => 2,
                    CmpOp::Le => 3,
                    CmpOp::Gt => 4,
                    CmpOp::Ge => 5,
                });
                self.expr(left);
                self.expr(right);
            }
            Expr::And(a, b) => {
                self.u8(3);
                self.expr(a);
                self.expr(b);
            }
            Expr::Or(a, b) => {
                self.u8(4);
                self.expr(a);
                self.expr(b);
            }
            Expr::Not(a) => {
                self.u8(5);
                self.expr(a);
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                self.u8(6);
                self.expr(expr);
                self.u64(list.len() as u64);
                for v in list {
                    self.value(v);
                }
                self.u8(*negated as u8);
            }
            Expr::IsNull { expr, negated } => {
                self.u8(7);
                self.expr(expr);
                self.u8(*negated as u8);
            }
        }
    }

    /// Append an optional [`Expr`].
    pub fn opt_expr(&mut self, e: &Option<Expr>) {
        match e {
            None => self.u8(0),
            Some(e) => {
                self.u8(1);
                self.expr(e);
            }
        }
    }

    /// Append one [`AggSpec`].
    pub fn agg_spec(&mut self, a: &AggSpec) {
        self.u8(match a.func {
            AggFunc::Count => 0,
            AggFunc::Sum => 1,
            AggFunc::Avg => 2,
            AggFunc::Min => 3,
            AggFunc::Max => 4,
        });
        self.opt_str(&a.column);
        self.opt_expr(&a.filter);
        self.opt_str(&a.alias);
    }

    /// Append an optional string.
    pub fn opt_str(&mut self, s: &Option<String>) {
        match s {
            None => self.u8(0),
            Some(s) => {
                self.u8(1);
                self.str(s);
            }
        }
    }

    /// Append an optional [`SampleSpec`].
    pub fn opt_sample(&mut self, s: &Option<SampleSpec>) {
        match s {
            None => self.u8(0),
            Some(SampleSpec::Bernoulli { fraction, seed }) => {
                self.u8(1);
                self.f64(*fraction);
                self.u64(*seed);
            }
            Some(SampleSpec::Reservoir { size, seed }) => {
                self.u8(2);
                self.u64(*size as u64);
                self.u64(*seed);
            }
        }
    }

    /// Append a [`DataType`] tag.
    pub fn dtype(&mut self, t: DataType) {
        self.u8(match t {
            DataType::Int64 => 0,
            DataType::Float64 => 1,
            DataType::Str => 2,
            DataType::Bool => 3,
        });
    }
}

/// Cursor-based decoder over a byte slice. Every accessor returns
/// [`DbError::Corrupt`] on truncation or an invalid tag — the store
/// never panics on bad bytes.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Context string used in corruption messages ("manifest", file name).
    what: &'a str,
}

impl<'a> Dec<'a> {
    /// Decode from `buf`, labelling errors with `what`.
    pub fn new(buf: &'a [u8], what: &'a str) -> Self {
        Dec { buf, pos: 0, what }
    }

    /// True when every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> DbResult<&'a [u8]> {
        let slice = self
            .pos
            .checked_add(n)
            .and_then(|end| self.buf.get(self.pos..end));
        match slice {
            Some(s) => {
                self.pos += n;
                Ok(s)
            }
            None => Err(corrupt(format!(
                "{}: truncated (wanted {n} bytes at offset {}, have {})",
                self.what,
                self.pos,
                self.buf.len().saturating_sub(self.pos)
            ))),
        }
    }

    /// Read exactly `N` bytes into an array (no panic path: the length
    /// check is `take`'s, the copy is by iterator).
    fn take_arr<const N: usize>(&mut self) -> DbResult<[u8; N]> {
        let s = self.take(N)?;
        let mut arr = [0u8; N];
        for (dst, src) in arr.iter_mut().zip(s) {
            *dst = *src;
        }
        Ok(arr)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> DbResult<u8> {
        let [b] = self.take_arr::<1>()?;
        Ok(b)
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> DbResult<u32> {
        Ok(u32::from_le_bytes(self.take_arr::<4>()?))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> DbResult<u64> {
        Ok(u64::from_le_bytes(self.take_arr::<8>()?))
    }

    /// Read a byte-length prefix, rejecting absurd sizes (beyond the
    /// remaining buffer — this is what keeps a corrupted length from
    /// triggering a huge allocation).
    pub fn len_prefix(&mut self) -> DbResult<usize> {
        let n = self.u64()?;
        if n > self.buf.len() as u64 {
            return Err(corrupt(format!(
                "{}: length {n} exceeds section size {}",
                self.what,
                self.buf.len()
            )));
        }
        Ok(n as usize)
    }

    /// Read a count of fixed-width items, validating against the bytes
    /// actually remaining (`width` bytes per item).
    pub fn count(&mut self, width: usize) -> DbResult<usize> {
        let n = self.u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if n.saturating_mul(width as u64) > remaining {
            return Err(corrupt(format!(
                "{}: count {n} × {width}B exceeds remaining {remaining}B",
                self.what
            )));
        }
        Ok(n as usize)
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> DbResult<i64> {
        Ok(i64::from_le_bytes(self.take_arr::<8>()?))
    }

    /// Read an `f64` from its raw bits.
    pub fn f64(&mut self) -> DbResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> DbResult<&'a [u8]> {
        let n = self.len_prefix()?;
        self.take(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> DbResult<String> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec())
            .map_err(|_| corrupt(format!("{}: invalid UTF-8 string", self.what)))
    }

    /// Read one [`Value`].
    pub fn value(&mut self) -> DbResult<Value> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Int(self.i64()?),
            2 => Value::Float(self.f64()?),
            3 => Value::Str(self.str()?),
            4 => Value::Bool(self.u8()? != 0),
            t => return Err(corrupt(format!("{}: bad value tag {t}", self.what))),
        })
    }

    /// Read one [`Expr`] tree.
    pub fn expr(&mut self) -> DbResult<Expr> {
        Ok(match self.u8()? {
            0 => Expr::Column(self.str()?),
            1 => Expr::Literal(self.value()?),
            2 => {
                let op = match self.u8()? {
                    0 => CmpOp::Eq,
                    1 => CmpOp::Ne,
                    2 => CmpOp::Lt,
                    3 => CmpOp::Le,
                    4 => CmpOp::Gt,
                    5 => CmpOp::Ge,
                    t => return Err(corrupt(format!("{}: bad cmp op {t}", self.what))),
                };
                let left = Box::new(self.expr()?);
                let right = Box::new(self.expr()?);
                Expr::Cmp { op, left, right }
            }
            3 => Expr::And(Box::new(self.expr()?), Box::new(self.expr()?)),
            4 => Expr::Or(Box::new(self.expr()?), Box::new(self.expr()?)),
            5 => Expr::Not(Box::new(self.expr()?)),
            6 => {
                let expr = Box::new(self.expr()?);
                let n = self.count(1)?;
                let mut list = Vec::with_capacity(n);
                for _ in 0..n {
                    list.push(self.value()?);
                }
                let negated = self.u8()? != 0;
                Expr::InList {
                    expr,
                    list,
                    negated,
                }
            }
            7 => Expr::IsNull {
                expr: Box::new(self.expr()?),
                negated: self.u8()? != 0,
            },
            t => return Err(corrupt(format!("{}: bad expr tag {t}", self.what))),
        })
    }

    /// Read an optional [`Expr`].
    pub fn opt_expr(&mut self) -> DbResult<Option<Expr>> {
        Ok(match self.u8()? {
            0 => None,
            1 => Some(self.expr()?),
            t => return Err(corrupt(format!("{}: bad option tag {t}", self.what))),
        })
    }

    /// Read one [`AggSpec`].
    pub fn agg_spec(&mut self) -> DbResult<AggSpec> {
        let func = match self.u8()? {
            0 => AggFunc::Count,
            1 => AggFunc::Sum,
            2 => AggFunc::Avg,
            3 => AggFunc::Min,
            4 => AggFunc::Max,
            t => return Err(corrupt(format!("{}: bad agg func {t}", self.what))),
        };
        let column = self.opt_str()?;
        let filter = self.opt_expr()?;
        let alias = self.opt_str()?;
        Ok(AggSpec {
            func,
            column,
            filter,
            alias,
        })
    }

    /// Read an optional string.
    pub fn opt_str(&mut self) -> DbResult<Option<String>> {
        Ok(match self.u8()? {
            0 => None,
            1 => Some(self.str()?),
            t => return Err(corrupt(format!("{}: bad option tag {t}", self.what))),
        })
    }

    /// Read an optional [`SampleSpec`].
    pub fn opt_sample(&mut self) -> DbResult<Option<SampleSpec>> {
        Ok(match self.u8()? {
            0 => None,
            1 => Some(SampleSpec::Bernoulli {
                fraction: self.f64()?,
                seed: self.u64()?,
            }),
            2 => Some(SampleSpec::Reservoir {
                size: self.u64()? as usize,
                seed: self.u64()?,
            }),
            t => return Err(corrupt(format!("{}: bad sample tag {t}", self.what))),
        })
    }

    /// Read a [`DataType`] tag.
    pub fn dtype(&mut self) -> DbResult<DataType> {
        Ok(match self.u8()? {
            0 => DataType::Int64,
            1 => DataType::Float64,
            2 => DataType::Str,
            3 => DataType::Bool,
            t => return Err(corrupt(format!("{}: bad dtype tag {t}", self.what))),
        })
    }
}

/// Frame `payload` as one checksummed section: `len u64 | crc32 u32 |
/// payload`.
pub fn frame_section(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 12);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Outcome of reading one section frame from a byte stream.
pub enum Section<'a> {
    /// A complete, checksum-verified payload (and the bytes consumed).
    Ok(&'a [u8], usize),
    /// The stream ends exactly here — no more sections.
    End,
    /// The stream ends mid-section (a torn write at the tail).
    Torn,
    /// A complete frame whose checksum does not match its payload.
    BadChecksum,
}

/// Read `N` little-endian bytes at `buf[pos..]` as an array, `None`
/// when out of range (shared with the WAL's frame scanner).
pub fn le_bytes_at<const N: usize>(buf: &[u8], pos: usize) -> Option<[u8; N]> {
    let s = pos.checked_add(N).and_then(|end| buf.get(pos..end))?;
    let mut arr = [0u8; N];
    for (dst, src) in arr.iter_mut().zip(s) {
        *dst = *src;
    }
    Some(arr)
}

/// Read the section frame starting at `buf[pos..]`.
pub fn read_section(buf: &[u8], pos: usize) -> Section<'_> {
    let Some(rest) = buf.get(pos..) else {
        return Section::Torn;
    };
    if rest.is_empty() {
        return Section::End;
    }
    let (Some(len), Some(crc)) = (
        le_bytes_at::<8>(rest, 0).map(u64::from_le_bytes),
        le_bytes_at::<4>(rest, 8).map(u32::from_le_bytes),
    ) else {
        return Section::Torn;
    };
    let len = len as usize;
    // An absurd length (beyond the buffer) reads as a torn/garbage
    // header rather than an allocation request — as does any header
    // arithmetic that leaves the buffer.
    let Some(payload) = (12usize).checked_add(len).and_then(|end| rest.get(12..end)) else {
        return Section::Torn;
    };
    if crc32(payload) != crc {
        return Section::BadChecksum;
    }
    Section::Ok(payload, 12 + len)
}

/// Read one file that holds exactly one checksummed section (manifest,
/// warm-plan files).
pub fn read_section_file(path: &std::path::Path, what: &str) -> DbResult<Vec<u8>> {
    let bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;
    match read_section(&bytes, 0) {
        Section::Ok(payload, consumed) if consumed == bytes.len() => Ok(payload.to_vec()),
        Section::Ok(..) => Err(corrupt(format!("{what}: trailing bytes after section"))),
        Section::End | Section::Torn => Err(corrupt(format!("{what}: truncated section"))),
        Section::BadChecksum => Err(corrupt(format!("{what}: checksum mismatch"))),
    }
}

/// Write `payload` to `path` as one checksummed section, atomically:
/// write to `<path>.tmp`, fsync, rename over `path`. A crash at any
/// point leaves either the old file or the new one, never a torn mix.
pub fn write_section_file(path: &std::path::Path, payload: &[u8]) -> DbResult<()> {
    use std::io::Write as _;
    let tmp = path.with_extension("tmp");
    let framed = frame_section(payload);
    {
        let mut f = std::fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
        f.write_all(&framed).map_err(|e| io_err(&tmp, e))?;
        f.sync_all().map_err(|e| io_err(&tmp, e))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))?;
    // Directory sync so the rename itself is durable.
    if let Some(dir) = path.parent() {
        sync_dir(dir);
    }
    Ok(())
}

/// Best-effort fsync of a directory, making its entries (file
/// creations, renames) durable against power loss. Failures are
/// ignored: the files themselves are always fsynced, and some
/// platforms cannot open directories for syncing.
pub fn sync_dir(dir: &std::path::Path) {
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn primitives_roundtrip() {
        let mut e = Enc::new();
        e.u8(7);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX - 3);
        e.i64(-42);
        e.f64(-0.0);
        e.str("héllo");
        e.bytes(b"\x00\xff");
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes, "test");
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX - 3);
        assert_eq!(d.i64().unwrap(), -42);
        assert_eq!(d.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(d.str().unwrap(), "héllo");
        assert_eq!(d.bytes().unwrap(), b"\x00\xff");
        assert!(d.is_done());
    }

    #[test]
    fn values_roundtrip_bit_exact() {
        let vals = [
            Value::Null,
            Value::Int(i64::MIN),
            Value::Float(f64::NAN),
            Value::Float(-0.0),
            Value::Str("x y".into()),
            Value::Bool(true),
        ];
        let mut e = Enc::new();
        for v in &vals {
            e.value(v);
        }
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes, "test");
        for v in &vals {
            let got = d.value().unwrap();
            match (v, &got) {
                (Value::Float(a), Value::Float(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                _ => assert_eq!(*v, got),
            }
        }
    }

    #[test]
    fn exprs_roundtrip() {
        let e1 = Expr::col("a")
            .eq("v")
            .and(Expr::col("b").gt(3))
            .or(Expr::Not(Box::new(Expr::IsNull {
                expr: Box::new(Expr::col("c")),
                negated: true,
            })))
            .and(Expr::InList {
                expr: Box::new(Expr::col("d")),
                list: vec![Value::Int(1), Value::from("z")],
                negated: true,
            });
        let mut enc = Enc::new();
        enc.expr(&e1);
        let bytes = enc.into_bytes();
        let got = Dec::new(&bytes, "test").expr().unwrap();
        assert_eq!(e1, got);
    }

    #[test]
    fn truncation_and_bad_tags_are_corrupt_errors() {
        let mut e = Enc::new();
        e.u64(123);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes[..4], "t");
        assert!(matches!(d.u64(), Err(DbError::Corrupt(_))));
        let bad = [9u8]; // invalid value tag
        assert!(matches!(
            Dec::new(&bad, "t").value(),
            Err(DbError::Corrupt(_))
        ));
        // A huge length prefix is rejected, not allocated.
        let mut e = Enc::new();
        e.u64(u64::MAX);
        let bytes = e.into_bytes();
        assert!(matches!(
            Dec::new(&bytes, "t").bytes(),
            Err(DbError::Corrupt(_))
        ));
    }

    #[test]
    fn sections_verify_checksums() {
        let framed = frame_section(b"payload");
        match read_section(&framed, 0) {
            Section::Ok(p, n) => {
                assert_eq!(p, b"payload");
                assert_eq!(n, framed.len());
            }
            _ => panic!("good section must read"),
        }
        // Flip one payload bit: checksum failure.
        let mut bad = framed.clone();
        *bad.last_mut().unwrap() ^= 1;
        assert!(matches!(read_section(&bad, 0), Section::BadChecksum));
        // Truncate mid-payload: torn.
        assert!(matches!(
            read_section(&framed[..framed.len() - 2], 0),
            Section::Torn
        ));
        assert!(matches!(read_section(&framed, framed.len()), Section::End));
    }
}
