//! The manifest: the single atomically-published root of a database
//! directory.
//!
//! A manifest names, for every table, the ordered list of segment files
//! that materialize it (with row ranges and per-column dictionary
//! progress), plus the table's version stamp and append lineage and the
//! catalog's version counter. It is written as one checksummed section
//! to `MANIFEST.tmp` and renamed over `MANIFEST` — readers see either
//! the previous catalog state or the new one, never a torn mix, and a
//! leftover `MANIFEST.tmp` from a crash is simply ignored and removed.
//!
//! Invariants:
//!
//! * every chunk list covers `[0, rows)` contiguously in order;
//! * `dict_ends` chain per column: chunk `k+1`'s `dict_start` equals
//!   chunk `k`'s `dict_end` (checked when chunks are loaded);
//! * `catalog_version` is the catalog's version counter at publish
//!   time — WAL records at or below it are already folded in.

use std::path::{Path, PathBuf};

use crate::error::{DbError, DbResult};
use crate::schema::{ColumnDef, Schema};

use super::format::{corrupt, read_section_file, write_section_file, Dec, Enc};
use super::wal::{decode_column_def, encode_column_def, schema_from_defs};

/// Magic bytes opening the manifest payload.
const MAGIC: &[u8; 8] = b"SDBMAN1\0";
/// Format version.
const FORMAT: u32 = 1;

/// One segment file reference.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkRef {
    /// File name inside the `segments/` subdirectory.
    pub file: String,
    /// First logical row id the chunk covers.
    pub start_row: u64,
    /// Rows the chunk covers.
    pub rows: u64,
    /// Per-column dictionary length after this chunk (0 for non-string
    /// columns). The next chunk's dictionary delta starts here.
    pub dict_ends: Vec<u64>,
}

/// One table's durable description.
#[derive(Debug, Clone, PartialEq)]
pub struct TableEntry {
    /// Table name.
    pub name: String,
    /// Catalog version stamp ([`crate::Table::version`]).
    pub version: u64,
    /// Total rows.
    pub rows: u64,
    /// `(version, rows)` append-lineage checkpoints, oldest first.
    pub lineage: Vec<(u64, u64)>,
    /// Column definitions.
    pub schema: Vec<ColumnDef>,
    /// Segment files, in row order.
    pub chunks: Vec<ChunkRef>,
}

impl TableEntry {
    /// The validated [`Schema`] of this entry.
    pub fn schema(&self) -> DbResult<Schema> {
        schema_from_defs(self.schema.clone())
    }

    /// Per-column dictionary lengths after the last chunk (all zeros
    /// when the table has no chunks yet).
    pub fn final_dict_ends(&self) -> Vec<u64> {
        self.chunks
            .last()
            .map(|c| c.dict_ends.clone())
            .unwrap_or_else(|| vec![0; self.schema.len()])
    }
}

/// The decoded manifest.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Manifest {
    /// Catalog version counter at publish time.
    pub catalog_version: u64,
    /// Next segment-file id (file names are allocated from this counter
    /// so replacements never collide with leftover files).
    pub next_file_id: u64,
    /// Store incarnation: only WAL records whose header carries this
    /// epoch belong to this manifest. A re-save into an existing
    /// directory bumps it, so a crash between the new manifest's
    /// publish and the WAL reset can never replay the previous
    /// incarnation's records onto the new catalog.
    pub wal_epoch: u64,
    /// Tables, sorted by name.
    pub tables: Vec<TableEntry>,
}

impl Manifest {
    /// File name inside the database directory.
    pub const FILE_NAME: &'static str = "MANIFEST";

    /// The entry for `name`, if any.
    pub fn table(&self, name: &str) -> Option<&TableEntry> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// Encode to the on-disk payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.bytes(MAGIC);
        e.u32(FORMAT);
        e.u64(self.catalog_version);
        e.u64(self.next_file_id);
        e.u64(self.wal_epoch);
        e.u64(self.tables.len() as u64);
        for t in &self.tables {
            e.str(&t.name);
            e.u64(t.version);
            e.u64(t.rows);
            e.u64(t.lineage.len() as u64);
            for &(v, r) in &t.lineage {
                e.u64(v);
                e.u64(r);
            }
            e.u64(t.schema.len() as u64);
            for c in &t.schema {
                encode_column_def(&mut e, c);
            }
            e.u64(t.chunks.len() as u64);
            for c in &t.chunks {
                e.str(&c.file);
                e.u64(c.start_row);
                e.u64(c.rows);
                e.u64(c.dict_ends.len() as u64);
                for &d in &c.dict_ends {
                    e.u64(d);
                }
            }
        }
        e.into_bytes()
    }

    /// Decode from the on-disk payload, validating structure.
    pub fn decode(payload: &[u8], what: &str) -> DbResult<Manifest> {
        let mut d = Dec::new(payload, what);
        if d.bytes()? != MAGIC {
            return Err(corrupt(format!("{what}: not a manifest (bad magic)")));
        }
        let format = d.u32()?;
        if format != FORMAT {
            return Err(corrupt(format!(
                "{what}: unsupported manifest format {format} (expected {FORMAT})"
            )));
        }
        let catalog_version = d.u64()?;
        let next_file_id = d.u64()?;
        let wal_epoch = d.u64()?;
        let ntables = d.count(1)?;
        let mut tables = Vec::with_capacity(ntables);
        for _ in 0..ntables {
            let name = d.str()?;
            let version = d.u64()?;
            let rows = d.u64()?;
            let nlineage = d.count(16)?;
            let mut lineage = Vec::with_capacity(nlineage);
            for _ in 0..nlineage {
                lineage.push((d.u64()?, d.u64()?));
            }
            let ncols = d.count(1)?;
            let mut schema = Vec::with_capacity(ncols);
            for _ in 0..ncols {
                schema.push(decode_column_def(&mut d)?);
            }
            let nchunks = d.count(1)?;
            let mut chunks = Vec::with_capacity(nchunks);
            let mut covered = 0u64;
            for _ in 0..nchunks {
                let file = d.str()?;
                let start_row = d.u64()?;
                let chunk_rows = d.u64()?;
                let nends = d.count(8)?;
                if nends != ncols {
                    return Err(corrupt(format!(
                        "{what}: table {name}: chunk {file} has {nends} dict ends for {ncols} columns"
                    )));
                }
                let mut dict_ends = Vec::with_capacity(nends);
                for _ in 0..nends {
                    dict_ends.push(d.u64()?);
                }
                if start_row != covered {
                    return Err(corrupt(format!(
                        "{what}: table {name}: chunk {file} starts at row {start_row}, expected {covered}"
                    )));
                }
                covered += chunk_rows;
                chunks.push(ChunkRef {
                    file,
                    start_row,
                    rows: chunk_rows,
                    dict_ends,
                });
            }
            if covered != rows {
                return Err(corrupt(format!(
                    "{what}: table {name}: chunks cover {covered} of {rows} rows"
                )));
            }
            tables.push(TableEntry {
                name,
                version,
                rows,
                lineage,
                schema,
                chunks,
            });
        }
        if !d.is_done() {
            return Err(corrupt(format!("{what}: trailing bytes")));
        }
        Ok(Manifest {
            catalog_version,
            next_file_id,
            wal_epoch,
            tables,
        })
    }

    /// Path of the manifest inside `dir`.
    pub fn path(dir: &Path) -> PathBuf {
        dir.join(Manifest::FILE_NAME)
    }

    /// Atomically publish this manifest into `dir` (write tmp + rename).
    pub fn write(&self, dir: &Path) -> DbResult<()> {
        write_section_file(&Manifest::path(dir), &self.encode())
    }

    /// Read and validate the manifest in `dir`. A leftover
    /// `MANIFEST.tmp` from a crashed publish is removed — only the
    /// renamed `MANIFEST` is ever authoritative.
    pub fn read(dir: &Path) -> DbResult<Manifest> {
        let path = Manifest::path(dir);
        // A torn/complete tmp file is a crash artifact of an
        // unpublished checkpoint; its contents were never acknowledged.
        let _ = std::fs::remove_file(path.with_extension("tmp"));
        if !path.exists() {
            return Err(DbError::Io(format!(
                "{}: no manifest — not a database directory (create one with Database::save)",
                dir.display()
            )));
        }
        let what = format!("manifest {}", path.display());
        let payload = read_section_file(&path, &what)?;
        Manifest::decode(&payload, &what)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::DataType;

    fn sample() -> Manifest {
        Manifest {
            catalog_version: 9,
            next_file_id: 4,
            wal_epoch: 2,
            tables: vec![TableEntry {
                name: "t".into(),
                version: 7,
                rows: 10,
                lineage: vec![(5, 6), (7, 10)],
                schema: vec![
                    ColumnDef::dimension("d", DataType::Str),
                    ColumnDef::measure("m", DataType::Float64),
                ],
                chunks: vec![
                    ChunkRef {
                        file: "seg-00000001.seg".into(),
                        start_row: 0,
                        rows: 6,
                        dict_ends: vec![3, 0],
                    },
                    ChunkRef {
                        file: "seg-00000002.seg".into(),
                        start_row: 6,
                        rows: 4,
                        dict_ends: vec![5, 0],
                    },
                ],
            }],
        }
    }

    #[test]
    fn roundtrip() {
        let m = sample();
        let got = Manifest::decode(&m.encode(), "test").unwrap();
        assert_eq!(m, got);
        assert_eq!(got.table("t").unwrap().final_dict_ends(), vec![5, 0]);
        assert!(got.table("missing").is_none());
    }

    #[test]
    fn gaps_and_bad_coverage_are_corrupt() {
        let mut m = sample();
        m.tables[0].chunks[1].start_row = 7; // gap after row 6
        assert!(matches!(
            Manifest::decode(&m.encode(), "t"),
            Err(DbError::Corrupt(_))
        ));
        let mut m = sample();
        m.tables[0].rows = 11; // chunks cover only 10
        assert!(matches!(
            Manifest::decode(&m.encode(), "t"),
            Err(DbError::Corrupt(_))
        ));
    }

    #[test]
    fn atomic_write_and_tmp_cleanup() {
        let dir = std::env::temp_dir().join(format!("memdb-manifest-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let m = sample();
        m.write(&dir).unwrap();
        // A torn tmp from a crashed later publish must not shadow the
        // published manifest.
        std::fs::write(Manifest::path(&dir).with_extension("tmp"), b"garbage").unwrap();
        let got = Manifest::read(&dir).unwrap();
        assert_eq!(m, got);
        assert!(!Manifest::path(&dir).with_extension("tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_is_io_corrupted_manifest_is_corrupt() {
        let dir = std::env::temp_dir().join(format!("memdb-manifest-miss-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(Manifest::read(&dir), Err(DbError::Io(_))));
        sample().write(&dir).unwrap();
        let path = Manifest::path(&dir);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(Manifest::read(&dir), Err(DbError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
